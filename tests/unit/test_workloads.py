"""Unit tests for workload generators (repro.workloads)."""

import random

import pytest

from repro.ot.operations import Delete, Insert
from repro.workloads.random_session import (
    RandomSessionConfig,
    generate_random_edits,
    random_positional_op,
)
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    FIG3_EXPECTED,
    fig2_intention_example,
    fig3_script,
    fig_latency_factory,
)
from repro.workloads.typing_model import TypingBurstConfig, typing_burst_schedule


class TestScripted:
    def test_fig3_script_shape(self):
        script = fig3_script()
        assert [s.op_id for s in script] == ["O2", "O1", "O4", "O3"]
        assert [s.site for s in script] == [2, 1, 3, 2]
        assert script[0].op == Delete(3, 2)
        assert script[1].op == Insert("12", 1)

    def test_generation_times_strictly_ordered_for_notifier_arrival(self):
        """gen time + channel latency must produce arrival order O2 O1 O4 O3."""
        from repro.workloads.scripted import FIG_LATENCIES

        script = {s.op_id: s for s in fig3_script()}
        arrivals = {
            op_id: s.time + FIG_LATENCIES[s.site] for op_id, s in script.items()
        }
        ordered = sorted(arrivals, key=arrivals.get)
        assert ordered == ["O2", "O1", "O4", "O3"]

    def test_latency_factory_symmetric(self):
        assert fig_latency_factory(0, 2).latency == fig_latency_factory(2, 0).latency

    def test_intention_example_values(self):
        doc, o1, o2, preserved, naive = fig2_intention_example()
        assert doc == FIG2_INITIAL_DOCUMENT == "ABCDE"
        assert o2.apply(o1.apply(doc)) == naive == "A1DE"
        assert preserved == "A12B"

    def test_expected_tables_cover_all_broadcasts(self):
        # 4 ops * 2 destinations each
        assert len(FIG3_EXPECTED["broadcast_timestamps"]) == 8
        assert len(FIG3_EXPECTED["notifier_buffer_timestamps"]) == 4


class TestRandomSession:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomSessionConfig(n_sites=0)
        with pytest.raises(ValueError):
            RandomSessionConfig(insert_ratio=1.5)
        with pytest.raises(ValueError):
            RandomSessionConfig(ops_per_site=-1)

    def test_edits_sorted_and_counted(self):
        config = RandomSessionConfig(n_sites=3, ops_per_site=5, seed=1)
        intents = generate_random_edits(config)
        assert len(intents) == 15
        assert intents == sorted(intents, key=lambda i: i.time)
        assert {i.site for i in intents} == {1, 2, 3}

    def test_deterministic_under_seed(self):
        config = RandomSessionConfig(seed=42)
        assert generate_random_edits(config) == generate_random_edits(config)

    def test_ops_always_valid(self):
        config = RandomSessionConfig(seed=7, insert_ratio=0.4)
        rng = random.Random(0)
        doc = config.initial_document
        for _ in range(300):
            op = random_positional_op(rng, doc, config)
            doc = op.apply(doc)  # raises if invalid

    def test_empty_document_forces_insert(self):
        config = RandomSessionConfig(insert_ratio=0.0)
        op = random_positional_op(random.Random(1), "", config)
        assert isinstance(op, Insert)

    def test_hotspot_positions_concentrate(self):
        config = RandomSessionConfig(seed=1, hotspot=True, insert_ratio=1.0)
        rng = random.Random(2)
        doc = "x" * 1000
        positions = [random_positional_op(rng, doc, config).pos for _ in range(200)]
        centre = len(doc) // 2
        near = sum(1 for p in positions if abs(p - centre) < 400)
        assert near == len(positions)


class TestTypingModel:
    def test_schedule_shape(self):
        config = TypingBurstConfig(n_sites=2, bursts_per_site=3, burst_length=5, seed=4)
        schedule = typing_burst_schedule(config)
        assert len(schedule) == 2 * 3 * 5
        assert schedule == sorted(schedule, key=lambda k: k.time)
        assert all(len(k.char) == 1 for k in schedule)

    def test_deterministic(self):
        config = TypingBurstConfig(seed=9)
        assert typing_burst_schedule(config) == typing_burst_schedule(config)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TypingBurstConfig(n_sites=0)
        with pytest.raises(ValueError):
            TypingBurstConfig(burst_length=0)
