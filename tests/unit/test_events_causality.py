"""Unit tests for the event log and causality oracle."""

import pytest

from repro.analysis.causality import CausalityOracle
from repro.clocks.events import EventKind, EventLog
from repro.clocks.vector import VectorClock


def fig2_log():
    """Rebuild the paper's Fig. 2 computation as an event log.

    Sites: 0 notifier, 1..3 clients.  Original operations only (the
    notifier relays without renaming here), with executions in the
    figure's orders.
    """
    log = EventLog(4)
    log.generate(2, "O2")
    log.generate(1, "O1")
    log.execute(0, "O2")
    log.execute(0, "O1")
    log.execute(3, "O2")
    log.generate(3, "O4")
    log.execute(0, "O4")
    log.execute(1, "O2")
    log.execute(2, "O1")
    log.generate(2, "O3")
    log.execute(0, "O3")
    log.execute(3, "O1")
    log.execute(2, "O4")
    log.execute(1, "O4")
    log.execute(3, "O3")
    log.execute(1, "O3")
    return log


class TestEventLog:
    def test_generation_assigns_ticked_clock(self):
        log = EventLog(2)
        log.generate(0, "a")
        assert log.generation_clock("a") == VectorClock.of([1, 0])

    def test_execute_merges_generation_clock(self):
        log = EventLog(2)
        log.generate(0, "a")
        event = log.execute(1, "a")
        assert log.clocks[event] == VectorClock.of([1, 1])

    def test_double_generation_rejected(self):
        log = EventLog(2)
        log.generate(0, "a")
        with pytest.raises(ValueError):
            log.generate(1, "a")

    def test_execute_before_generate_rejected(self):
        with pytest.raises(ValueError):
            EventLog(2).execute(0, "ghost")

    def test_site_out_of_range(self):
        with pytest.raises(ValueError):
            EventLog(2).generate(5, "a")

    def test_op_ids_in_generation_order(self):
        log = fig2_log()
        assert log.op_ids() == ["O2", "O1", "O4", "O3"]

    def test_event_kinds_recorded(self):
        log = fig2_log()
        kinds = {event.kind for event in log.events}
        assert kinds == {EventKind.GENERATE, EventKind.EXECUTE}


class TestCausalityOracle:
    def test_fig2_causal_pairs(self):
        """Paper Section 2.4: O1->O3, O2->O3, O2->O4 (and nothing else)."""
        oracle = CausalityOracle(fig2_log())
        assert oracle.causal_pairs() == {("O1", "O3"), ("O2", "O3"), ("O2", "O4")}

    def test_fig2_concurrent_pairs(self):
        """Paper Section 2.4: O1||O2, O1||O4, O3||O4."""
        oracle = CausalityOracle(fig2_log())
        assert oracle.concurrent_pairs() == {
            frozenset(("O1", "O2")),
            frozenset(("O1", "O4")),
            frozenset(("O3", "O4")),
        }

    def test_op_not_concurrent_with_itself(self):
        oracle = CausalityOracle(fig2_log())
        assert not oracle.concurrent("O1", "O1")

    def test_happened_before_is_irreflexive_and_antisymmetric(self):
        oracle = CausalityOracle(fig2_log())
        for a in ("O1", "O2", "O3", "O4"):
            assert not oracle.happened_before(a, a)
        assert oracle.happened_before("O2", "O3")
        assert not oracle.happened_before("O3", "O2")

    def test_same_site_program_order(self):
        log = EventLog(2)
        log.generate(0, "a")
        log.generate(0, "b")
        oracle = CausalityOracle(log)
        assert oracle.happened_before("a", "b")
        assert not oracle.concurrent("a", "b")

    def test_isolated_sites_concurrent(self):
        log = EventLog(2)
        log.generate(0, "a")
        log.generate(1, "b")
        oracle = CausalityOracle(log)
        assert oracle.concurrent("a", "b")
