"""Unit tests for the live telemetry layer (:mod:`repro.obs.telemetry`).

The contracts the cluster and monitor rely on: frames round-trip
losslessly through JSON and the byte-exact wire codec, registries merge
counters and histograms correctly, a ring-mode tracer evicts old events
at bounded memory, each watchdog fires exactly at its documented
threshold (and re-arms), the sampler stays bounded on the deterministic
simulator, the JSONL writer is crash-safe, and the flight recorder
dumps once -- preserving the first trigger's state.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.editor.star import StarSession
from repro.net.wire import WireError, decode_frame, encode_telemetry_frame
from repro.obs import (
    CausalStallWatchdog,
    DivergenceSentinel,
    FlightRecorder,
    HealthEvent,
    JsonlWriter,
    MetricsRegistry,
    RetransmitStormWatchdog,
    SilenceWatchdog,
    TelemetryFrame,
    TelemetrySampler,
    TraceEventKind,
    Tracer,
    read_jsonl,
    snapshot_endpoint,
)
from repro.net.simulator import Simulator
from repro.workloads.random_session import RandomSessionConfig, drive_star_session

FULL_FRAME = TelemetryFrame(
    site=2, role="client", seq=7, time=1.5, epoch=1, ops_generated=3,
    ops_executed=9, holdback_depth=1, holdback_high_water=2, inflight=4,
    retransmits=5, storage_ints=6, queue_depth=8, digest="abc123def456",
)


def frame_at(site: int, seq: int, **over) -> TelemetryFrame:
    base = dict(site=site, role="client", seq=seq, time=float(seq))
    base.update(over)
    return TelemetryFrame(**base)


class TestFrameCodec:
    def test_json_round_trip_is_lossless(self):
        assert TelemetryFrame.from_json(FULL_FRAME.to_json()) == FULL_FRAME

    def test_json_leads_with_the_record_tag(self):
        data = json.loads(FULL_FRAME.to_json())
        assert data["rec"] == "frame"

    def test_from_json_rejects_other_record_kinds(self):
        with pytest.raises(ValueError):
            TelemetryFrame.from_json('{"rec": "health", "site": 1}')

    def test_wire_codec_round_trip_is_lossless(self):
        assert decode_frame(encode_telemetry_frame(FULL_FRAME)) == FULL_FRAME

    def test_wire_codec_rejects_future_schema_versions(self):
        payload = bytearray(encode_telemetry_frame(FULL_FRAME))
        payload[1:5] = (99).to_bytes(4, "big")  # the schema version field
        with pytest.raises(WireError):
            decode_frame(bytes(payload))

    def test_health_event_json_round_trip(self):
        event = HealthEvent(time=2.0, site=3, kind="peer_dead",
                            verdict="fail", peer=0, detail="gone")
        assert HealthEvent.from_json(event.to_json()) == event


class TestRegistryMerge:
    def test_counters_sum_and_histograms_concatenate(self):
        a = MetricsRegistry()
        a.inc("ops", 3)
        a.observe("depth", 1.0)
        b = MetricsRegistry()
        b.inc("ops", 4)
        b.inc("only_b")
        b.observe("depth", 5.0)
        b.observe("only_b_hist", 2.0)
        merged = a.merge(b)
        assert merged is a
        assert a.counters() == {"ops": 7, "only_b": 1}
        assert sorted(a.histograms()["depth"].values) == [1.0, 5.0]
        assert a.histograms()["only_b_hist"].count == 1
        # The right-hand side is read, never mutated.
        assert b.counters() == {"ops": 4, "only_b": 1}

    def test_merge_into_empty_registry_copies(self):
        b = MetricsRegistry()
        b.inc("x", 2)
        merged = MetricsRegistry().merge(b)
        assert merged.counters() == {"x": 2}


class TestRingTracer:
    def test_ring_mode_evicts_oldest_events(self):
        tracer = Tracer(mode="ring", ring_capacity=3)
        for i in range(5):
            tracer.emit(TraceEventKind.GENERATED, 1, op_id=f"c1_{i}")
        assert len(tracer.events) == 3
        assert [e.op_id for e in tracer.events] == ["c1_2", "c1_3", "c1_4"]
        # Indices keep counting: the ring drops events, not history.
        assert tracer.emitted == 5
        assert [e.index for e in tracer.events] == [2, 3, 4]

    def test_ring_capacity_implies_ring_mode(self):
        assert Tracer(ring_capacity=4).mode == "ring"

    def test_ring_mode_gets_a_default_capacity(self):
        tracer = Tracer(mode="ring")
        assert tracer.events.maxlen == Tracer.DEFAULT_RING_CAPACITY

    def test_invalid_mode_and_capacity_are_rejected(self):
        with pytest.raises(ValueError):
            Tracer(mode="circular")
        with pytest.raises(ValueError):
            Tracer(mode="ring", ring_capacity=0)


class TestRetransmitStormWatchdog:
    def test_fires_on_burst_and_rearms(self):
        dog = RetransmitStormWatchdog(threshold=10)
        assert dog.observe(frame_at(1, 0, retransmits=0)) == []
        # A slow trickle stays silent.
        assert dog.observe(frame_at(1, 1, retransmits=5)) == []
        events = dog.observe(frame_at(1, 2, retransmits=20))
        assert [e.kind for e in events] == ["retransmit_storm"]
        assert events[0].verdict == "warn"
        # Still storming: no duplicate verdict.
        assert dog.observe(frame_at(1, 3, retransmits=35)) == []
        # Calm interval re-arms; the next storm fires again.
        assert dog.observe(frame_at(1, 4, retransmits=36)) == []
        assert len(dog.observe(frame_at(1, 5, retransmits=50))) == 1

    def test_below_threshold_never_fires(self):
        dog = RetransmitStormWatchdog(threshold=10)
        for seq in range(10):
            assert dog.observe(frame_at(1, seq, retransmits=seq * 9)) == []


class TestCausalStallWatchdog:
    def test_fires_after_stall_window_without_progress(self):
        dog = CausalStallWatchdog(stall_after=2.0)
        assert dog.observe(frame_at(1, 0, time=0.0, ops_executed=4,
                                    holdback_depth=1)) == []
        assert dog.observe(frame_at(1, 1, time=1.0, ops_executed=4,
                                    holdback_depth=1)) == []
        events = dog.observe(frame_at(1, 2, time=2.5, ops_executed=4,
                                      holdback_depth=2))
        assert [e.kind for e in events] == ["causal_stall"]

    def test_progress_rearms(self):
        dog = CausalStallWatchdog(stall_after=2.0)
        dog.observe(frame_at(1, 0, time=0.0, ops_executed=4, holdback_depth=1))
        dog.observe(frame_at(1, 1, time=2.5, ops_executed=4, holdback_depth=1))
        # Execution resumed: re-armed, and an empty buffer stays silent.
        assert dog.observe(frame_at(1, 2, time=3.0, ops_executed=5,
                                    holdback_depth=0)) == []
        assert dog.observe(frame_at(1, 3, time=6.0, ops_executed=5,
                                    holdback_depth=0)) == []

    def test_empty_holdback_never_stalls(self):
        dog = CausalStallWatchdog(stall_after=1.0)
        dog.observe(frame_at(1, 0, time=0.0, ops_executed=3))
        assert dog.observe(frame_at(1, 1, time=9.0, ops_executed=3)) == []


class TestDivergenceSentinel:
    def test_silent_while_any_site_is_incomplete(self):
        dog = DivergenceSentinel(expected_ops=5)
        assert dog.observe(frame_at(1, 0, ops_executed=4, digest="aaa")) == []
        assert dog.observe(frame_at(2, 0, ops_executed=5, digest="bbb")) == []

    def test_matching_complete_digests_stay_silent(self):
        dog = DivergenceSentinel(expected_ops=5)
        dog.observe(frame_at(1, 0, ops_executed=5, digest="aaa"))
        assert dog.observe(frame_at(2, 0, ops_executed=5, digest="aaa")) == []

    def test_fires_once_per_diverged_pair(self):
        dog = DivergenceSentinel(expected_ops=5)
        dog.observe(frame_at(1, 0, ops_executed=5, digest="aaa"))
        events = dog.observe(frame_at(2, 0, ops_executed=5, digest="bbb"))
        assert [e.kind for e in events] == ["divergence"]
        assert events[0].verdict == "fail"
        assert events[0].peer == 1
        # The same pair stays flagged on later frames.
        assert dog.observe(frame_at(2, 1, ops_executed=5, digest="bbb")) == []


class TestSilenceWatchdog:
    def test_fires_once_after_silence_and_rearms_on_frames(self):
        dog = SilenceWatchdog(max_silence=2.0)
        dog.observe(frame_at(1, 0, time=0.0))
        assert dog.check(1.0) == []
        events = dog.check(3.0)
        assert [e.kind for e in events] == ["peer_silent"]
        assert events[0].verdict == "fail"
        assert dog.check(4.0) == []  # once per silence
        dog.observe(frame_at(1, 1, time=4.5))  # resumed: re-armed
        assert len(dog.check(7.0)) == 1

    def test_arrival_clock_overrides_frame_time(self):
        # Gossiped frames carry a foreign clock; the arrival clock must win.
        now = {"t": 100.0}
        dog = SilenceWatchdog(max_silence=2.0, clock=lambda: now["t"])
        dog.observe(frame_at(1, 0, time=0.5))
        assert dog.check(101.0) == []  # heard at 100, not at 0.5
        assert len(dog.check(103.0)) == 1


class TestSampler:
    def test_bounded_sampler_lets_the_simulator_quiesce(self):
        session = StarSession(3)
        drive_star_session(
            session, RandomSessionConfig(n_sites=3, ops_per_site=4, seed=2)
        )
        sampler = session.attach_telemetry(interval=0.5, max_samples=6)
        session.run()
        assert session.converged()
        assert 0 < sampler.samples_taken <= 6
        assert not sampler.running
        # One frame per endpoint (notifier + 3 clients) per sample.
        assert len(sampler.frames) == 4 * sampler.samples_taken
        final = [f for f in sampler.frames if f.seq == sampler.samples_taken - 1]
        assert {f.site for f in final} == {0, 1, 2, 3}

    def test_unbounded_inprocess_sampler_is_rejected(self):
        session = StarSession(2)
        with pytest.raises(ValueError):
            session.attach_telemetry(interval=0.5)

    def test_sampling_does_not_perturb_the_seeded_run(self):
        config = RandomSessionConfig(n_sites=3, ops_per_site=5, seed=7)
        plain = StarSession(3)
        drive_star_session(plain, config)
        plain.run()
        sampled = StarSession(3)
        drive_star_session(sampled, config)
        sampled.attach_telemetry(interval=0.25, max_samples=16)
        sampled.run()
        assert sampled.documents() == plain.documents()
        assert sampled.wire_stats().messages == plain.wire_stats().messages

    def test_watchdogs_see_fed_and_sampled_frames(self):
        sim = Simulator()
        dog = DivergenceSentinel(expected_ops=1)
        local = frame_at(0, 0, ops_executed=1, digest="aaa")
        sampler = TelemetrySampler(
            sim, lambda seq: [local], interval=1.0, watchdogs=[dog]
        )
        sampler.sample()
        sampler.feed(frame_at(1, 0, ops_executed=1, digest="bbb"))
        assert [e.kind for e in sampler.health] == ["divergence"]

    def test_stop_cancels_the_timer(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, lambda seq: [], interval=1.0)
        sampler.start(max_samples=100)
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        assert sim.run() == 0  # the cancelled timer never fires


class TestSnapshotEndpoint:
    def test_snapshot_reads_real_session_gauges(self):
        session = StarSession(2)
        drive_star_session(
            session, RandomSessionConfig(n_sites=2, ops_per_site=3, seed=0)
        )
        session.run()
        frames = session.telemetry_frames(seq=5)
        assert [f.site for f in frames] == [0, 1, 2]
        assert frames[0].role == "notifier"
        assert all(f.role == "client" for f in frames[1:])
        assert all(f.seq == 5 for f in frames)
        assert all(f.ops_executed == 6 for f in frames)
        assert all(f.storage_ints > 0 for f in frames)
        # Converged replicas gossip identical digests.
        assert len({f.digest for f in frames}) == 1


class TestJsonlWriter:
    def test_every_record_is_flushed_as_written(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        writer = JsonlWriter(path, {"format": "x", "schema_version": 1})
        writer.write_line('{"a": 1}')
        # Readable *before* close: the crash-safety property.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1]) == {"a": 1}
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError):
            writer.write_line("{}")

    def test_lenient_read_drops_only_a_torn_tail(self, tmp_path):
        header = {"format": "repro-obs-trace-v1", "schema_version": 2}
        text = json.dumps(header) + "\n" + \
            '{"i": 0, "kind": "generated", "t": 0.0, "site": 1, "op": "a"}\n' + \
            '{"i": 1, "kind": "exec'
        _header, events = read_jsonl(io.StringIO(text), lenient=True)
        assert [e.op_id for e in events] == ["a"]
        with pytest.raises(ValueError):
            read_jsonl(io.StringIO(text))  # strict mode still objects


class TestFlightRecorder:
    @staticmethod
    def ring_tracer(n_events: int) -> Tracer:
        tracer = Tracer(mode="ring", ring_capacity=4)
        for i in range(n_events):
            tracer.emit(TraceEventKind.GENERATED, 1, op_id=f"c1_{i}")
        return tracer

    def test_dump_writes_the_bounded_tail_in_trace_format(self, tmp_path):
        recorder = FlightRecorder(self.ring_tracer(10), capacity=3)
        path = tmp_path / "flight.jsonl"
        assert recorder.dump(path, reason="crash", site=1, role="client")
        with path.open() as fh:
            header, events = read_jsonl(fh)
        assert header["reason"] == "crash"
        assert header["flight_recorder"] is True
        assert header["emitted"] == 10
        assert [e.op_id for e in events] == ["c1_7", "c1_8", "c1_9"]

    def test_dump_is_once_only(self, tmp_path):
        recorder = FlightRecorder(self.ring_tracer(5))
        first = tmp_path / "first.jsonl"
        assert recorder.dump(first, reason="peer-death", site=1, role="client")
        assert recorder.dumped == "peer-death"
        assert not recorder.dump(tmp_path / "second.jsonl", reason="timeout",
                                 site=1, role="client")
        assert recorder.dumped == "peer-death"
        assert not (tmp_path / "second.jsonl").exists()
