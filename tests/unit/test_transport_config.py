"""Transport wiring errors and the consolidated retransmit policy.

Satellites of ISSUE 7: a transport used before its I/O hooks are
attached must fail with a :class:`TransportError` naming the miswired
endpoint (not a bare ``RuntimeError``), and every retransmit knob lives
in one frozen :class:`RetransmitPolicy` that the scalar fields of
``ReliabilityConfig`` keep mirroring for backward compatibility.
"""

from __future__ import annotations

import pytest

from repro.net.reliability import (
    RawTransport,
    ReliabilityConfig,
    ReliableEndpoint,
    RetransmitPolicy,
    TransportError,
)
from repro.net.simulator import Simulator
from repro.net.transport import Envelope


def test_unwired_raw_transport_send_names_the_endpoint() -> None:
    transport = RawTransport(pid=3)
    with pytest.raises(TransportError, match=r"pid=3.*wire_send"):
        transport.send(0, None, kind="op")


def test_unwired_raw_transport_delivery_names_the_endpoint() -> None:
    transport = RawTransport(pid=2)
    envelope = Envelope(source=0, dest=2, payload=None,
                        timestamp_bytes=0, kind="op")
    with pytest.raises(TransportError, match=r"pid=2.*deliver"):
        transport.on_wire(envelope)


def test_unwired_reliable_endpoint_raises_transport_error() -> None:
    endpoint = ReliableEndpoint(Simulator(), 1, ReliabilityConfig())
    with pytest.raises(TransportError, match=r"pid=1"):
        endpoint.send(0, None, kind="op")


def test_transport_error_is_a_runtime_error() -> None:
    # Callers that caught RuntimeError before the rename keep working.
    assert issubclass(TransportError, RuntimeError)


def test_wired_transport_does_not_raise() -> None:
    sent: list[tuple[int, str]] = []
    transport = RawTransport(
        wire_send=lambda dest, payload, ts, kind: sent.append((dest, kind)),
        deliver=lambda envelope: None,
        pid=1,
    )
    transport.send(0, None, kind="op")
    assert sent == [(0, "op")]


# -- RetransmitPolicy ----------------------------------------------------------


def test_default_policy_matches_legacy_scalar_defaults() -> None:
    config = ReliabilityConfig()
    policy = config.retransmit
    assert policy == RetransmitPolicy()
    assert (policy.base_rto, policy.max_rto, policy.backoff, policy.max_retries) \
        == (config.base_rto, config.max_rto, config.backoff, config.max_retries)


def test_legacy_scalars_populate_the_policy() -> None:
    config = ReliabilityConfig(base_rto=0.1, max_rto=0.4, backoff=3.0,
                               max_retries=2)
    assert config.retransmit == RetransmitPolicy(
        base_rto=0.1, max_rto=0.4, backoff=3.0, max_retries=2
    )


def test_explicit_policy_wins_and_mirrors_into_scalars() -> None:
    policy = RetransmitPolicy(base_rto=0.2, max_rto=1.6, backoff=2.0,
                              max_retries=None)
    config = ReliabilityConfig(retransmit=policy)
    assert config.retransmit is policy
    assert config.base_rto == 0.2
    assert config.max_rto == 1.6
    assert config.max_retries is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base_rto": 0.0},
        {"base_rto": -1.0},
        {"max_rto": 0.1, "base_rto": 0.5},  # max below base
        {"backoff": 0.5},
        {"max_retries": 0},
    ],
)
def test_malformed_policy_rejected(kwargs) -> None:
    with pytest.raises(ValueError):
        RetransmitPolicy(**kwargs)
