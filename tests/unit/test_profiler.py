"""Unit tests for the hot-path phase profiler.

The profiler's arithmetic is tested with injected counter clocks, so
every wall/cpu/self-time assertion is exact -- no sleeps, no tolerance
bands.  The activation model (module-global install/uninstall) and the
``profiled`` decorator's disabled path are covered alongside.
"""

import pytest

from repro.obs import profiler as profmod
from repro.obs.profiler import (
    PROFILE_SCHEMA_VERSION,
    PhaseProfiler,
    activated,
    install,
    profiled,
    uninstall,
)


class TickingClock:
    """A fake clock advancing by a fixed step per read."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def manual_profiler():
    """A profiler whose clocks only advance when the test says so."""
    wall = TickingClock(step=0.0)
    cpu = TickingClock(step=0.0)
    profiler = PhaseProfiler(wall_clock=wall, cpu_clock=cpu)
    return profiler, wall, cpu


class TestSpanArithmetic:
    def test_single_span_times_exactly(self):
        profiler, wall, cpu = manual_profiler()
        with profiler.phase("work"):
            wall.now += 5.0
            cpu.now += 3.0
        stats = profiler.stats()["work"]
        assert stats.calls == 1
        assert stats.wall == 5.0
        assert stats.cpu == 3.0
        assert stats.self_wall == 5.0

    def test_nested_span_self_time_excludes_children(self):
        profiler, wall, _ = manual_profiler()
        with profiler.phase("outer"):
            wall.now += 2.0
            with profiler.phase("inner"):
                wall.now += 7.0
            wall.now += 1.0
        outer = profiler.stats()["outer"]
        inner = profiler.stats()["inner"]
        assert outer.wall == 10.0  # 2 + 7 + 1
        assert outer.self_wall == 3.0  # net of the inner 7
        assert inner.wall == 7.0
        assert inner.self_wall == 7.0

    def test_recursive_phase_counts_wall_once(self):
        profiler, wall, _ = manual_profiler()
        # fib-style recursion: the same phase nested in itself must not
        # double-count cumulative wall time.
        with profiler.phase("rec"):
            wall.now += 1.0
            with profiler.phase("rec"):
                wall.now += 2.0
                with profiler.phase("rec"):
                    wall.now += 4.0
        stats = profiler.stats()["rec"]
        assert stats.calls == 3
        assert stats.wall == 7.0  # outermost activation only, not 7+6+4
        assert stats.self_wall == 7.0  # each level net of its child

    def test_call_counts_are_exact(self):
        profiler, _, _ = manual_profiler()
        for _ in range(13):
            with profiler.phase("a"):
                pass
        for _ in range(4):
            with profiler.phase("b"):
                pass
        assert profiler.phase_calls() == {"a": 13, "b": 4}

    def test_pop_without_push_raises(self):
        profiler, _, _ = manual_profiler()
        with pytest.raises(RuntimeError):
            profiler.pop()

    def test_open_spans_tracks_balance(self):
        profiler, _, _ = manual_profiler()
        assert profiler.open_spans == 0
        profiler.push("x")
        profiler.push("y")
        assert profiler.open_spans == 2
        profiler.pop()
        profiler.pop()
        assert profiler.open_spans == 0


class TestDisabledPath:
    def test_muted_profiler_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        with profiler.phase("work"):
            pass
        profiler.push("raw")
        profiler.pop()  # must not raise despite no matching frame
        assert profiler.stats() == {}
        assert profiler.phase_calls() == {}

    def test_decorator_calls_through_without_active_profiler(self):
        calls = []

        @profiled("unit.fn")
        def fn(x):
            calls.append(x)
            return x * 2

        assert profmod.ACTIVE is None
        assert fn(21) == 42
        assert calls == [21]

    def test_decorator_records_under_active_profiler(self):
        @profiled("unit.fn")
        def fn():
            return "ok"

        profiler = PhaseProfiler()
        with activated(profiler):
            fn()
            fn()
        assert profiler.phase_calls() == {"unit.fn": 2}

    def test_decorator_pops_on_exception(self):
        @profiled("unit.boom")
        def boom():
            raise ValueError("boom")

        profiler = PhaseProfiler()
        with activated(profiler):
            with pytest.raises(ValueError):
                boom()
            assert profiler.open_spans == 0
        assert profiler.phase_calls() == {"unit.boom": 1}


class TestActivation:
    def test_install_uninstall_round_trip(self):
        profiler = PhaseProfiler()
        install(profiler)
        try:
            assert profmod.ACTIVE is profiler
        finally:
            assert uninstall() is profiler
        assert profmod.ACTIVE is None

    def test_double_install_raises(self):
        first = PhaseProfiler()
        install(first)
        try:
            with pytest.raises(RuntimeError):
                install(PhaseProfiler())
            assert profmod.ACTIVE is first
        finally:
            uninstall()

    def test_activated_uninstalls_on_exception(self):
        with pytest.raises(ValueError):
            with activated(PhaseProfiler()):
                raise ValueError("boom")
        assert profmod.ACTIVE is None


class TestExport:
    def test_as_dict_is_sorted_and_versioned(self):
        profiler, wall, _ = manual_profiler()
        with profiler.phase("zeta"):
            wall.now += 1.0
        with profiler.phase("alpha"):
            wall.now += 2.0
        doc = profiler.as_dict()
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        assert [p["name"] for p in doc["phases"]] == ["alpha", "zeta"]
        assert doc["phases"][0] == {
            "name": "alpha",
            "calls": 1,
            "wall_s": 2.0,
            "cpu_s": 0.0,
            "self_wall_s": 2.0,
        }
        assert "top_functions" not in doc  # no cProfile capture configured

    def test_report_orders_hottest_first(self):
        profiler, wall, _ = manual_profiler()
        with profiler.phase("cool"):
            wall.now += 1.0
        with profiler.phase("hot"):
            wall.now += 9.0
        report = profiler.report()
        assert report.index("hot") < report.index("cool")

    def test_empty_report(self):
        profiler, _, _ = manual_profiler()
        assert "no phases" in profiler.report()

    def test_cprofile_top_captures_functions(self):
        profiler = PhaseProfiler(cprofile_top=5)
        with activated(profiler):  # install() starts the capture
            with profiler.phase("work"):
                sorted(range(1000), key=lambda x: -x)
        top = profiler.top_functions()
        assert 0 < len(top) <= 5
        assert all({"function", "calls", "tottime_s", "cumtime_s"} <= set(row) for row in top)
        assert "top_functions" in profiler.as_dict()

    def test_negative_cprofile_top_rejected(self):
        with pytest.raises(ValueError):
            PhaseProfiler(cprofile_top=-1)
