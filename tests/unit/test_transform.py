"""Unit tests for IT/ET transformation rules (repro.ot.transform)."""

import pytest

from repro.ot.operations import Delete, Identity, Insert, OperationGroup
from repro.ot.transform import (
    TransformError,
    exclusion_transform,
    inclusion_transform,
    transform_pair,
)


def check_tp1(doc, a, b, a_priority=True):
    """Assert TP1 for a pair and return the merged result."""
    a2, b2 = transform_pair(a, b, a_priority)
    left = b2.apply(a.apply(doc))
    right = a2.apply(b.apply(doc))
    assert left == right, f"TP1 violated: {left!r} != {right!r} for {a}, {b}"
    return left


class TestITInsertInsert:
    def test_disjoint_positions(self):
        a, b = Insert("x", 1), Insert("y", 3)
        assert inclusion_transform(a, b) == a
        assert inclusion_transform(b, a) == Insert("y", 4)

    def test_same_position_priority_side_stays(self):
        a, b = Insert("x", 2), Insert("y", 2)
        assert inclusion_transform(a, b, a_priority=True) == a
        assert inclusion_transform(a, b, a_priority=False) == Insert("x", 3)

    def test_same_position_tp1(self):
        result = check_tp1("abcd", Insert("x", 2), Insert("y", 2))
        assert result == "abxycd"

    def test_paper_example_tp1(self):
        # O_1 = Insert["12", 1] vs O_2 = Delete[3, 2] handled below, but
        # two inserts around it as a sanity case:
        check_tp1("ABCDE", Insert("12", 1), Insert("zz", 4))


class TestITInsertDelete:
    def test_insert_before_delete(self):
        a = Insert("x", 1)
        b = Delete(2, 3)
        assert inclusion_transform(a, b) == a

    def test_insert_at_delete_start_unmoved(self):
        assert inclusion_transform(Insert("x", 3), Delete(2, 3)) == Insert("x", 3)

    def test_insert_after_delete_shifts_left(self):
        assert inclusion_transform(Insert("x", 5), Delete(2, 1)) == Insert("x", 3)

    def test_insert_inside_deleted_region_relocates(self):
        assert inclusion_transform(Insert("x", 4), Delete(3, 2)) == Insert("x", 2)

    def test_paper_O2_against_O1(self):
        # The paper: IT(O_2, O_1) where O_2 = Delete[3,2], O_1 = Insert["12",1]
        # yields O_2' = Delete[3,4].
        o2_prime = inclusion_transform(Delete(3, 2), Insert("12", 1))
        assert o2_prime == Delete(3, 4)
        assert o2_prime.apply("A12BCDE") == "A12B"

    def test_tp1_overlap(self):
        check_tp1("ABCDE", Insert("x", 3), Delete(3, 1))


class TestITDeleteInsert:
    def test_insert_after_delete_range(self):
        a = Delete(2, 1)
        assert inclusion_transform(a, Insert("x", 3)) == a

    def test_insert_at_or_before_delete_start_shifts(self):
        assert inclusion_transform(Delete(2, 3), Insert("xy", 1)) == Delete(2, 5)
        assert inclusion_transform(Delete(2, 3), Insert("xy", 3)) == Delete(2, 5)

    def test_insert_inside_delete_splits(self):
        result = inclusion_transform(Delete(4, 1), Insert("XY", 3))
        assert isinstance(result, OperationGroup)
        left, right = result.members
        assert left == Delete(2, 1)
        assert right == Delete(2, 3)
        # "a" + "bc" + deleted... verify semantics on a document:
        # base "abcdef", a deletes "bcde"; b inserts "XY" at 3.
        assert result.apply(Insert("XY", 3).apply("abcdef")) == "aXYf"

    def test_split_preserves_tp1(self):
        assert check_tp1("abcdef", Delete(4, 1), Insert("XY", 3)) == "aXYf"


class TestITDeleteDelete:
    def test_disjoint_before(self):
        a = Delete(2, 0)
        assert inclusion_transform(a, Delete(2, 4)) == a

    def test_disjoint_after_shifts(self):
        assert inclusion_transform(Delete(2, 4), Delete(2, 0)) == Delete(2, 2)

    def test_partial_overlap_left(self):
        # a deletes [1,4), b deletes [2,5): survivor is [1,2)
        assert inclusion_transform(Delete(3, 1), Delete(3, 2)) == Delete(1, 1)

    def test_partial_overlap_right(self):
        # a deletes [2,5), b deletes [1,4): survivor is [4,5) at pos 1
        assert inclusion_transform(Delete(3, 2), Delete(3, 1)) == Delete(1, 1)

    def test_a_contains_b(self):
        # a deletes [0,6), b deletes [2,4): survivors [0,2) + [4,6)
        assert inclusion_transform(Delete(6, 0), Delete(2, 2)) == Delete(4, 0)

    def test_b_contains_a_annihilates(self):
        assert inclusion_transform(Delete(2, 2), Delete(6, 0)) == Identity()

    def test_identical_deletes_annihilate(self):
        assert inclusion_transform(Delete(3, 1), Delete(3, 1)) == Identity()

    def test_tp1_all_overlap_shapes(self):
        doc = "abcdefghij"
        cases = [
            (Delete(3, 1), Delete(3, 2)),
            (Delete(3, 2), Delete(3, 1)),
            (Delete(6, 0), Delete(2, 2)),
            (Delete(2, 2), Delete(6, 0)),
            (Delete(3, 1), Delete(3, 1)),
            (Delete(2, 0), Delete(2, 8)),
        ]
        for a, b in cases:
            check_tp1(doc, a, b)


class TestITEdgeCases:
    def test_identity_operands(self):
        op = Insert("x", 1)
        assert inclusion_transform(op, Identity()) == op
        assert inclusion_transform(Identity(), op) == Identity()

    def test_group_operand_folds(self):
        group = OperationGroup((Delete(1, 0), Delete(1, 1)))
        single = Insert("z", 5)
        a2, b2 = transform_pair(single, group)
        # semantics check on a document
        doc = "abcdefg"
        assert b2.apply(single.apply(doc)) == a2.apply(group.apply(doc))

    def test_unknown_type_raises(self):
        class Weird:
            pass

        with pytest.raises(TransformError):
            inclusion_transform(Insert("x", 0), Weird())  # type: ignore[arg-type]


class TestExclusionTransform:
    def test_et_inverts_it_insert_insert(self):
        a, b = Insert("x", 1), Insert("yy", 3)
        assert exclusion_transform(inclusion_transform(a, b), b) == a
        a2 = Insert("x", 5)
        assert exclusion_transform(inclusion_transform(a2, b), b) == a2

    def test_et_inverts_it_insert_delete(self):
        b = Delete(2, 2)
        for a in (Insert("x", 1), Insert("x", 6)):
            assert exclusion_transform(inclusion_transform(a, b), b) == a

    def test_et_inverts_it_delete_delete_disjoint(self):
        b = Delete(2, 2)
        for a in (Delete(2, 0), Delete(2, 6)):
            assert exclusion_transform(inclusion_transform(a, b), b) == a

    def test_et_delete_straddling_restored_region_splits(self):
        # a (post-b) deletes across the point where b removed text.
        result = exclusion_transform(Delete(4, 1), Delete(2, 3))
        assert isinstance(result, OperationGroup)
        left, right = result.members
        assert left == Delete(2, 1)
        assert right == Delete(2, 3)

    def test_et_semantics_against_document(self):
        # S = "abcdef"; b = Delete(2, 2) -> "abef"; a defined on "abef".
        # ET rebases a onto S: executing a_pre then b-included-in-a_pre
        # must equal executing b then a.
        b = Delete(2, 2)
        a = Delete(2, 0)  # deletes "ab" from "abef"
        a_pre = exclusion_transform(a, b)
        assert a_pre == Delete(2, 0)
        b_after = inclusion_transform(b, a_pre)
        assert b_after.apply(a_pre.apply("abcdef")) == a.apply(b.apply("abcdef"))

    def test_et_delete_insert_lossy_interior(self):
        # a deletes text b inserted; excluding b leaves nothing to delete.
        b = Insert("XY", 2)
        a = Delete(2, 2)  # exactly b's text
        assert exclusion_transform(a, b) == Identity()

    def test_et_group_operand(self):
        b = OperationGroup((Insert("X", 0), Insert("Y", 5)))
        a = Insert("z", 3)
        restored = exclusion_transform(a, b)
        assert restored == Insert("z", 2)
