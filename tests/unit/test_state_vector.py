"""Unit tests for state vectors and timestamps (repro.core)."""

import pytest

from repro.core.state_vector import ClientStateVector, NotifierStateVector
from repro.core.timestamp import CompressedTimestamp, FullTimestamp


class TestClientStateVector:
    def test_initially_zero(self):
        sv = ClientStateVector(1)
        assert sv.as_paper_list() == [0, 0]

    def test_rejects_site_zero(self):
        with pytest.raises(ValueError):
            ClientStateVector(0)

    def test_rule_2_remote_execution(self):
        sv = ClientStateVector(2)
        sv.record_remote_execution()
        assert sv.as_paper_list() == [1, 0]

    def test_rule_3_local_execution(self):
        sv = ClientStateVector(2)
        sv.record_local_execution()
        assert sv.as_paper_list() == [0, 1]

    def test_timestamp_snapshots_current_value(self):
        sv = ClientStateVector(2)
        sv.record_local_execution()
        ts = sv.timestamp()
        assert ts.as_paper_list() == [0, 1]
        sv.record_remote_execution()
        # the earlier snapshot must not move
        assert ts.as_paper_list() == [0, 1]

    def test_fig3_site2_sequence(self):
        """Site 2's SV trajectory through the Fig. 3 scenario."""
        sv = ClientStateVector(2)
        sv.record_local_execution()  # O2
        assert sv.timestamp().as_paper_list() == [0, 1]
        sv.record_remote_execution()  # O1'
        sv.record_local_execution()  # O3
        assert sv.timestamp().as_paper_list() == [1, 2]
        sv.record_remote_execution()  # O4'
        assert sv.as_paper_list() == [2, 2]

    def test_storage_is_two_integers(self):
        assert ClientStateVector(9).storage_ints() == 2


class TestNotifierStateVector:
    def test_initially_zero(self):
        sv = NotifierStateVector(3)
        assert sv.as_paper_list() == [0, 0, 0]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            NotifierStateVector(0)

    def test_one_based_indexing(self):
        sv = NotifierStateVector(3)
        sv.record_execution_from(2)
        assert sv[2] == 1
        assert sv[1] == 0
        with pytest.raises(ValueError):
            sv[0]
        with pytest.raises(ValueError):
            sv[4]

    def test_compression_formulas_1_and_2(self):
        """Fig. 3: after O_1 executes, SV_0 = [1,1,0]; the broadcasts of
        O_1' carry [1,1] to site 2 and [2,0] to site 3."""
        sv = NotifierStateVector(3)
        sv.record_execution_from(2)  # O2
        assert sv.compress_for_destination(1).as_paper_list() == [1, 0]
        assert sv.compress_for_destination(3).as_paper_list() == [1, 0]
        sv.record_execution_from(1)  # O1
        assert sv.compress_for_destination(2).as_paper_list() == [1, 1]
        assert sv.compress_for_destination(3).as_paper_list() == [2, 0]

    def test_full_timestamp_snapshot(self):
        sv = NotifierStateVector(3)
        sv.record_execution_from(2)
        ts = sv.full_timestamp()
        assert ts.as_paper_list() == [0, 1, 0]
        sv.record_execution_from(1)
        assert ts.as_paper_list() == [0, 1, 0]  # snapshot frozen

    def test_total(self):
        sv = NotifierStateVector(2)
        sv.record_execution_from(1)
        sv.record_execution_from(1)
        sv.record_execution_from(2)
        assert sv.total() == 3

    def test_storage_and_size(self):
        sv = NotifierStateVector(10)
        assert sv.storage_ints() == 10
        assert sv.size_bytes() == 40


class TestCompressedTimestamp:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CompressedTimestamp(-1, 0)

    def test_constant_wire_size(self):
        assert CompressedTimestamp(0, 0).size_bytes() == 8
        assert CompressedTimestamp(10**9, 10**9).size_bytes() == 8

    def test_repr_paper_notation(self):
        assert repr(CompressedTimestamp(3, 1)) == "[3,1]"


class TestFullTimestamp:
    def test_one_based_indexing(self):
        ts = FullTimestamp((1, 2, 1))
        assert ts[2] == 2
        with pytest.raises(IndexError):
            ts[0]

    def test_sum_excluding(self):
        ts = FullTimestamp((1, 2, 1))
        assert ts.sum_excluding(2) == 2
        assert ts.sum_excluding(1) == 3

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            FullTimestamp(())
        with pytest.raises(ValueError):
            FullTimestamp((1, -1))

    def test_size_scales_with_n(self):
        assert FullTimestamp((0,) * 12).size_bytes() == 48
