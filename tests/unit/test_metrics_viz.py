"""Unit tests for metrics accounting and the ASCII figure renderers."""

import pytest

from repro.metrics.accounting import (
    compressed_timestamp_bytes,
    full_vector_timestamp_bytes,
    lamport_timestamp_bytes,
    memory_comparison,
    overhead_sweep,
    sk_expected_timestamp_bytes,
)
from repro.viz.spacetime import DiagramEvent, render_spacetime, render_star_topology


class TestAccounting:
    def test_full_vector_linear_in_n(self):
        assert full_vector_timestamp_bytes(1) == 4
        assert full_vector_timestamp_bytes(256) == 1024
        with pytest.raises(ValueError):
            full_vector_timestamp_bytes(0)

    def test_compressed_is_constant(self):
        assert compressed_timestamp_bytes() == 8

    def test_lamport_is_single_int(self):
        assert lamport_timestamp_bytes() == 4

    def test_sk_bounded_by_full_vector(self):
        for n in (4, 16, 64):
            measured = sk_expected_timestamp_bytes(n, locality=0.0, messages=400)
            assert 0 < measured <= 2 * full_vector_timestamp_bytes(n)

    def test_sk_locality_helps(self):
        local = sk_expected_timestamp_bytes(32, locality=0.95, messages=800)
        uniform = sk_expected_timestamp_bytes(32, locality=0.0, messages=800)
        assert local < uniform

    def test_sk_validation(self):
        with pytest.raises(ValueError):
            sk_expected_timestamp_bytes(1, 0.5)
        with pytest.raises(ValueError):
            sk_expected_timestamp_bytes(4, 1.5)

    def test_sk_deterministic_under_seed(self):
        a = sk_expected_timestamp_bytes(8, 0.5, seed=3, messages=200)
        b = sk_expected_timestamp_bytes(8, 0.5, seed=3, messages=200)
        assert a == b

    def test_overhead_sweep_rows(self):
        rows = overhead_sweep([2, 8], messages=100)
        assert [r.n for r in rows] == [2, 8]
        for row in rows:
            assert row.compressed == 8
            assert row.full_vector == 4 * row.n
            assert "|" in row.as_row()

    def test_memory_comparison(self):
        rows = memory_comparison([4, 100])
        for row in rows:
            assert row.compressed_client == 2
            assert row.sk_per_process == 3 * row.n
            assert row.compressed_notifier == row.n
            assert "|" in row.as_row()


class TestViz:
    def test_star_topology_mentions_all_parts(self):
        art = render_star_topology(3)
        assert "notifier" in art
        assert "[site 1]" in art and "[site 3]" in art
        assert "3 REDUCE applets" in art

    def test_star_topology_truncates_large_n(self):
        art = render_star_topology(50)
        assert "and 42 more" in art

    def test_star_topology_spokes_align_with_site_row(self):
        """One spoke per shown client, centred over its [site i] cell --
        including for n_clients > 6 (the old cap left sites 7-8 bare)."""
        for n in (1, 4, 7, 8, 12):
            art = render_star_topology(n)
            lines = art.splitlines()
            spokes, row = lines[5], lines[6]
            shown = min(n, 8)
            assert spokes.count("/") + spokes.count("\\") == shown
            for i in range(1, shown + 1):
                cell = f"[site {i}]"
                centre = row.index(cell) + len(cell) // 2
                assert spokes[centre] in "/\\"

    def test_star_topology_rejects_zero(self):
        with pytest.raises(ValueError):
            render_star_topology(0)

    def test_spacetime_rows_sorted_by_time(self):
        events = [
            DiagramEvent(2.0, 1, "exec O2'"),
            DiagramEvent(1.0, 2, "gen O2"),
        ]
        art = render_spacetime(3, events)
        lines = art.splitlines()
        assert "gen O2" in lines[2]
        assert "exec O2'" in lines[3]
        assert "t=1" in lines[2]

    def test_spacetime_rejects_bad_site(self):
        with pytest.raises(ValueError):
            render_spacetime(2, [DiagramEvent(1.0, 5, "x")])
        with pytest.raises(ValueError):
            render_spacetime(0, [])

    def test_diagram_events_from_recorded_trace(self):
        """A real traced session feeds the Fig. 2/3 renderer directly."""
        from repro.editor import StarSession
        from repro.obs import Tracer
        from repro.ot.operations import Insert
        from repro.viz.spacetime import diagram_events_from_trace

        tracer = Tracer()
        session = StarSession(2, tracer=tracer)
        session.generate_at(1, Insert("a", 0), at=0.1)
        session.generate_at(2, Insert("b", 0), at=0.2)
        session.run()
        rows = diagram_events_from_trace(tracer.events)
        assert rows, "the trace produced no diagram rows"
        labels = [row.label for row in rows]
        assert any(label.startswith("gen c1_1") for label in labels)
        assert any(label.startswith("exec c1_1") for label in labels)
        art = render_spacetime(3, rows)
        assert "gen c1_1" in art and "exec c1_1'" in art
