"""Unit tests for component text operations (repro.ot.component)."""

import pytest

from repro.ot.component import ComponentError, TextOperation
from repro.ot.operations import Delete, Identity, Insert, OperationGroup


def op(*steps):
    """Build a TextOperation from (kind, value) shorthand."""
    out = TextOperation()
    for step in steps:
        if isinstance(step, str):
            out.insert(step)
        elif step > 0:
            out.retain(step)
        else:
            out.delete(-step)
    return out


class TestBuilders:
    def test_lengths_tracked(self):
        o = op(2, "xy", -1, 3)
        assert o.base_length == 6
        assert o.target_length == 7

    def test_adjacent_retains_merge(self):
        o = TextOperation().retain(2).retain(3)
        assert o.components == [5]

    def test_adjacent_inserts_merge(self):
        o = TextOperation().insert("ab").insert("cd")
        assert o.components == ["abcd"]

    def test_adjacent_deletes_merge(self):
        o = TextOperation().delete(2).delete(1)
        assert o.components == [-3]

    def test_insert_after_delete_canonicalised(self):
        # delete-then-insert normalises to insert-then-delete
        o = TextOperation().delete(2).insert("x")
        assert o.components == ["x", -2]

    def test_zero_components_dropped(self):
        o = TextOperation().retain(0).insert("").delete(0)
        assert o.components == []

    def test_negative_retain_rejected(self):
        with pytest.raises(ComponentError):
            TextOperation().retain(-1)

    def test_negative_delete_rejected(self):
        with pytest.raises(ComponentError):
            TextOperation().delete(-1)


class TestApply:
    def test_pure_retain_is_noop(self):
        assert TextOperation.noop(3).apply("abc") == "abc"

    def test_insert_middle(self):
        assert op(1, "XY", 2).apply("abc") == "aXYbc"

    def test_delete_middle(self):
        assert op(1, -1, 1).apply("abc") == "ac"

    def test_replace(self):
        assert op(1, "Z", -1, 1).apply("abc") == "aZc"

    def test_length_mismatch_raises(self):
        with pytest.raises(ComponentError):
            op(2).apply("abc")

    def test_is_noop(self):
        assert TextOperation.noop(5).is_noop()
        assert not op(1, "x", 4).is_noop()

    def test_char_counters(self):
        o = op(1, "xy", -3, 2)
        assert o.inserted_chars() == 2
        assert o.deleted_chars() == 3


class TestInvert:
    def test_invert_roundtrip(self):
        doc = "hello world"
        o = op(5, -1, "_", 5)
        done = o.apply(doc)
        assert o.invert(doc).apply(done) == doc

    def test_invert_insert_is_delete(self):
        doc = "abc"
        o = op(1, "ZZ", 2)
        inv = o.invert(doc)
        assert inv.apply(o.apply(doc)) == doc


class TestCompose:
    def test_compose_applies_sequentially(self):
        doc = "abcdef"
        a = op(2, "X", 4)
        b = op(1, -2, 4)
        composed = a.compose(b)
        assert composed.apply(doc) == b.apply(a.apply(doc))

    def test_compose_length_mismatch_raises(self):
        with pytest.raises(ComponentError):
            op(3).compose(op(5))

    def test_insert_then_delete_annihilates(self):
        a = op("xyz")
        b = op(-3)
        assert a.compose(b).apply("") == ""

    def test_compose_chain(self):
        doc = "0123456789"
        ops = [op(10, "a"), op(3, -4, 4), op(1, "Q", 6)]
        composed = ops[0]
        expected = ops[0].apply(doc)
        for o in ops[1:]:
            composed = composed.compose(o)
            expected = o.apply(expected)
        assert composed.apply(doc) == expected


class TestTransform:
    def test_tp1_simple(self):
        doc = "abcdef"
        a = op(2, "X", 4)
        b = op(4, -1, 1)
        a2, b2 = a.transform(b)
        assert b2.apply(a.apply(doc)) == a2.apply(b.apply(doc))

    def test_insert_tie_priority(self):
        doc = "ab"
        a = op(1, "X", 1)
        b = op(1, "Y", 1)
        a2, b2 = a.transform(b, self_priority=True)
        assert b2.apply(a.apply(doc)) == "aXYb"
        a3, b3 = a.transform(b, self_priority=False)
        assert b3.apply(a.apply(doc)) == "aYXb"

    def test_both_delete_same_span(self):
        doc = "abcdef"
        a = op(1, -3, 2)
        b = op(2, -3, 1)
        a2, b2 = a.transform(b)
        assert b2.apply(a.apply(doc)) == a2.apply(b.apply(doc)) == "af"

    def test_base_length_mismatch_raises(self):
        with pytest.raises(ComponentError):
            op(3).transform(op(4))


class TestConversions:
    def test_from_positional_insert(self):
        o = TextOperation.from_positional(Insert("12", 1), 5)
        assert o.apply("ABCDE") == "A12BCDE"

    def test_from_positional_delete(self):
        o = TextOperation.from_positional(Delete(3, 2), 5)
        assert o.apply("ABCDE") == "AB"

    def test_from_positional_group(self):
        group = OperationGroup((Delete(2, 1), Delete(2, 3)))
        o = TextOperation.from_positional(group, 7)
        assert o.apply("abcdefg") == group.apply("abcdefg")

    def test_to_positional_roundtrip(self):
        doc = "abcdefgh"
        o = op(2, "XY", -3, 3)
        positional = o.to_positional()
        assert positional.apply(doc) == o.apply(doc)

    def test_to_positional_identity(self):
        assert TextOperation.noop(4).to_positional() == Identity()
