"""Unit tests for the observability tracer and metrics registry.

The contracts the rest of the stack relies on: events are appended in
emission order with dense indices (the trace doubles as a topological
order), the disabled path records nothing, serialisation round-trips
losslessly, and the metrics registry counts and summarises correctly.
"""

from __future__ import annotations

import io

import pytest

from repro.obs import (
    TRACE_FORMAT,
    Histogram,
    MetricsRegistry,
    TraceEvent,
    TraceEventKind,
    Tracer,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


class TestEmission:
    def test_events_are_appended_in_order_with_dense_indices(self):
        tracer = Tracer()
        tracer.emit(TraceEventKind.GENERATED, 1, op_id="c1_1")
        tracer.emit(TraceEventKind.SENT, 1, op_id="c1_1", peer=0)
        tracer.emit(TraceEventKind.EXECUTED, 0, op_id="c1_1")
        assert [e.index for e in tracer.events] == [0, 1, 2]
        assert [e.kind for e in tracer.events] == [
            TraceEventKind.GENERATED,
            TraceEventKind.SENT,
            TraceEventKind.EXECUTED,
        ]
        assert len(tracer) == 3

    def test_bound_clock_stamps_virtual_time(self):
        now = {"t": 0.0}
        tracer = Tracer()
        tracer.bind_clock(lambda: now["t"])
        tracer.emit(TraceEventKind.GENERATED, 1, op_id="a")
        now["t"] = 2.5
        tracer.emit(TraceEventKind.EXECUTED, 0, op_id="a")
        assert [e.time for e in tracer.events] == [0.0, 2.5]

    def test_explicit_time_overrides_clock(self):
        tracer = Tracer(clock=lambda: 9.0)
        event = tracer.emit(TraceEventKind.GENERATED, 1, op_id="a", time=1.25)
        assert event is not None and event.time == 1.25

    def test_emit_bumps_per_kind_counters(self):
        tracer = Tracer()
        tracer.emit(TraceEventKind.GENERATED, 1)
        tracer.emit(TraceEventKind.GENERATED, 2)
        tracer.emit(TraceEventKind.RETRANSMITTED, 1)
        assert tracer.metrics.counter("trace.generated") == 2
        assert tracer.metrics.counter("trace.retransmitted") == 1
        assert tracer.metrics.counter("trace.executed") == 0

    def test_by_kind_filters(self):
        tracer = Tracer()
        tracer.emit(TraceEventKind.GENERATED, 1, op_id="a")
        tracer.emit(TraceEventKind.EXECUTED, 0, op_id="a")
        tracer.emit(TraceEventKind.GENERATED, 2, op_id="b")
        assert [e.op_id for e in tracer.by_kind(TraceEventKind.GENERATED)] == ["a", "b"]


class TestDisabledMode:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        result = tracer.emit(TraceEventKind.GENERATED, 1, op_id="a")
        assert result is None
        assert len(tracer) == 0
        assert tracer.metrics.counters() == {}

    def test_disabled_then_reenabled(self):
        tracer = Tracer(enabled=False)
        tracer.emit(TraceEventKind.GENERATED, 1)
        tracer.enabled = True
        tracer.emit(TraceEventKind.EXECUTED, 0)
        assert [e.kind for e in tracer.events] == [TraceEventKind.EXECUTED]


class TestSerialisation:
    def _sample_events(self):
        tracer = Tracer()
        tracer.emit(
            TraceEventKind.GENERATED, 1, op_id="c1_1", timestamp=(0, 1), time=0.5
        )
        tracer.emit(
            TraceEventKind.HELD_BACK, 2, op_id="c1_1'", peer=0, epoch=1, seq=3,
            time=0.75,
        )
        tracer.emit(
            TraceEventKind.RELEASED, 2, op_id="c1_1'", peer=0, epoch=1, seq=3,
            via="holdback", time=0.9,
        )
        tracer.emit(
            TraceEventKind.TRANSFORMED, 0, op_id="c1_1'", source_op_id="c1_1",
            time=0.6,
        )
        return tracer.events

    def test_jsonl_round_trip(self):
        events = self._sample_events()
        buffer = io.StringIO()
        lines = write_jsonl(events, buffer, header={"sites": 2})
        assert lines == len(events) + 1
        buffer.seek(0)
        header, restored = read_jsonl(buffer)
        assert header["format"] == TRACE_FORMAT
        assert header["sites"] == 2
        assert restored == events

    def test_read_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            read_jsonl(io.StringIO('{"format": "something-else"}\n'))

    def test_event_json_omits_none_fields(self):
        event = TraceEvent(index=0, kind=TraceEventKind.GENERATED, time=0.0, site=1)
        assert set(event.to_json()) and "peer" not in event.to_json()
        assert TraceEvent.from_json(event.to_json()) == event

    def test_chrome_trace_contains_instants_and_op_spans(self):
        import json

        events = self._sample_events()
        buffer = io.StringIO()
        records = write_chrome_trace(events, buffer)
        data = json.loads(buffer.getvalue())
        assert len(data["traceEvents"]) == records
        phases = {r["ph"] for r in data["traceEvents"]}
        assert "i" in phases  # instants
        assert {"b", "e"} <= phases  # async span begin/end per op


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        assert metrics.inc("x") == 1
        assert metrics.inc("x", 4) == 5
        assert metrics.counter("x") == 5
        assert metrics.counter("missing") == 0
        assert metrics.counters() == {"x": 5}

    def test_histograms(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.observe("lat", value)
        hist = metrics.histogram("lat")
        assert hist.count == 3
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0
        assert "lat" in metrics.summary()

    def test_histogram_percentiles(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(100) == 100.0
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_histogram_returns_none(self):
        hist = Histogram()
        assert hist.mean is None
        assert hist.minimum is None
        assert hist.maximum is None
        assert hist.percentile(50) is None
        with pytest.raises(ValueError):
            hist.percentile(101)
        assert hist.summary() == "n=0"

    def test_single_sample_histogram(self):
        hist = Histogram()
        hist.observe(7.0)
        for p in (0, 50, 99, 100):
            assert hist.percentile(p) == 7.0
        assert hist.minimum == 7.0 == hist.maximum == hist.mean
