"""Unit tests for the end-to-end latency observatory (repro.obs.spans).

The skew-estimator tests are deterministic constructions of the model in
the module docstring: sites with known clock offsets ``theta``, links
with known one-way delays, and assertions that the estimate lands where
the math says it must -- exact under symmetric delays, within the
documented ``RTT_min / 2`` bound under asymmetry, and *refused* (not
guessed) when a pair has no bidirectional path.
"""

import pytest

from repro.obs.spans import (
    PairLatency,
    SkewEstimator,
    SpanReport,
    assemble_spans,
)
from repro.obs.tracer import TraceEvent, TraceEventKind


def sample(est, src, dst, delay, theta):
    """Feed one sample for a true one-way ``delay`` between skewed clocks.

    The receiver observes ``delay + (theta[dst] - theta[src])`` -- the
    quantity the estimator actually gets in production.
    """
    est.add_sample(src, dst, delay + theta[dst] - theta[src])


class TestSkewEstimator:
    def test_symmetric_link_recovers_exact_offset(self):
        # Site 1's clock runs 50 ms ahead of site 0; delays symmetric.
        theta = {0: 0.0, 1: 0.050}
        est = SkewEstimator()
        for delay in (0.004, 0.002, 0.003):
            sample(est, 0, 1, delay, theta)
            sample(est, 1, 0, delay, theta)
        offset = est.edge_offset(0, 1)
        assert offset == pytest.approx(0.050, abs=1e-12)
        # min delay 2 ms each way => bound is exactly 2 ms.
        assert est.edge_error(0, 1) == pytest.approx(0.002, abs=1e-12)

    def test_negative_offset_recovered(self):
        # The other direction: site 1 runs 50 ms *behind* site 0.
        theta = {0: 0.0, 1: -0.050}
        est = SkewEstimator()
        sample(est, 0, 1, 0.005, theta)
        sample(est, 1, 0, 0.005, theta)
        assert est.edge_offset(0, 1) == pytest.approx(-0.050, abs=1e-12)

    def test_asymmetric_delay_error_within_documented_bound(self):
        # 10 ms forward, 30 ms back, true offset +50 ms.  The estimator
        # sees m_01 = 60 ms, m_10 = -20 ms => estimate 40 ms: off by
        # 10 ms = half the asymmetry, within the 20 ms published bound.
        theta = {0: 0.0, 1: 0.050}
        est = SkewEstimator()
        sample(est, 0, 1, 0.010, theta)
        sample(est, 1, 0, 0.030, theta)
        offset = est.edge_offset(0, 1)
        bound = est.edge_error(0, 1)
        assert offset == pytest.approx(0.040, abs=1e-12)
        assert bound == pytest.approx(0.020, abs=1e-12)
        assert abs(offset - 0.050) <= bound

    def test_minimum_filter_discards_queueing_noise(self):
        # One clean sample per direction beats any amount of later
        # queueing-delay noise: the estimator keys on per-edge minima.
        theta = {0: 0.0, 1: 0.050}
        est = SkewEstimator()
        sample(est, 0, 1, 0.002, theta)
        sample(est, 1, 0, 0.002, theta)
        for noisy in (0.040, 0.120, 0.500):
            sample(est, 0, 1, noisy, theta)
            sample(est, 1, 0, noisy, theta)
        assert est.edge_offset(0, 1) == pytest.approx(0.050, abs=1e-12)
        assert est.sample_count(0, 1) == 4

    def test_one_way_link_is_uncorrectable(self):
        # Samples in only one direction: no RTT, no bound, no guess.
        est = SkewEstimator()
        est.add_sample(0, 1, 0.010)
        assert est.edge_offset(0, 1) is None
        assert est.edge_error(0, 1) is None
        assert est.pair_offset(0, 1) is None
        assert est.pair_offset(1, 0) is None

    def test_pair_offset_composes_through_the_centre(self):
        # Star topology: 1 and 2 never exchange samples directly, but
        # both share a bidirectional link with centre 0.  Their offset
        # is the composition, and the error bounds add along the path.
        theta = {0: 0.0, 1: 0.050, 2: -0.020}
        est = SkewEstimator()
        for a in (1, 2):
            sample(est, a, 0, 0.003, theta)
            sample(est, 0, a, 0.003, theta)
        composed = est.pair_offset(1, 2)
        assert composed is not None
        offset, bound = composed
        # theta_2 - theta_1 = -0.020 - 0.050
        assert offset == pytest.approx(-0.070, abs=1e-12)
        assert bound == pytest.approx(0.006, abs=1e-12)  # 3 ms + 3 ms

    def test_identity_pair(self):
        assert SkewEstimator().pair_offset(3, 3) == (0.0, 0.0)


def span(index, stage, *, site, time, peer=None, op_id=None, origin_time=None):
    return TraceEvent(
        index=index,
        kind=TraceEventKind.SPAN,
        time=time,
        site=site,
        peer=peer,
        op_id=op_id,
        via=stage,
        origin_time=origin_time,
    )


def star_trace(theta, *, ingest_delay=0.002, fanout_delay=0.003):
    """A one-op synthetic trace: client 1 -> centre 0 -> client 2.

    All event times are rendered on each site's own (skewed) clock, the
    way real per-process tracers would stamp them.
    """
    origin_true = 1.0  # true time the op was generated at site 1
    origin_stamp = origin_true + theta[1]
    ingest_true = origin_true + ingest_delay
    exec_true = ingest_true + fanout_delay
    events = [
        span(0, "generate", site=1, time=origin_stamp,
             op_id="1'1", origin_time=origin_stamp),
        span(1, "ingest", site=0, time=ingest_true + theta[0],
             peer=1, op_id="1'1", origin_time=origin_stamp),
        span(2, "broadcast", site=0, time=ingest_true + theta[0],
             peer=1, op_id="1'1", origin_time=origin_stamp),
        span(3, "execute", site=0, time=ingest_true + theta[0],
             peer=1, op_id="1'1", origin_time=origin_stamp),
        span(4, "execute", site=2, time=exec_true + theta[2],
             peer=1, op_id="1'1", origin_time=origin_stamp),
        # The return samples that make links bidirectional: site 1 also
        # executes an op that 2 originated through the centre.
        span(5, "generate", site=2, time=2.0 + theta[2],
             op_id="2'1", origin_time=2.0 + theta[2]),
        span(6, "ingest", site=0, time=2.0 + ingest_delay + theta[0],
             peer=2, op_id="2'1", origin_time=2.0 + theta[2]),
        span(7, "broadcast", site=0, time=2.0 + ingest_delay + theta[0],
             peer=2, op_id="2'1", origin_time=2.0 + theta[2]),
        span(8, "execute", site=1,
             time=2.0 + ingest_delay + fanout_delay + theta[1],
             peer=2, op_id="2'1", origin_time=2.0 + theta[2]),
    ]
    return events


class TestAssembleSpans:
    def test_empty_trace(self):
        report = assemble_spans([])
        assert report.span_events == 0
        assert report.pairs == {}
        assert report.summary_lines() == []

    def test_non_span_events_ignored(self):
        event = TraceEvent(index=0, kind=TraceEventKind.GENERATED,
                           time=0.0, site=1, op_id="1'1")
        report = assemble_spans([event])
        assert report.span_events == 0

    def test_skew_corrected_latency_recovers_true_delay(self):
        # 80 ms of clock skew between origin and executor; the true
        # end-to-end pipeline is 5 ms.  Raw latency is garbage
        # (skew-dominated); corrected latency is the true delay.
        theta = {0: 0.010, 1: 0.050, 2: -0.030}
        report = assemble_spans(star_trace(theta))
        pair = report.pairs[(1, 2)]
        assert pair.correctable
        raw = pair.raw.percentile(50)
        corrected = pair.corrected.percentile(50)
        assert raw == pytest.approx(0.005 + theta[2] - theta[1], abs=1e-9)
        assert corrected == pytest.approx(0.005, abs=1e-9)
        # The composed offset is exact here (symmetric construction).
        assert pair.offset_s == pytest.approx(theta[2] - theta[1], abs=1e-9)

    def test_stage_counts(self):
        report = assemble_spans(star_trace({0: 0.0, 1: 0.0, 2: 0.0}))
        assert report.span_events == 9
        assert report.stage_counts["generate"] == 2
        assert report.stage_counts["ingest"] == 2
        assert report.stage_counts["broadcast"] == 2
        assert report.stage_counts["execute"] == 3

    def test_uncorrectable_pair_flagged_and_raw(self):
        # Only the forward half of the trace: site 2 never originates,
        # so the 0<->2 link has no return samples -- (1, 2) cannot be
        # corrected and must be flagged, not silently guessed.
        events = star_trace({0: 0.0, 1: 0.040, 2: 0.0})[:5]
        report = assemble_spans(events)
        pair = report.pairs[(1, 2)]
        assert not pair.correctable
        assert pair.corrected is None
        assert (1, 2) in report.uncorrectable_pairs
        assert "UNCORRECTABLE" in pair.row()
        text = "\n".join(report.summary_lines())
        assert "uncorrectable skew" in text
        # Raw latencies are still published for the flagged pair.
        assert pair.raw.count == 1

    def test_to_dict_shape(self):
        report = assemble_spans(star_trace({0: 0.0, 1: 0.0, 2: 0.0}))
        doc = report.to_dict()
        assert doc["span_events"] == 9
        assert doc["uncorrectable_pairs"] == []
        assert doc["e2e_p95_ms"] is not None
        by_pair = {(p["origin"], p["executor"]): p for p in doc["pairs"]}
        assert by_pair[(1, 2)]["corrected"] is True
        assert by_pair[(1, 2)]["p50_ms"] == pytest.approx(5.0, abs=1e-6)

    def test_all_corrected_unions_correctable_pairs_only(self):
        report = SpanReport(span_events=1)
        good = PairLatency(origin=1, executor=2)
        good.raw.observe(0.005)
        from repro.obs.tracer import Histogram

        good.corrected = Histogram()
        good.corrected.observe(0.005)
        bad = PairLatency(origin=2, executor=1)
        bad.raw.observe(9.9)
        report.pairs = {(1, 2): good, (2, 1): bad}
        merged = report.all_corrected()
        assert merged.count == 1
        assert merged.percentile(50) == pytest.approx(0.005)
