"""The cluster's trace merge and its vector-clock cross-check.

Per-process traces arrive with private indices and same-host wall-clock
stamps; :func:`merge_traces` must produce one stream that is a
topological order of the causal DAG even when clock skew stamps an
execution *before* the generation it depends on.  The vector-clock
replay is the independent algorithm the merged trace is checked
against.
"""

from __future__ import annotations

from repro.clocks.vector import Ordering, compare
from repro.cluster.check import (
    analyze_cluster,
    cross_check_merged_trace,
    merge_traces,
    trace_vector_clock_hb,
)
from repro.cluster.harness import ProcessResult
from repro.obs.analysis import TraceCausality
from repro.obs.tracer import TraceEvent, TraceEventKind


def _event(index: int, kind: TraceEventKind, time: float, site: int,
           **kw) -> TraceEvent:
    return TraceEvent(index=index, kind=kind, time=time, site=site, **kw)


def test_merge_orders_by_time_and_reindexes() -> None:
    a = [
        _event(0, TraceEventKind.GENERATED, 1.0, 1, op_id="1-1"),
        _event(1, TraceEventKind.EXECUTED, 3.0, 1, op_id="1-1'"),
    ]
    b = [
        _event(0, TraceEventKind.GENERATED, 0.5, 2, op_id="2-1"),
        _event(1, TraceEventKind.TRANSFORMED, 2.0, 0, op_id="1-1'",
               source_op_id="1-1"),
    ]
    merged = merge_traces([a, b])
    assert [e.index for e in merged] == [0, 1, 2, 3]
    assert [e.op_id for e in merged] == ["2-1", "1-1", "1-1'", "1-1'"]
    assert [e.time for e in merged] == [0.5, 1.0, 2.0, 3.0]


def test_merge_repairs_clock_skew_on_execution() -> None:
    # Site 1's clock runs ahead: its EXECUTED is stamped *before* the
    # notifier's TRANSFORMED that generated the op.  The merge must
    # defer the execution anyway.
    executor = [_event(0, TraceEventKind.EXECUTED, 1.0, 1, op_id="2-1'")]
    notifier = [
        _event(0, TraceEventKind.GENERATED, 0.5, 2, op_id="2-1"),
        _event(1, TraceEventKind.TRANSFORMED, 2.0, 0, op_id="2-1'",
               source_op_id="2-1"),
    ]
    merged = merge_traces([executor, notifier])
    kinds = [e.kind for e in merged]
    assert kinds.index(TraceEventKind.TRANSFORMED) \
        < kinds.index(TraceEventKind.EXECUTED)
    # The repaired stream must satisfy the strict analysis layer.
    TraceCausality(merged)


def test_merge_preserves_per_stream_program_order() -> None:
    # Stream-internal order survives even when timestamps say otherwise
    # (a site's own trace IS its program order).
    stream = [
        _event(0, TraceEventKind.GENERATED, 2.0, 1, op_id="1-1"),
        _event(1, TraceEventKind.GENERATED, 1.0, 1, op_id="1-2"),
    ]
    merged = merge_traces([stream])
    assert [e.op_id for e in merged] == ["1-1", "1-2"]


def test_merge_emits_blocked_heads_rather_than_hanging() -> None:
    # A dead process never wrote the generation; the merge must still
    # terminate (the analysis layer then reports the dangling EXECUTED).
    orphan = [_event(0, TraceEventKind.EXECUTED, 1.0, 1, op_id="ghost'")]
    merged = merge_traces([orphan])
    assert len(merged) == 1


def test_vector_clock_replay_agrees_with_dag_reachability() -> None:
    # 1-1 happens-before its transform 1-1'; 2-1 is concurrent with 1-1.
    events = [
        _event(0, TraceEventKind.GENERATED, 1.0, 1, op_id="1-1"),
        _event(1, TraceEventKind.GENERATED, 1.1, 2, op_id="2-1"),
        _event(2, TraceEventKind.EXECUTED, 1.5, 0, op_id="1-1"),
        _event(3, TraceEventKind.TRANSFORMED, 1.5, 0, op_id="1-1'",
               source_op_id="1-1"),
        _event(4, TraceEventKind.EXECUTED, 1.6, 0, op_id="2-1"),
        _event(5, TraceEventKind.TRANSFORMED, 1.6, 0, op_id="2-1'",
               source_op_id="2-1"),
        _event(6, TraceEventKind.EXECUTED, 2.0, 2, op_id="1-1'"),
        _event(7, TraceEventKind.EXECUTED, 2.1, 1, op_id="2-1'"),
    ]
    clocks = trace_vector_clock_hb(events, n_sites=2)
    assert compare(clocks["1-1"], clocks["1-1'"]) is Ordering.BEFORE
    assert compare(clocks["1-1"], clocks["2-1"]) is Ordering.CONCURRENT
    report = cross_check_merged_trace(TraceCausality(events), n_sites=2)
    assert report.ok
    assert report.n_ops == 4
    assert report.pairs_checked == 12


def test_analyze_cluster_full_verdict() -> None:
    streams = [
        [
            _event(0, TraceEventKind.GENERATED, 1.0, 1, op_id="1-1"),
            _event(1, TraceEventKind.EXECUTED, 1.8, 1, op_id="1-1'"),
        ],
        [
            _event(0, TraceEventKind.EXECUTED, 1.4, 0, op_id="1-1"),
            _event(1, TraceEventKind.TRANSFORMED, 1.4, 0, op_id="1-1'",
                   source_op_id="1-1"),
        ],
    ]
    results = [
        ProcessResult(role="client", site=1, document="abc", executed_ops=1),
        ProcessResult(role="notifier", site=0, document="abc", executed_ops=1),
    ]
    report = analyze_cluster(results, streams, expected_ops=1, n_sites=1)
    assert report.ok, report.summary()
    assert report.converged
    assert report.executed_ops == {0: 1, 1: 1}
    assert "OK" in report.summary()


def test_analyze_cluster_flags_divergence_and_timeout() -> None:
    results = [
        ProcessResult(role="client", site=1, document="abc", executed_ops=1),
        ProcessResult(role="notifier", site=0, document="abX", executed_ops=1,
                      timed_out=True),
    ]
    report = analyze_cluster(results, [[], []], expected_ops=1, n_sites=1)
    assert not report.converged
    assert report.timed_out
    assert not report.ok
    assert "FAILED" in report.summary()


def test_process_result_json_roundtrip() -> None:
    from repro.session.base import CheckRecord

    result = ProcessResult(
        role="client", site=2, document="doc", executed_ops=5,
        checks=[CheckRecord(site=2, new_op_id="2-1", buffered_op_id="1-1",
                            verdict=True, new_timestamp=[1, 0],
                            buffered_timestamp=[0, 1])],
        timed_out=False, lost_local_edits=0, retransmits=3,
        messages_sent=9, wire_bytes=412,
    )
    restored = ProcessResult.from_json(result.to_json())
    assert restored == result
