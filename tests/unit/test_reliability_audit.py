"""The in-order release audit must be falsifiable.

Regression for a review finding: ``delivered_in_order()`` used to
compare two counters (``link.delivered`` and ``link.recv_next``) that
were only ever incremented together and reset together, so it was a
tautology.  It now replays an independent trace of the ``(epoch, seq)``
pairs actually released to the editor; these tests feed it every
corruption it claims to detect.
"""

from repro.editor.star import ReliabilityConfig, ReliableEndpoint
from repro.net.simulator import Simulator


def make_endpoint() -> ReliableEndpoint:
    return ReliableEndpoint(Simulator(), 0, ReliabilityConfig())


class TestDeliveredInOrderAudit:
    def test_empty_trace_passes(self):
        assert make_endpoint().delivered_in_order()

    def test_contiguous_per_epoch_trace_passes(self):
        ep = make_endpoint()
        ep._release_trace[1] = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]
        ep._release_trace[2] = [(0, 0)]
        assert ep.delivered_in_order()

    def test_gap_fails(self):
        ep = make_endpoint()
        ep._release_trace[1] = [(0, 0), (0, 2)]
        assert not ep.delivered_in_order()

    def test_swap_fails(self):
        ep = make_endpoint()
        ep._release_trace[1] = [(0, 1), (0, 0)]
        assert not ep.delivered_in_order()

    def test_duplicate_release_fails(self):
        ep = make_endpoint()
        ep._release_trace[1] = [(0, 0), (0, 0), (0, 1)]
        assert not ep.delivered_in_order()

    def test_epoch_regression_fails(self):
        ep = make_endpoint()
        ep._release_trace[1] = [(1, 0), (0, 0)]
        assert not ep.delivered_in_order()

    def test_new_epoch_must_restart_at_seq_zero(self):
        ep = make_endpoint()
        ep._release_trace[1] = [(0, 0), (1, 1)]
        assert not ep.delivered_in_order()

    def test_one_bad_source_taints_the_endpoint(self):
        ep = make_endpoint()
        ep._release_trace[1] = [(0, 0), (0, 1)]
        ep._release_trace[2] = [(0, 1)]  # source 2 never released seq 0
        assert not ep.delivered_in_order()
