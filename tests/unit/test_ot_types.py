"""Unit tests for the generic OT type registry (repro.ot.types)."""

import pytest

from repro.ot.types import (
    CounterOp,
    CounterType,
    ListOp,
    ListType,
    LWWRegisterType,
    PositionalTextType,
    RegisterOp,
    TextComponentType,
    get_type,
    register_type,
)
from repro.ot.component import TextOperation
from repro.ot.operations import Delete, Insert


def assert_tp1(ot, state, a, b, a_priority=True):
    a2, b2 = ot.transform(a, b, a_priority)
    left = ot.apply(ot.apply(state, a), b2)
    right = ot.apply(ot.apply(state, b), a2)
    assert left == right, f"TP1 violated for {ot.name}: {left!r} != {right!r}"
    return left


class TestRegistry:
    def test_builtin_types_registered(self):
        for name in ("text-component", "text-positional", "list", "counter", "lww-register"):
            assert get_type(name).name == name

    def test_unknown_type_raises_with_listing(self):
        with pytest.raises(KeyError, match="registered"):
            get_type("no-such-type")

    def test_register_requires_name(self):
        with pytest.raises(TypeError):
            register_type(object())

    def test_reregistration_replaces(self):
        t = CounterType()
        register_type(t)
        assert get_type("counter") is t


class TestPositionalTextType:
    def test_initial_empty(self):
        assert PositionalTextType().initial() == ""

    def test_apply(self):
        ot = PositionalTextType()
        assert ot.apply("ABCDE", Insert("12", 1)) == "A12BCDE"

    def test_tp1(self):
        ot = PositionalTextType()
        assert_tp1(ot, "ABCDE", Insert("12", 1), Delete(3, 2))

    def test_serialized_size(self):
        ot = PositionalTextType()
        assert ot.serialized_size(Insert("ab", 1)) == 6
        assert ot.serialized_size(Delete(3, 2)) == 8


class TestTextComponentType:
    def test_tp1(self):
        ot = TextComponentType()
        a = TextOperation().retain(1).insert("12").retain(4)
        b = TextOperation().retain(2).delete(3)
        assert_tp1(ot, "ABCDE", a, b)

    def test_serialized_size_counts_strings_and_ints(self):
        ot = TextComponentType()
        o = TextOperation().retain(2).insert("xy").delete(1)
        assert ot.serialized_size(o) == 4 + 3 + 4


class TestListType:
    def test_apply_insert_delete(self):
        ot = ListType()
        state = ot.apply(ot.initial(), ListOp("ins", 0, "a"))
        state = ot.apply(state, ListOp("ins", 1, "b"))
        assert state == ("a", "b")
        assert ot.apply(state, ListOp("del", 0)) == ("b",)

    def test_out_of_range_rejected(self):
        ot = ListType()
        with pytest.raises(ValueError):
            ot.apply((), ListOp("del", 0))
        with pytest.raises(ValueError):
            ot.apply((), ListOp("ins", 1, "x"))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            ListOp("upsert", 0)

    def test_tp1_insert_insert_tie(self):
        ot = ListType()
        state = ("x", "y")
        assert_tp1(ot, state, ListOp("ins", 1, "a"), ListOp("ins", 1, "b"))

    def test_tp1_delete_same_element(self):
        ot = ListType()
        state = ("x", "y", "z")
        result = assert_tp1(ot, state, ListOp("del", 1), ListOp("del", 1))
        assert result == ("x", "z")

    def test_tp1_insert_vs_delete(self):
        ot = ListType()
        state = ("x", "y")
        assert_tp1(ot, state, ListOp("ins", 0, "a"), ListOp("del", 0))

    def test_tp1_exhaustive_small(self):
        ot = ListType()
        state = ("p", "q", "r")
        ops = [ListOp("ins", i, f"v{i}") for i in range(4)] + [
            ListOp("del", i) for i in range(3)
        ]
        for a in ops:
            for b in ops:
                assert_tp1(ot, state, a, b, a_priority=True)
                assert_tp1(ot, state, a, b, a_priority=False)


class TestCounterType:
    def test_commutative(self):
        ot = CounterType()
        assert assert_tp1(ot, 0, CounterOp(3), CounterOp(-1)) == 2

    def test_transform_is_identity(self):
        ot = CounterType()
        a, b = CounterOp(1), CounterOp(2)
        assert ot.transform(a, b, True) == (a, b)


class TestLWWRegisterType:
    def test_priority_side_wins_both_orders(self):
        ot = LWWRegisterType()
        a, b = RegisterOp("from-a"), RegisterOp("from-b")
        result = assert_tp1(ot, None, a, b, a_priority=True)
        assert result == "from-a"
        result = assert_tp1(ot, None, a, b, a_priority=False)
        assert result == "from-b"
