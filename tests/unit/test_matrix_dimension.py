"""Unit tests for matrix clocks and the dimension-bound demonstration."""

import pytest

from repro.clocks.dimension import (
    crown_execution,
    min_faithful_projection_size,
    projection_is_faithful,
)
from repro.clocks.matrix import MatrixClock
from repro.clocks.vector import VectorClock


class TestMatrixClock:
    def test_initially_zero(self):
        mc = MatrixClock(0, 3)
        assert mc.vector() == VectorClock.zero(3)
        assert mc.stable_vector() == VectorClock.zero(3)

    def test_pid_validation(self):
        with pytest.raises(ValueError):
            MatrixClock(3, 3)

    def test_own_row_is_vector_clock(self):
        a, b = MatrixClock(0, 2), MatrixClock(1, 2)
        ts = a.prepare_send()
        b.receive(0, ts)
        assert a.vector() == VectorClock.of([1, 0])
        assert b.vector() == VectorClock.of([1, 1])

    def test_embedded_vector_matches_plain_protocol(self):
        import random

        rng = random.Random(5)
        n = 4
        mats = [MatrixClock(pid, n) for pid in range(n)]
        plain = [VectorClock.zero(n) for _ in range(n)]
        for _ in range(200):
            sender = rng.randrange(n)
            dest = rng.randrange(n)
            while dest == sender:
                dest = rng.randrange(n)
            ts = mats[sender].prepare_send()
            plain[sender] = plain[sender].tick(sender)
            mats[dest].receive(sender, ts)
            plain[dest] = plain[dest].merge(plain[sender]).tick(dest)
            assert mats[dest].vector() == plain[dest]

    def test_stability_tracks_universal_knowledge(self):
        """After a full all-to-all exchange, early events become stable."""
        n = 3
        mats = [MatrixClock(pid, n) for pid in range(n)]
        # round 1: everyone broadcasts one event
        stamps = [m.prepare_send() for m in mats]
        for receiver in range(n):
            for sender in range(n):
                if sender != receiver:
                    mats[receiver].receive(sender, stamps[sender])
        # nobody knows yet that OTHERS know: first events not stable anywhere
        assert all(m.known_by_all(0) == 0 for m in mats)
        # round 2: broadcast again, spreading the knowledge
        stamps = [m.prepare_send() for m in mats]
        for receiver in range(n):
            for sender in range(n):
                if sender != receiver:
                    mats[receiver].receive(sender, stamps[sender])
        # now every process knows every process saw the first events
        for m in mats:
            assert m.known_by_all(0) >= 1
            assert m.stable_vector().dominates(VectorClock.of([1, 1, 1]))

    def test_receive_validation(self):
        mc = MatrixClock(0, 2)
        with pytest.raises(ValueError):
            mc.receive(0, [[0]])
        with pytest.raises(ValueError):
            mc.receive(5, [[0, 0], [0, 0]])

    def test_storage_and_wire_size(self):
        assert MatrixClock(0, 8).storage_ints() == 64
        assert MatrixClock.timestamp_bytes(8) == 256


class TestDimensionBound:
    def test_crown_shape(self):
        clocks, sites = crown_execution(3)
        assert set(clocks) == {"s0", "s1", "s2", "r0", "r1", "r2"}
        # sends pairwise concurrent, receives dominate all other sends
        from repro.clocks.vector import concurrent

        assert concurrent(clocks["s0"], clocks["s1"])
        assert clocks["r0"].dominates(clocks["s1"])
        assert clocks["r0"].dominates(clocks["s2"])
        assert sites["r2"] == 2

    def test_crown_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            crown_execution(1)

    def test_full_projection_always_faithful(self):
        clocks, _ = crown_execution(4)
        assert projection_is_faithful(clocks, (0, 1, 2, 3))

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_crown_needs_all_n_coordinates(self, n):
        """Charron-Bost: no strict subset of coordinates decides the
        crown's causality -- the lower bound the paper cites."""
        clocks, _ = crown_execution(n)
        assert min_faithful_projection_size(clocks) == n

    def test_dropping_any_coordinate_breaks_the_crown(self):
        clocks, _ = crown_execution(4)
        for dropped in range(4):
            coords = tuple(c for c in range(4) if c != dropped)
            assert not projection_is_faithful(clocks, coords)

    def test_star_session_is_two_dimensional(self):
        """The paper's escape: after redefinition at the notifier, the
        events a CLIENT compares live in a 2-D structure.  Model site
        i's view: one stream from the notifier, one local stream --
        the crown structure never arises, and 2 coordinates suffice."""
        # events: c1..c3 local ops at site 1 (coord 1); n1..n3 notifier
        # stream ops (coord 0); interleaved knowledge
        clocks = {
            "n1": VectorClock.of([1, 0]),
            "n2": VectorClock.of([2, 1]),  # notifier had seen c1
            "n3": VectorClock.of([3, 2]),
            "c1": VectorClock.of([0, 1]),
            "c2": VectorClock.of([1, 2]),  # client had seen n1
            "c3": VectorClock.of([3, 3]),
        }
        assert projection_is_faithful(clocks, (0, 1))
        assert min_faithful_projection_size(clocks) == 2
