"""Unit tests for the failover-detection primitives of the transport.

Three mechanisms were added to :mod:`repro.net.reliability` for notifier
failover, each tested here in isolation (the end-to-end election and
promotion protocol lives in ``tests/integration/test_failover.py``):

* the bounded retransmit budget -- after ``max_retries`` consecutive
  rounds without acknowledgement progress the endpoint declares the
  peer dead (``on_peer_dead`` fires once), parks the link, and
  resurrects it automatically if the peer ever speaks again;
* the bounded liveness probe (:meth:`ReliableEndpoint.probe_peer`)
  used to confirm a death suspicion before electing a successor;
* the hold-back queue capacity bound (:class:`HoldbackOverflow`).
"""

from __future__ import annotations

import pytest

from repro.net.faults import FaultPlan, NotifierCrash
from repro.net.holdback import HoldbackOverflow, HoldbackQueue
from repro.net.reliability import (
    ReliabilityConfig,
    ReliablePacket,
    ReliableEndpoint,
)
from repro.net.simulator import Simulator
from repro.net.transport import Envelope


def blackhole(dest, payload, ts_bytes, kind):
    """A wire that loses everything: the peer never hears us."""


def make_endpoint(sim, pid=1, wire_send=blackhole, **config_kwargs):
    config = ReliabilityConfig(
        base_rto=0.1, max_rto=0.4, probe_interval=0.1, **config_kwargs
    )
    delivered = []
    endpoint = ReliableEndpoint(
        sim, pid, config, wire_send=wire_send, deliver=delivered.append
    )
    return endpoint, delivered


def arrival(endpoint, source, packet):
    """Feed one packet into the endpoint as if the network delivered it."""
    endpoint.on_wire(
        Envelope(source=source, dest=endpoint.pid, payload=packet, kind="ack")
    )


class TestRetransmitBudget:
    def test_budget_exhaustion_reports_the_death_once(self):
        sim = Simulator()
        endpoint, _ = make_endpoint(sim, max_retries=2)
        deaths = []
        endpoint.on_peer_dead = deaths.append
        endpoint.send(9, "payload")
        sim.run()
        assert deaths == [9]
        assert endpoint.stats.give_ups == 1
        assert endpoint.stats.retransmits == 2  # exactly the budget

    def test_give_up_quiesces_the_simulator(self):
        """A dead link must not keep a retransmit timer armed forever."""
        sim = Simulator()
        endpoint, _ = make_endpoint(sim, max_retries=1)
        endpoint.on_peer_dead = lambda peer: None
        endpoint.send(9, "payload")
        sim.run()
        assert sim.pending_events == 0

    def test_sends_to_a_dead_peer_are_parked_not_wired(self):
        sim = Simulator()
        wired = []
        endpoint, _ = make_endpoint(
            sim, max_retries=1,
            wire_send=lambda dest, payload, ts, kind: wired.append(payload),
        )
        endpoint.on_peer_dead = lambda peer: None
        endpoint.send(9, "first")
        sim.run()
        before = len(wired)
        endpoint.send(9, "second")  # parked in the send window
        sim.run()
        assert len(wired) == before
        assert endpoint.stats.sent == 2

    def test_any_arrival_resurrects_a_parked_link(self):
        sim = Simulator()
        wired = []
        endpoint, _ = make_endpoint(
            sim, max_retries=1,
            wire_send=lambda dest, payload, ts, kind: wired.append(payload),
        )
        endpoint.on_peer_dead = lambda peer: None
        endpoint.send(9, "first")
        sim.run()
        endpoint.send(9, "second")  # parked while dead
        parked = len(wired)
        # The peer speaks (a bare ack of nothing): proof of life.
        arrival(endpoint, 9, ReliablePacket(seq=-1, epoch=0, ack=-1))
        sim.run(until=sim.now + 0.2)  # one base RTO: window retransmits
        assert len(wired) > parked
        assert endpoint.stats.give_ups == 1  # the death was not re-reported

    def test_ack_progress_refills_the_budget(self):
        sim = Simulator()
        endpoint, _ = make_endpoint(sim, max_retries=3)
        deaths = []
        endpoint.on_peer_dead = deaths.append
        endpoint.send(9, "payload")
        sim.run(until=0.25)  # burn part of the budget (>= 1 retry round)
        assert endpoint.stats.retransmits >= 1
        arrival(endpoint, 9, ReliablePacket(seq=-1, epoch=0, ack=0))  # acked
        sim.run()
        assert deaths == []
        assert endpoint.stats.give_ups == 0

    def test_retry_forever_when_budget_is_none(self):
        sim = Simulator()
        endpoint, _ = make_endpoint(sim, max_retries=None)
        deaths = []
        endpoint.on_peer_dead = deaths.append
        endpoint.send(9, "payload")
        sim.run(until=10.0)
        assert deaths == []
        assert endpoint.stats.retransmits > 12


class TestLivenessProbe:
    def test_silence_through_the_budget_means_dead(self):
        sim = Simulator()
        endpoint, _ = make_endpoint(sim, max_probes=3)
        alive, dead = [], []
        endpoint.probe_peer(9, on_alive=alive.append, on_dead=dead.append)
        sim.run()
        assert dead == [9] and alive == []
        assert endpoint.stats.probes_sent == 3
        assert sim.pending_events == 0  # bounded: the probe quiesced

    def test_any_arrival_resolves_the_probe_as_alive(self):
        sim = Simulator()
        endpoint, _ = make_endpoint(sim, max_probes=5)
        alive, dead = [], []
        endpoint.probe_peer(9, on_alive=alive.append, on_dead=dead.append)
        sim.schedule(
            0.15,
            lambda: arrival(endpoint, 9, ReliablePacket(seq=-1, epoch=0, ack=-1)),
        )
        sim.run()
        assert alive == [9] and dead == []
        assert endpoint.stats.probes_sent < 5

    def test_two_live_endpoints_answer_each_others_probes(self):
        sim = Simulator()
        config = ReliabilityConfig(base_rto=0.1, max_rto=0.4, probe_interval=0.1)
        a = ReliableEndpoint(sim, 1, config, deliver=lambda env: None)
        b = ReliableEndpoint(sim, 2, config, deliver=lambda env: None)

        def wire(src, dst):
            def send(dest, payload, ts_bytes, kind):
                env = Envelope(source=src.pid, dest=dest, payload=payload, kind=kind)
                sim.schedule_after(0.02, lambda: dst.on_wire(env))

            return send

        a.wire_send = wire(a, b)
        b.wire_send = wire(b, a)
        alive, dead = [], []
        a.probe_peer(2, on_alive=alive.append, on_dead=dead.append)
        sim.run()
        assert alive == [2] and dead == []

    def test_probe_requires_the_reliability_protocol(self):
        sim = Simulator()
        endpoint = ReliableEndpoint(sim, 1, None)
        with pytest.raises(RuntimeError):
            endpoint.probe_peer(9, lambda p: None, lambda p: None)

    def test_probe_packets_are_unsequenced(self):
        with pytest.raises(ValueError):
            ReliablePacket(seq=3, epoch=0, ack=-1, probe=True)


class TestHoldbackCapacity:
    def test_overflow_raises_at_the_high_water_mark(self):
        queue = HoldbackQueue(capacity=2)
        queue.hold("s", 5, "a")
        queue.hold("s", 7, "b")
        with pytest.raises(HoldbackOverflow) as excinfo:
            queue.hold("s", 9, "c")
        assert excinfo.value.capacity == 2
        assert excinfo.value.seq == 9
        assert len(queue) == 2  # the overflowing item was not held

    def test_pop_frees_capacity(self):
        queue = HoldbackQueue(capacity=1)
        queue.hold("s", 5, "a")
        assert queue.pop("s", 5) == "a"
        assert queue.hold("s", 6, "b")  # no overflow after the pop

    def test_duplicate_slot_is_rejected_before_the_capacity_check(self):
        queue = HoldbackQueue(capacity=1)
        queue.hold("s", 5, "a")
        assert queue.hold("s", 5, "dup") is False  # no HoldbackOverflow

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            HoldbackQueue(capacity=0)

    def test_endpoint_holdback_limit_bounds_the_reorder_buffer(self):
        sim = Simulator()
        endpoint, _ = make_endpoint(sim, holdback_limit=2)
        # seq 0 never arrives: everything above it is held back.
        for seq in (1, 2):
            arrival(endpoint, 9, ReliablePacket(seq=seq, epoch=0, ack=-1, payload="x"))
        with pytest.raises(HoldbackOverflow):
            arrival(endpoint, 9, ReliablePacket(seq=3, epoch=0, ack=-1, payload="x"))


class TestConfigAndPlanValidation:
    def test_probe_parameters_validated(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(probe_interval=0.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_probes=0)

    def test_retry_budget_validated(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=0)

    def test_holdback_limit_validated(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(holdback_limit=0)

    def test_notifier_crash_validated(self):
        with pytest.raises(ValueError):
            NotifierCrash(at=-1.0)

    def test_fault_plan_carries_the_notifier_crash(self):
        plan = FaultPlan(notifier_crash=NotifierCrash(at=3.0))
        assert plan.notifier_crash.at == 3.0
        assert FaultPlan().notifier_crash is None
