"""Unit tests for the history buffer (repro.core.history)."""

from repro.core.history import HistoryBuffer, HistoryEntry
from repro.core.timestamp import CompressedTimestamp, OriginKind
from repro.ot.operations import Insert


def entry(op_id, second, kind=OriginKind.LOCAL):
    return HistoryEntry(
        op=Insert("x", 0),
        timestamp=CompressedTimestamp(0, second),
        origin_site=1,
        origin_kind=kind,
        op_id=op_id,
    )


class TestHistoryBuffer:
    def test_append_preserves_order(self):
        hb = HistoryBuffer()
        hb.append(entry("a", 1))
        hb.append(entry("b", 2))
        assert hb.op_ids() == ["a", "b"]
        assert len(hb) == 2
        assert hb[0].op_id == "a"

    def test_iteration(self):
        hb = HistoryBuffer()
        hb.append(entry("a", 1))
        assert [e.op_id for e in hb] == ["a"]

    def test_concurrent_entries_filters_in_order(self):
        hb = HistoryBuffer()
        hb.append(entry("a", 1))
        hb.append(entry("b", 2))
        hb.append(entry("c", 3))
        picked = hb.concurrent_entries(lambda e: e.timestamp.second >= 2)
        assert [e.op_id for e in picked] == ["b", "c"]

    def test_garbage_collect(self):
        hb = HistoryBuffer()
        for i in range(5):
            hb.append(entry(f"op{i}", i))
        removed = hb.garbage_collect(lambda e: e.timestamp.second >= 3)
        assert removed == 3
        assert hb.op_ids() == ["op3", "op4"]

    def test_clear(self):
        hb = HistoryBuffer()
        hb.append(entry("a", 1))
        hb.clear()
        assert len(hb) == 0

    def test_entry_op_is_mutable_for_retransformation(self):
        e = entry("a", 1)
        e.op = Insert("y", 3)
        assert e.op == Insert("y", 3)
