"""Unit tests for the discrete-event simulator (repro.net.simulator)."""

import pytest

from repro.net.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda name=name: fired.append(name))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_after(0.5, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.5]

    def test_schedule_after_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-0.1, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(k):
            fired.append(k)
            if k < 4:
                sim.schedule_after(1.0, lambda: chain(k + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]


class TestRunControls:
    def test_run_until_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert sim.pending_events == 7

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []
        assert sim.processed_events == 0

    def test_pending_counter_tracks_schedule_cancel_execute(self):
        """pending_events is a live O(1) counter; cancel decrements it
        immediately and double-cancel must not decrement twice."""
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        sim.cancel(events[2])
        assert sim.pending_events == 4
        sim.cancel(events[2])  # idempotent
        assert sim.pending_events == 4
        sim.step()
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0

    def test_message_ids_are_per_simulator(self):
        a, b = Simulator(), Simulator()
        assert [a.next_message_id() for _ in range(3)] == [0, 1, 2]
        assert [b.next_message_id() for _ in range(3)] == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_determinism_two_identical_runs(self):
        def trace():
            sim = Simulator()
            log = []
            for i in range(20):
                sim.schedule(i * 0.37 % 3.0, lambda i=i: log.append(i))
            sim.run()
            return log

        assert trace() == trace()
