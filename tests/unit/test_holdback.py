"""Unit tests for the shared hold-back queue.

The same structure serves the reliability transport's reorder buffer
and the mesh editor's causal-delivery buffer; these tests exercise it
directly: gap buffering, duplicate slots, out-of-order bursts, epoch
resets, and the drain contract (head-only probing with a consumer
clock that advances mid-drain).
"""

from __future__ import annotations

import pytest

from repro.session import HoldbackQueue


class TestHoldAndPop:
    def test_gap_then_fill(self):
        q: HoldbackQueue[str] = HoldbackQueue()
        # seq 0 is expected next but seq 2 arrives first: held.
        assert q.hold("peer", 2, "c")
        assert len(q) == 1
        assert q.pop("peer", 0) is None  # the gap itself was never held
        assert q.pop("peer", 2) == "c"
        assert len(q) == 0
        assert not q

    def test_duplicate_slot_is_rejected_and_original_kept(self):
        q: HoldbackQueue[str] = HoldbackQueue()
        assert q.hold("peer", 5, "first")
        assert not q.hold("peer", 5, "second")
        assert len(q) == 1
        assert q.pop("peer", 5) == "first"

    def test_streams_are_independent(self):
        q: HoldbackQueue[str] = HoldbackQueue()
        assert q.hold("a", 1, "a1")
        assert q.hold("b", 1, "b1")
        assert q.pop("a", 1) == "a1"
        assert q.pop("b", 1) == "b1"


class TestClear:
    def test_epoch_reset_drops_one_stream_only(self):
        q: HoldbackQueue[str] = HoldbackQueue()
        q.hold("old-epoch-peer", 3, "x")
        q.hold("old-epoch-peer", 4, "y")
        q.hold("healthy-peer", 1, "z")
        assert q.clear("old-epoch-peer") == 2
        assert len(q) == 1
        assert q.pop("old-epoch-peer", 3) is None
        assert q.pop("healthy-peer", 1) == "z"

    def test_clear_all(self):
        q: HoldbackQueue[str] = HoldbackQueue()
        q.hold("a", 1, "x")
        q.hold("b", 2, "y")
        assert q.clear() == 2
        assert len(q) == 0

    def test_clear_unknown_stream_is_harmless(self):
        q: HoldbackQueue[str] = HoldbackQueue()
        assert q.clear("never-seen") == 0


class TestDrain:
    def test_out_of_order_burst_released_in_sequence(self):
        q: HoldbackQueue[int] = HoldbackQueue()
        next_seq = {"p": 0}
        for seq in (4, 1, 3, 0, 2):  # a shuffled burst
            q.hold("p", seq, seq * 10)
        released = []
        for item in q.drain(lambda s: next_seq[s]):
            released.append(item)
            next_seq["p"] += 1
        assert released == [0, 10, 20, 30, 40]
        assert len(q) == 0

    def test_drain_stops_at_gap(self):
        q: HoldbackQueue[int] = HoldbackQueue()
        next_seq = {"p": 0}
        q.hold("p", 0, 0)
        q.hold("p", 2, 20)  # seq 1 missing
        released = []
        for item in q.drain(lambda s: next_seq[s]):
            released.append(item)
            next_seq["p"] += 1
        assert released == [0]
        assert len(q) == 1  # seq 2 still held

    def test_ready_gate_defers_cross_stream_dependency(self):
        """The mesh's causal gate: a head item can be sequence-next but
        still blocked on another stream's delivery."""
        q: HoldbackQueue[dict] = HoldbackQueue()
        delivered: set[str] = set()
        next_seq = {"a": 0, "b": 0}
        # b's first op depends on a's first op having been delivered.
        q.hold("b", 0, {"id": "b0", "needs": "a0"})
        q.hold("a", 0, {"id": "a0", "needs": None})
        released = []
        for item in q.drain(
            lambda s: next_seq[s],
            lambda item: item["needs"] is None or item["needs"] in delivered,
        ):
            released.append(item["id"])
            delivered.add(item["id"])
            next_seq["a" if item["id"].startswith("a") else "b"] += 1
        assert released == ["a0", "b0"]

    def test_drain_progress_across_streams(self):
        """Consuming one stream's head can unblock another stream."""
        q: HoldbackQueue[str] = HoldbackQueue()
        clock = {"a": 0, "b": 0}
        q.hold("a", 0, "a0")
        q.hold("b", 0, "b0")
        q.hold("a", 1, "a1")
        released = []
        for item in q.drain(lambda s: clock[s]):
            released.append(item)
            clock[item[0]] += 1
        assert sorted(released) == ["a0", "a1", "b0"]
        assert len(q) == 0


class TestMeshIntegration:
    def test_mesh_quiescence_counts_editor_holdback(self):
        """A mesh site with a causally-blocked operation is not quiescent
        even when no simulator event is pending."""
        from repro.clocks.vector import VectorClock
        from repro.editor.mesh import MeshOp, MeshSession
        from repro.net.transport import Envelope
        from repro.ot.operations import Insert

        session = MeshSession(3)
        # Hand site 0 an operation from site 1 whose clock shows a
        # dependency site 0 has not seen (site 2's first op).
        record = MeshOp(
            op=Insert("x", 0), vc=VectorClock.of((0, 1, 1)), site=1, seq=1
        )
        session.sites[0].on_message(
            Envelope(source=1, dest=0, payload=record, timestamp_bytes=12)
        )
        assert session.sites[0].holdback_pending()
        assert not session.quiescent()
        assert session.sites[0].delivered_ids == []


@pytest.mark.parametrize("n_streams,per_stream", [(3, 50)])
def test_drain_is_head_probing_not_full_rescan(n_streams, per_stream):
    """Worst case for the old list rescan: long per-stream chains arrive
    fully reversed.  All must still come out in order."""
    q: HoldbackQueue[tuple[int, int]] = HoldbackQueue()
    clock = {s: 0 for s in range(n_streams)}
    for s in range(n_streams):
        for seq in reversed(range(per_stream)):
            q.hold(s, seq, (s, seq))
    out = []
    for s, seq in q.drain(lambda stream: clock[stream]):
        out.append((s, seq))
        clock[s] += 1
    assert len(out) == n_streams * per_stream
    for s in range(n_streams):
        seqs = [seq for stream, seq in out if stream == s]
        assert seqs == list(range(per_stream))
