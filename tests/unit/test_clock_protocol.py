"""Clock-protocol conformance: every family, one suite.

The registry :data:`repro.clocks.base.CLOCK_FAMILIES` declares each
family's factory, online-decidability and storage formula; this suite
runs the same deterministic scripted computation through every family
in lockstep with a full-vector-clock oracle and asserts:

* the adapter satisfies :class:`repro.clocks.base.ClockProtocol`;
* ``storage_ints()`` matches the declared formula (the CLAIM-MEM
  numbers come from these same hooks);
* an online-deciding family's ``compare`` agrees with the oracle on
  every pair of event snapshots;
* a family that cannot decide online returns ``None`` -- never a wrong
  verdict.
"""

from __future__ import annotations

import random

import pytest

from repro.clocks.base import CLOCK_FAMILIES, ClockProtocol, VectorClockSite
from repro.clocks.vector import Ordering

N_SITES = 4
N_EVENTS = 60


def scripted_computation(seed: int = 7) -> list[tuple[str, int, int]]:
    """A deterministic event script: ``(kind, site, peer)`` triples.

    ``kind`` is ``tick`` (local event) or ``msg`` (send from ``site`` to
    ``peer``, delivered immediately -- trivially FIFO, which the SK
    family requires).
    """
    rng = random.Random(seed)
    script: list[tuple[str, int, int]] = []
    for _ in range(N_EVENTS):
        site = rng.randrange(N_SITES)
        if rng.random() < 0.4:
            script.append(("tick", site, site))
        else:
            peer = rng.randrange(N_SITES - 1)
            if peer >= site:
                peer += 1
            script.append(("msg", site, peer))
    return script


def run_script(factory):
    """Run the script through a family; returns per-event snapshots.

    Each entry is ``(acting_site, snapshot)``: a tick or send snapshots
    the sender after the event, a message additionally snapshots the
    receiver after the merge.
    """
    clocks = [factory(pid, N_SITES) for pid in range(N_SITES)]
    events = []
    for kind, site, peer in scripted_computation():
        if kind == "tick":
            clocks[site].tick()
            events.append((site, clocks[site].snapshot()))
        else:
            wire = clocks[site].timestamp(peer)
            events.append((site, clocks[site].snapshot()))
            clocks[peer].merge(site, wire)
            events.append((peer, clocks[peer].snapshot()))
    return clocks, events


@pytest.fixture(scope="module")
def oracle_events():
    _, events = run_script(VectorClockSite)
    return events


@pytest.mark.parametrize("family", CLOCK_FAMILIES, ids=lambda f: f.name)
class TestClockConformance:
    def test_satisfies_protocol(self, family):
        clock = family.factory(0, N_SITES)
        assert isinstance(clock, ClockProtocol)
        assert clock.decides_online == family.decides_online

    def test_storage_matches_declared_formula(self, family):
        clocks, _ = run_script(family.factory)
        for clock in clocks:
            assert clock.storage_ints() == family.storage_formula(N_SITES)

    def test_timestamp_bytes_accounted(self, family):
        clocks = [family.factory(pid, N_SITES) for pid in range(N_SITES)]
        wire = clocks[0].timestamp(1)
        assert clocks[0].timestamp_bytes(wire) > 0

    def test_compare_agrees_with_oracle(self, family, oracle_events):
        """Non-None verdicts must match the full-vector ground truth.

        The event list of every family is index-aligned with the
        oracle's (same script, same snapshot points), so event ``i`` of
        the family run IS event ``i`` of the oracle run.
        """
        judge = family.factory(0, N_SITES)
        _, events = run_script(family.factory)
        assert len(events) == len(oracle_events)
        oracle = VectorClockSite(0, N_SITES)
        decided = 0
        for i in range(0, len(events), 3):  # sampled pairs keep this O(n^2/9)
            for j in range(i + 1, len(events), 3):
                verdict = judge.compare(events[i][1], events[j][1])
                truth = oracle.compare(oracle_events[i][1], oracle_events[j][1])
                if family.decides_online:
                    assert verdict == truth, (i, j, verdict, truth)
                    decided += 1
                else:
                    # Undecidable online: abstaining is correct, a wrong
                    # verdict is not.
                    assert verdict is None or verdict == truth, (i, j)
        if family.decides_online:
            assert decided > 0

    def test_same_site_events_totally_ordered(self, family, oracle_events):
        """Along one site's timeline the oracle sees strict progress."""
        _, events = run_script(family.factory)
        judge = family.factory(0, N_SITES)
        if not family.decides_online:
            pytest.skip("family abstains from online comparison")
        last_by_site = {}
        for site, snap in events:
            if site in last_by_site:
                assert judge.compare(last_by_site[site], snap) is Ordering.BEFORE
            last_by_site[site] = snap


def test_registry_covers_all_six_families_plus_compressed():
    names = {family.name for family in CLOCK_FAMILIES}
    assert names == {
        "vector", "matrix", "sk", "fz", "lamport", "dimension", "compressed",
    }


def test_compressed_storage_is_constant_in_system_size():
    from repro.clocks.base import CompressedClockSite

    small = CompressedClockSite(0, 2)
    large = CompressedClockSite(0, 512)
    assert small.storage_ints() == large.storage_ints() == 2
