"""Unit tests for the binary wire codec (repro.net.codec)."""

import pytest

from repro.core.timestamp import CompressedTimestamp
from repro.editor.star import OpMessage
from repro.net.codec import (
    TIMESTAMP_WIRE_BYTES,
    CodecError,
    Reader,
    Writer,
    decode_op_message,
    decode_operation,
    decode_timestamp,
    encode_op_message,
    encode_operation,
    encode_timestamp,
)
from repro.ot.operations import Delete, Identity, Insert, OperationGroup


class TestPrimitives:
    def test_u32_roundtrip(self):
        writer = Writer()
        writer.u32(0).u32(0xFFFFFFFF).u32(12345)
        reader = Reader(writer.getvalue())
        assert (reader.u32(), reader.u32(), reader.u32()) == (0, 0xFFFFFFFF, 12345)
        assert reader.done()

    def test_u32_range_check(self):
        with pytest.raises(CodecError):
            Writer().u32(-1)
        with pytest.raises(CodecError):
            Writer().u32(2**32)

    def test_u8_range_check(self):
        with pytest.raises(CodecError):
            Writer().u8(256)

    def test_string_roundtrip_unicode(self):
        writer = Writer()
        writer.string("héllo ✓")
        assert Reader(writer.getvalue()).string() == "héllo ✓"

    def test_truncated_read_raises(self):
        with pytest.raises(CodecError, match="truncated"):
            Reader(b"\x00\x01").u32()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x00\x00\x00\x01extra")
        reader.u32()
        with pytest.raises(CodecError, match="trailing"):
            reader.expect_done()


class TestOperationCodec:
    @pytest.mark.parametrize(
        "op",
        [
            Insert("12", 1),
            Insert("", 0),
            Delete(3, 2),
            Identity(),
            OperationGroup((Delete(2, 1), Delete(2, 3))),
            OperationGroup((Insert("x", 0), OperationGroup((Delete(1, 5),)))),
        ],
    )
    def test_roundtrip(self, op):
        writer = Writer()
        encode_operation(op, writer)
        assert decode_operation(Reader(writer.getvalue())) == op

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown operation tag"):
            decode_operation(Reader(b"\x7f"))

    def test_unencodable_type_rejected(self):
        with pytest.raises(CodecError):
            encode_operation("not an op", Writer())  # type: ignore[arg-type]


class TestTimestampCodec:
    def test_exactly_two_integers(self):
        writer = Writer()
        encode_timestamp(CompressedTimestamp(3, 1), writer)
        assert len(writer.getvalue()) == TIMESTAMP_WIRE_BYTES == 8

    def test_roundtrip(self):
        writer = Writer()
        encode_timestamp(CompressedTimestamp(123, 456), writer)
        assert decode_timestamp(Reader(writer.getvalue())) == CompressedTimestamp(123, 456)


class TestMessageCodec:
    def test_full_message_roundtrip(self):
        message = OpMessage(
            op=Insert("12", 1),
            timestamp=CompressedTimestamp(1, 0),
            origin_site=2,
            op_id="O2'",
            source_op_id="O2",
        )
        assert decode_op_message(encode_op_message(message)) == message

    def test_message_without_source_id(self):
        message = OpMessage(
            op=Delete(3, 2),
            timestamp=CompressedTimestamp(0, 1),
            origin_site=2,
            op_id="O2",
        )
        decoded = decode_op_message(encode_op_message(message))
        assert decoded == message
        assert decoded.source_op_id is None

    def test_size_matches_accounting_model(self):
        """The real encoding charges what measure_payload_bytes predicts
        for the operation, plus the fixed framing fields."""
        from repro.net.transport import measure_payload_bytes

        message = OpMessage(
            op=Insert("hello", 7),
            timestamp=CompressedTimestamp(4, 2),
            origin_site=1,
            op_id="x",
        )
        wire = encode_op_message(message)
        op_bytes = measure_payload_bytes(message.op)  # tag + pos + text
        framing = (
            TIMESTAMP_WIRE_BYTES  # compressed timestamp
            + 4  # origin site
            + (4 + 1)  # op_id "x"
            + (4 + 0)  # empty source_op_id
            + 4  # string length prefix of the insert text
        )
        assert len(wire) == op_bytes + framing

    def test_corrupted_message_rejected(self):
        message = OpMessage(
            op=Insert("a", 0),
            timestamp=CompressedTimestamp(0, 1),
            origin_site=1,
            op_id="q",
        )
        wire = encode_op_message(message)
        with pytest.raises(CodecError):
            decode_op_message(wire[:-1])
        with pytest.raises(CodecError):
            decode_op_message(wire + b"\x00")


class TestTrailerCodec:
    """The versioned trailer carrying the origin wall-clock stamp."""

    def base_message(self, **overrides):
        fields = dict(
            op=Insert("ab", 3),
            timestamp=CompressedTimestamp(2, 5),
            origin_site=1,
            op_id="O1",
            source_op_id="O0",
        )
        fields.update(overrides)
        return OpMessage(**fields)

    def test_origin_wall_roundtrip(self):
        message = self.base_message(origin_wall=1723456789.123456)
        decoded = decode_op_message(encode_op_message(message))
        assert decoded.origin_wall == message.origin_wall
        assert decoded == message

    def test_absent_stamp_encodes_byte_identically_to_v1(self):
        # Backwards compatibility is structural: no stamp, no trailer --
        # the encoding is the exact byte string the previous format
        # produced, so mixed-version clusters interoperate.
        stamped = self.base_message(origin_wall=12.5)
        bare = self.base_message(origin_wall=None)
        bare_wire = encode_op_message(bare)
        stamped_wire = encode_op_message(stamped)
        assert stamped_wire.startswith(bare_wire)
        assert len(stamped_wire) == len(bare_wire) + 10  # ver + bitmap + f64
        assert decode_op_message(bare_wire).origin_wall is None

    def test_unknown_trailer_version_rejected(self):
        wire = encode_op_message(self.base_message(origin_wall=1.0))
        bad = bytearray(wire)
        bad[-10] = 99  # the trailer version byte
        with pytest.raises(CodecError):
            decode_op_message(bytes(bad))

    def test_unknown_presence_bits_rejected(self):
        # Future fields must be versioned in, not silently skipped: a
        # decoder that cannot name a bit cannot know its width.
        wire = encode_op_message(self.base_message(origin_wall=1.0))
        bad = bytearray(wire)
        bad[-9] |= 0x02  # an undefined presence bit
        with pytest.raises(CodecError):
            decode_op_message(bytes(bad))

    def test_truncated_trailer_rejected(self):
        wire = encode_op_message(self.base_message(origin_wall=1.0))
        with pytest.raises(CodecError):
            decode_op_message(wire[:-4])  # mid-f64
