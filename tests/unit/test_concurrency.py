"""Unit tests for the concurrency formulas (repro.core.concurrency).

Every concrete check in the paper's Section 5 walkthrough appears here
as a direct formula-level test (the integration suite re-derives them by
running the actual system).
"""

import pytest

from repro.core.concurrency import (
    client_concurrent,
    client_concurrent_general,
    notifier_concurrent,
    notifier_concurrent_general,
    vc_event_concurrent,
)
from repro.core.timestamp import CompressedTimestamp, FullTimestamp, OriginKind
from repro.clocks.vector import VectorClock


def ct(a, b):
    return CompressedTimestamp(a, b)


class TestFormula3:
    def test_concurrent_events(self):
        ta = VectorClock.of([1, 0])  # op at site 0
        tb = VectorClock.of([0, 1])  # op at site 1
        assert vc_event_concurrent(ta, tb, 0, 1)

    def test_causally_ordered_events(self):
        ta = VectorClock.of([1, 0])
        tb = VectorClock.of([1, 1])  # saw ta
        assert not vc_event_concurrent(ta, tb, 0, 1)
        assert not vc_event_concurrent(tb, ta, 1, 0)


class TestFormula5ClientSide:
    """Paper Section 5, client-side verdicts."""

    def test_O2prime_vs_O1_at_site1(self):
        # T_O1[2]=1 > T_O2'[2]=0 -> concurrent
        assert client_concurrent(ct(1, 0), ct(0, 1), OriginKind.LOCAL)

    def test_O1prime_vs_O2_at_site2(self):
        # T_O2[2]=1 = T_O1'[2]=1 -> not concurrent
        assert not client_concurrent(ct(1, 1), ct(0, 1), OriginKind.LOCAL)

    def test_O1prime_vs_O2prime_at_site3(self):
        # buffered center op: T_O2'[1]=1 > T_O1'[1]=2 is false
        assert not client_concurrent(ct(2, 0), ct(1, 0), OriginKind.FROM_CENTER)

    def test_O1prime_vs_O4_at_site3(self):
        assert client_concurrent(ct(2, 0), ct(1, 1), OriginKind.LOCAL)

    def test_O4prime_vs_O3_at_site2(self):
        # T_O3[2]=2 > T_O4'[2]=1 -> concurrent
        assert client_concurrent(ct(2, 1), ct(1, 2), OriginKind.LOCAL)

    def test_O3prime_vs_all_at_site1(self):
        ts = ct(3, 1)
        assert not client_concurrent(ts, ct(0, 1), OriginKind.LOCAL)  # O1
        assert not client_concurrent(ts, ct(1, 0), OriginKind.FROM_CENTER)  # O2'
        assert not client_concurrent(ts, ct(2, 1), OriginKind.FROM_CENTER)  # O4'

    def test_rejects_notifier_origin(self):
        with pytest.raises(ValueError):
            client_concurrent(ct(0, 0), ct(0, 0), OriginKind.FROM_CLIENT)

    def test_general_form_adds_first_condition(self):
        # general formula (4) also requires T_Oa[1] > T_Ob[1]
        assert client_concurrent_general(ct(1, 0), ct(0, 1), OriginKind.LOCAL)
        assert not client_concurrent_general(ct(0, 0), ct(0, 1), OriginKind.LOCAL)

    def test_general_and_simplified_agree_under_fifo(self):
        """When the buffered op executed before the new op arrived (so
        T_new[1] > T_buf[1] for local entries), (4) == (5)."""
        for new_first in range(1, 5):
            for buf_second in range(0, 5):
                t_new = ct(new_first, 1)
                t_buf = ct(0, buf_second)
                assert client_concurrent_general(
                    t_new, t_buf, OriginKind.LOCAL
                ) == client_concurrent(t_new, t_buf, OriginKind.LOCAL)


class TestFormula7NotifierSide:
    """Paper Section 5, notifier-side verdicts."""

    def test_O1_vs_O2prime(self):
        # x=1, y=2; sum_{j!=1} [0,1,0] = 1 > T_O1[1]=0 -> concurrent
        assert notifier_concurrent(ct(0, 1), 1, FullTimestamp((0, 1, 0)), 2)

    def test_O4_vs_O2prime(self):
        # x=3; sum_{j!=3} [0,1,0] = 1 = T_O4[1]=1 -> not concurrent
        assert not notifier_concurrent(ct(1, 1), 3, FullTimestamp((0, 1, 0)), 2)

    def test_O4_vs_O1prime(self):
        # sum_{j!=3} [1,1,0] = 2 > 1 -> concurrent
        assert notifier_concurrent(ct(1, 1), 3, FullTimestamp((1, 1, 0)), 1)

    def test_O3_vs_O2prime_same_site(self):
        # same origin site 2 -> never concurrent
        assert not notifier_concurrent(ct(1, 2), 2, FullTimestamp((0, 1, 0)), 2)

    def test_O3_vs_O1prime(self):
        # sum_{j!=2} [1,1,0] = 1 = T_O3[1]=1 -> not concurrent
        assert not notifier_concurrent(ct(1, 2), 2, FullTimestamp((1, 1, 0)), 1)

    def test_O3_vs_O4prime(self):
        # sum_{j!=2} [1,1,1] = 2 > 1 -> concurrent
        assert notifier_concurrent(ct(1, 2), 2, FullTimestamp((1, 1, 1)), 3)

    def test_general_form_first_condition(self):
        # formula (6) additionally requires T_Oa[2] > T_Ob[x]
        t_buf = FullTimestamp((0, 1, 0))
        assert notifier_concurrent_general(ct(0, 1), 1, t_buf, 2)
        # an O_a the notifier has already counted cannot be concurrent
        assert not notifier_concurrent_general(ct(0, 0), 1, t_buf, 2)

    def test_general_same_site_branch(self):
        # x == y: concurrent iff T_Ob[y] > T_Oa[2] (and first condition);
        # impossible under FIFO but the general form must evaluate it.
        t_buf = FullTimestamp((0, 2, 0))
        assert notifier_concurrent_general(ct(0, 3), 2, FullTimestamp((0, 4, 0)), 2) is False
        assert not notifier_concurrent(ct(0, 3), 2, t_buf, 2)

    def test_general_and_simplified_agree_under_fifo(self):
        """With the FIFO-guaranteed preconditions (T_Oa[2] > T_Ob[x] and
        x != y), (6) == (7)."""
        for buf in [(0, 1, 0), (1, 1, 0), (1, 1, 1), (1, 2, 1)]:
            t_buf = FullTimestamp(buf)
            for x in (1, 2, 3):
                for y in (1, 2, 3):
                    if x == y:
                        continue
                    t_new = ct(1, t_buf[x] + 1)  # first condition holds
                    assert notifier_concurrent_general(
                        t_new, x, t_buf, y
                    ) == notifier_concurrent(t_new, x, t_buf, y)
