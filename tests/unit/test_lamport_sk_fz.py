"""Unit tests for Lamport clocks and the SK / FZ baseline techniques."""

import pytest

from repro.clocks.lamport import LamportClock, TotalOrderKey
from repro.clocks.sk import SKMessage, SKProcess
from repro.clocks.fz import FZProcess, reconstruct_vector_times
from repro.clocks.vector import VectorClock


class TestLamport:
    def test_tick_monotone(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_receive_takes_max_plus_one(self):
        clock = LamportClock(time=3)
        assert clock.receive(10) == 11
        assert clock.receive(2) == 12

    def test_receive_rejects_negative(self):
        with pytest.raises(ValueError):
            LamportClock().receive(-1)

    def test_send_counts_as_event(self):
        clock = LamportClock()
        assert clock.send() == 1

    def test_total_order_key_sorts(self):
        keys = [TotalOrderKey(3, 1), TotalOrderKey(2, 9), TotalOrderKey(3, 0)]
        assert sorted(keys) == [TotalOrderKey(2, 9), TotalOrderKey(3, 0), TotalOrderKey(3, 1)]


class TestSKProcess:
    def test_first_message_carries_changed_entries_only(self):
        p = SKProcess(0, 4)
        message = p.prepare_send(1)
        # only p's own entry changed since the (virtual) last message
        assert message.entries == ((0, 1),)

    def test_unchanged_entries_skipped_on_repeat_sends(self):
        p = SKProcess(0, 4)
        p.prepare_send(1)
        message = p.prepare_send(1)
        assert message.entries == ((0, 2),)

    def test_receive_merges(self):
        a, b = SKProcess(0, 3), SKProcess(1, 3)
        b.receive(a.prepare_send(1))
        assert b.vc == [1, 1, 0]

    def test_transitive_entries_forwarded(self):
        a, b, c = SKProcess(0, 3), SKProcess(1, 3), SKProcess(2, 3)
        b.receive(a.prepare_send(1))
        message = b.prepare_send(2)
        c.receive(message)
        # c must learn about a's event through b
        assert c.vc[0] == 1

    def test_matches_full_vector_clock_protocol(self):
        """SK reconstructs exactly the vectors the full protocol yields."""
        import random

        rng = random.Random(3)
        n = 5
        sk = [SKProcess(pid, n) for pid in range(n)]
        full = [VectorClock.zero(n) for _ in range(n)]
        # FIFO per channel is required by SK; send+deliver immediately
        for _ in range(300):
            sender = rng.randrange(n)
            dest = rng.randrange(n)
            while dest == sender:
                dest = rng.randrange(n)
            message = sk[sender].prepare_send(dest)
            full[sender] = full[sender].tick(sender)
            sent_full = full[sender]
            sk[dest].receive(message)
            full[dest] = full[dest].merge(sent_full).tick(dest)
            assert sk[dest].vector() == full[dest]

    def test_entry_count_bounded_by_n(self):
        p = SKProcess(0, 6)
        message = p.prepare_send(3)
        assert message.entry_count() <= 6

    def test_message_size(self):
        assert SKMessage(0, ((1, 2), (3, 4))).size_bytes() == 16

    def test_storage_is_three_vectors(self):
        assert SKProcess(2, 7).storage_ints() == 21

    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            SKProcess(0, 2).prepare_send(0)

    def test_bad_pid_rejected(self):
        with pytest.raises(ValueError):
            SKProcess(5, 3)


class TestFZ:
    def test_message_is_single_integer(self):
        p = FZProcess(0, 3)
        message, _ = p.prepare_send()
        assert message.size_bytes() == 4

    def test_reconstruction_matches_full_vectors(self):
        """Offline FZ reconstruction equals the online full-vector run."""
        import random

        rng = random.Random(11)
        n = 4
        fz = [FZProcess(pid, n) for pid in range(n)]
        full = [VectorClock.zero(n) for _ in range(n)]
        expected: dict[tuple[int, int], VectorClock] = {}
        for _ in range(200):
            kind = rng.random()
            pid = rng.randrange(n)
            if kind < 0.3:
                record = fz[pid].local_event()
                full[pid] = full[pid].tick(pid)
                expected[(pid, record.index)] = full[pid]
            else:
                dest = rng.randrange(n)
                while dest == pid:
                    dest = rng.randrange(n)
                message, record = fz[pid].prepare_send()
                full[pid] = full[pid].tick(pid)
                expected[(pid, record.index)] = full[pid]
                rec2 = fz[dest].receive(message)
                full[dest] = full[dest].merge(full[pid]).tick(dest)
                expected[(dest, rec2.index)] = full[dest]
        reconstructed = reconstruct_vector_times(fz)
        assert reconstructed == expected

    def test_reconstruction_requires_complete_logs(self):
        a, b = FZProcess(0, 2), FZProcess(1, 2)
        message, _ = a.prepare_send()
        b.receive(message)
        # drop a's log: reconstruction must fail loudly
        a.log.clear()
        with pytest.raises(KeyError):
            reconstruct_vector_times([a, b])

    def test_bad_sender_rejected(self):
        from repro.clocks.fz import FZMessage

        with pytest.raises(ValueError):
            FZProcess(0, 2).receive(FZMessage(sender=9, sender_event=1))
