"""Unit tests for session statistics and the command-line interface."""

import pytest

from repro.analysis.stats import session_stats, transform_pressure
from repro.cli import main
from repro.clocks.events import EventLog
from repro.editor.star import StarSession
from repro.workloads.scripted import fig3_script, fig_latency_factory, FIG2_INITIAL_DOCUMENT


def fig3_session():
    session = StarSession(
        3,
        initial_state=FIG2_INITIAL_DOCUMENT,
        latency_factory=fig_latency_factory,
    )
    for item in fig3_script():
        session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
    session.run()
    return session


class TestSessionStats:
    def test_fig3_statistics(self):
        """Section 2.4 enumerates 3 concurrent and 3 causal pairs."""
        session = fig3_session()
        stats = session_stats(session.event_log)
        assert stats.n_ops == 4
        assert stats.n_pairs == 6
        assert stats.concurrent_pairs == 3
        assert stats.causal_pairs == 3
        assert stats.concurrency_degree == pytest.approx(0.5)
        # longest chain: O2 -> O4? no -- O2 -> O3 via O1: depth counts ops
        assert stats.causal_depth == 2
        assert stats.ops_per_site == {1: 1, 2: 2, 3: 1}
        assert "4 ops" in stats.summary()

    def test_empty_log(self):
        stats = session_stats(EventLog(2))
        assert stats.n_ops == 0
        assert stats.concurrency_degree == 0.0
        assert stats.causal_depth == 0

    def test_explicit_op_subset(self):
        session = fig3_session()
        stats = session_stats(session.event_log, ops=["O1", "O2"])
        assert stats.n_ops == 2
        assert stats.concurrent_pairs == 1  # O1 || O2


class TestTransformPressure:
    def test_fig3_pressure(self):
        session = fig3_session()
        pressure = transform_pressure(session)
        # walkthrough: O2'@1, O1@0, O1'@3, O4@0, O4'@2, O3@0 each had
        # exactly one concurrent operation; everything else had none
        assert pressure.total_transform_steps == 6
        assert pressure.max_concurrent_set == 1
        # remote executions observed: every op arrival that scanned a
        # non-empty history
        assert pressure.total_remote_executions > 0
        assert 0 < pressure.mean_concurrent_set <= 1

    def test_empty_pressure(self):
        session = StarSession(2)
        pressure = transform_pressure(session)
        assert pressure.total_remote_executions == 0
        assert pressure.mean_concurrent_set == 0.0


class TestCLI:
    def test_fig1(self, capsys):
        assert main(["fig1", "--clients", "3"]) == 0
        out = capsys.readouterr().out
        assert "notifier" in out and "[site 3]" in out

    def test_fig2_reports_divergence(self, capsys):
        assert main(["fig2"]) == 1  # divergence is the expected outcome
        out = capsys.readouterr().out
        assert "DIVERGED" in out

    def test_fig3_converges(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "all replicas converged" in out
        assert "O2' -> site 1  [1,0]" in out

    def test_overhead_table(self, capsys):
        assert main(["overhead", "--sizes", "2", "8", "--messages", "50"]) == 0
        out = capsys.readouterr().out
        assert "compressed" in out
        assert out.count("\n") >= 3

    def test_memory_table(self, capsys):
        assert main(["memory", "--sizes", "4"]) == 0
        assert "CVC client" in capsys.readouterr().out

    def test_session_star(self, capsys):
        assert main(["session", "--sites", "3", "--ops", "3", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "converged        : True" in out

    def test_session_mesh(self, capsys):
        assert main(["session", "--arch", "mesh", "--sites", "3", "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "architecture     : mesh" in out

    def test_session_with_faults(self, capsys):
        assert (
            main(
                [
                    "session", "--sites", "3", "--ops", "4", "--seed", "7",
                    "--verify", "--faults", "--drop", "0.2", "--dup", "0.05",
                    "--crash", "2:3.0:5.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "converged        : True" in out
        assert "fifo respected   : True" in out
        assert "retransmits=" in out
        assert "recoveries=1" in out
        assert "resyncs_served=1" in out

    def test_session_faults_flag_alone_enables_reliability(self, capsys):
        assert main(["session", "--sites", "2", "--ops", "2", "--faults"]) == 0
        out = capsys.readouterr().out
        assert "protocol: sent=" in out

    def test_trace_writes_artifacts_and_cross_checks(self, capsys, tmp_path):
        prefix = str(tmp_path / "trace")
        assert (
            main(["trace", "--sites", "3", "--ops", "3", "--out", prefix]) == 0
        )
        out = capsys.readouterr().out
        assert "EXACT MATCH" in out
        assert "0 disagreements" in out
        assert (tmp_path / "trace.jsonl").exists()
        assert (tmp_path / "trace.chrome.json").exists()
        # The JSONL artefact round-trips through the public reader.
        from repro.obs import read_jsonl

        with open(tmp_path / "trace.jsonl", encoding="utf-8") as fh:
            header, events = read_jsonl(fh)
        assert header["sites"] == 3 and not header["faulty"]
        assert events

    def test_trace_with_faults_and_diagram(self, capsys, tmp_path):
        prefix = str(tmp_path / "trace")
        assert (
            main(
                [
                    "trace", "--sites", "4", "--seed", "7", "--faults",
                    "--crash", "2:3.0:5.0", "--out", prefix, "--diagram",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "EXACT MATCH" in out
        assert "vector-clock" in out  # crash runs check against the VC relation
        assert "trace.crashed = 1" in out
        assert "trace.recovered = 1" in out
        assert "site 0" in out  # the spacetime diagram rendered

    def test_session_mesh_rejects_faults(self, capsys):
        assert (
            main(["session", "--arch", "mesh", "--sites", "2", "--ops", "1",
                  "--faults"])
            == 2
        )
        assert "only supported" in capsys.readouterr().err

    def test_bad_crash_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["session", "--faults", "--crash", "2:3.0"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
