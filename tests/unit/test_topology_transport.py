"""Unit tests for topologies and transport accounting (repro.net)."""

import pytest

from repro.net.process import SimProcess
from repro.net.simulator import Simulator
from repro.net.topology import MeshTopology, StarTopology
from repro.net.transport import Envelope, measure_payload_bytes
from repro.ot.component import TextOperation
from repro.ot.operations import Delete, Identity, Insert, OperationGroup


class Collector(SimProcess):
    def __init__(self, sim, pid):
        super().__init__(sim, pid)
        self.inbox = []

    def on_message(self, envelope):
        self.inbox.append(envelope)


class TestStarTopology:
    def test_wiring_is_star_shaped(self):
        sim = Simulator()
        procs = [Collector(sim, i) for i in range(4)]
        topo = StarTopology(sim, procs)
        # 3 clients * 2 directions
        assert topo.edge_count() == 6
        assert (1, 2) not in topo.channels
        assert (0, 3) in topo.channels and (3, 0) in topo.channels

    def test_clients_cannot_reach_each_other_directly(self):
        sim = Simulator()
        procs = [Collector(sim, i) for i in range(3)]
        StarTopology(sim, procs)
        with pytest.raises(KeyError):
            procs[1].send(2, "hi")

    def test_center_must_be_pid_zero(self):
        sim = Simulator()
        procs = [Collector(sim, 5), Collector(sim, 1)]
        with pytest.raises(ValueError):
            StarTopology(sim, procs)

    def test_needs_at_least_one_client(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            StarTopology(sim, [Collector(sim, 0)])

    def test_message_roundtrip(self):
        sim = Simulator()
        procs = [Collector(sim, i) for i in range(3)]
        StarTopology(sim, procs)
        procs[1].send(0, "up")
        procs[0].send(2, "down")
        sim.run()
        assert [e.payload for e in procs[0].inbox] == ["up"]
        assert [e.payload for e in procs[2].inbox] == ["down"]

    def test_total_stats_aggregates(self):
        sim = Simulator()
        procs = [Collector(sim, i) for i in range(3)]
        topo = StarTopology(sim, procs)
        procs[1].send(0, "x", timestamp_bytes=8)
        procs[2].send(0, "y", timestamp_bytes=8)
        sim.run()
        stats = topo.total_stats()
        assert stats.messages == 2
        assert stats.timestamp_bytes == 16
        assert topo.fifo_respected()

    def test_duplicate_channel_rejected(self):
        sim = Simulator()
        proc = Collector(sim, 0)
        proc.attach_channel(1, object())
        with pytest.raises(ValueError):
            proc.attach_channel(1, object())


class TestMeshTopology:
    def test_fully_connected(self):
        sim = Simulator()
        procs = [Collector(sim, i) for i in range(4)]
        topo = MeshTopology(sim, procs)
        assert topo.edge_count() == 12  # 4*3 directed pairs
        procs[1].send(3, "direct")
        sim.run()
        assert [e.payload for e in procs[3].inbox] == ["direct"]

    def test_needs_two_sites(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MeshTopology(sim, [Collector(sim, 0)])


class TestPayloadMeasurement:
    def test_none_is_free(self):
        assert measure_payload_bytes(None) == 0

    def test_insert_size(self):
        assert measure_payload_bytes(Insert("ab", 3)) == 1 + 4 + 2

    def test_delete_size(self):
        assert measure_payload_bytes(Delete(3, 2)) == 9

    def test_identity_size(self):
        assert measure_payload_bytes(Identity()) == 1

    def test_group_sums_members(self):
        group = OperationGroup((Delete(1, 0), Delete(1, 2)))
        assert measure_payload_bytes(group) == 1 + 9 + 9

    def test_component_operation(self):
        op = TextOperation().retain(2).insert("xy").delete(1)
        assert measure_payload_bytes(op) == 1 + 4 + 3 + 4

    def test_envelope_total(self):
        env = Envelope(1, 0, Delete(3, 2), timestamp_bytes=8)
        assert env.total_bytes() == 8 + 9 + 8

    def test_envelope_ids_assigned_per_simulator(self):
        """Message ids come from the simulator at send time, so two
        sessions in one process draw identical id sequences (determinism)."""
        from repro.net.channel import FIFOChannel, FixedLatency
        from repro.net.simulator import Simulator

        sequences = []
        for _ in range(2):
            sim = Simulator()
            channel = FIFOChannel(sim, 0, 1, FixedLatency(0.01), lambda env: None)
            ids = []
            for _ in range(3):
                env = Envelope(0, 1, None)
                assert env.message_id is None
                channel.send(env)
                ids.append(env.message_id)
            sequences.append(ids)
        assert sequences[0] == sequences[1] == [0, 1, 2]

    def test_op_message_wrapper_not_pickled(self):
        """Editor wrappers are measured structurally (framing + inner op)."""
        from repro.core.timestamp import CompressedTimestamp
        from repro.editor.star import OpMessage

        message = OpMessage(
            op=Insert("ab", 3),
            timestamp=CompressedTimestamp(1, 0),
            origin_site=2,
            op_id="O2'",
        )
        assert measure_payload_bytes(message) == 4 + 3 + 7

    def test_mesh_record_measured_structurally(self):
        from repro.clocks.vector import VectorClock
        from repro.editor.mesh import MeshOp

        record = MeshOp(op=Delete(3, 2), vc=VectorClock.of([1, 0]), site=0, seq=1)
        assert measure_payload_bytes(record) == 4 + 9

    def test_snapshot_measured_structurally(self):
        from repro.editor.star import SnapshotMessage

        snap = SnapshotMessage(document="abcd", base_count=7)
        assert measure_payload_bytes(snap) == 4 + 5
