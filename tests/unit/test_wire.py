"""The wire transport: framing, payload round-trips, channel accounting.

The wire must carry the *same* protocol vocabulary the simulator moves
in memory, byte-identically where a codec already exists -- an
``OpMessage`` crossing TCP is the exact ``encode_op_message`` byte
string the overhead accounting (CLAIM-OVH) charges.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.timestamp import CompressedTimestamp
from repro.editor.messages import (
    ElectMessage,
    OpMessage,
    PromoteMessage,
    ResyncRequest,
    SnapshotMessage,
    StateContribution,
)
from repro.net.channel import FIFOChannel, FixedLatency
from repro.net.codec import encode_op_message
from repro.net.reliability import ReliablePacket
from repro.net.simulator import Simulator
from repro.net.transport import Envelope
from repro.net.wire import (
    MAX_FRAME_BYTES,
    Drained,
    Goodbye,
    Hello,
    Roster,
    WireChannel,
    WireError,
    backoff_delays,
    connect_with_backoff,
    decode_frame,
    encode_drained,
    encode_envelope,
    encode_goodbye,
    encode_hello,
    encode_roster,
    frame,
    pump,
    read_frame,
)
from repro.ot.operations import Delete, Insert


def _op_message(op_id: str = "1-1", source: str | None = None) -> OpMessage:
    return OpMessage(
        op=Insert("x", 3),
        timestamp=CompressedTimestamp(2, 5),
        origin_site=1,
        op_id=op_id,
        source_op_id=source,
    )


def _roundtrip(payload, kind: str = "op", message_id: int | None = 7) -> Envelope:
    envelope = Envelope(source=1, dest=0, payload=payload,
                        timestamp_bytes=8, kind=kind, message_id=message_id)
    decoded = decode_frame(encode_envelope(envelope))
    assert isinstance(decoded, Envelope)
    assert decoded.source == 1 and decoded.dest == 0
    assert decoded.timestamp_bytes == 8
    assert decoded.kind == kind
    assert decoded.message_id == message_id
    return decoded


def test_hello_roundtrip() -> None:
    assert decode_frame(encode_hello(3)) == Hello(pid=3, listen_port=0)
    assert decode_frame(encode_hello(3, 9100)) == Hello(pid=3, listen_port=9100)


def test_roster_roundtrip() -> None:
    ports = {1: 9101, 2: 9102, 3: 0}
    assert decode_frame(encode_roster(ports)) == Roster(ports=ports)
    assert decode_frame(encode_roster({})) == Roster(ports={})


def test_goodbye_and_drained_roundtrip() -> None:
    assert decode_frame(encode_goodbye()) == Goodbye()
    assert decode_frame(encode_drained(2)) == Drained(site=2)


def test_none_payload_roundtrip() -> None:
    assert _roundtrip(None, kind="ack", message_id=None).payload is None


def test_op_message_roundtrip_is_byte_identical() -> None:
    message = _op_message(source=None)
    decoded = _roundtrip(message).payload
    assert encode_op_message(decoded) == encode_op_message(message)
    assert decoded.op == Insert("x", 3)
    assert decoded.timestamp == CompressedTimestamp(2, 5)
    assert decoded.origin_site == 1
    assert decoded.op_id == "1-1"


def test_transformed_op_message_keeps_source_op_id() -> None:
    decoded = _roundtrip(_op_message(op_id="1-1'", source="1-1")).payload
    assert decoded.op_id == "1-1'"
    assert decoded.source_op_id == "1-1"


def test_reliable_packet_roundtrip_nests_payload() -> None:
    packet = ReliablePacket(seq=0, epoch=2, ack=-1, payload=_op_message())
    decoded = _roundtrip(packet, kind="rel").payload
    assert decoded.seq == 0 and decoded.epoch == 2 and decoded.ack == -1
    assert not decoded.probe
    assert decoded.payload.op_id == "1-1"


def test_probe_and_pure_ack_roundtrip() -> None:
    probe = ReliablePacket(seq=-1, epoch=0, ack=4, probe=True)
    decoded = _roundtrip(probe, kind="probe").payload
    assert decoded.probe and decoded.seq == -1 and decoded.ack == 4
    ack = ReliablePacket(seq=-1, epoch=1, ack=9)
    assert _roundtrip(ack, kind="ack").payload == ack


def test_snapshot_roundtrip() -> None:
    snapshot = SnapshotMessage(document="abc", base_count=4, own_count=2,
                               notifier_epoch=1,
                               incorporated=frozenset({"1-1", "2-1"}))
    decoded = _roundtrip(snapshot, kind="snapshot").payload
    assert decoded == snapshot


def test_snapshot_rejects_origin_clock_and_rich_documents() -> None:
    from repro.clocks.vector import VectorClock

    with pytest.raises(WireError):
        encode_envelope(Envelope(
            source=0, dest=1, kind="snapshot", timestamp_bytes=0,
            payload=SnapshotMessage(document="abc", base_count=0,
                                    origin_clock=VectorClock.zero(2)),
        ))
    with pytest.raises(WireError):
        encode_envelope(Envelope(
            source=0, dest=1, kind="snapshot", timestamp_bytes=0,
            payload=SnapshotMessage(document=["rich"], base_count=0),
        ))


def test_failover_vocabulary_roundtrip() -> None:
    assert _roundtrip(ResyncRequest(epoch=3), kind="resync").payload == \
        ResyncRequest(epoch=3)
    assert _roundtrip(ElectMessage(notifier_epoch=2), kind="elect").payload == \
        ElectMessage(notifier_epoch=2)
    assert _roundtrip(PromoteMessage(successor=2, notifier_epoch=2),
                      kind="promote").payload == \
        PromoteMessage(successor=2, notifier_epoch=2)


def test_state_contribution_roundtrip() -> None:
    contribution = StateContribution(
        site=2,
        received_from_center=5,
        generated_locally=3,
        received_per_origin={1: 2, 3: 3},
        pending=(("2-4", Insert("y", 0)), ("2-5", Delete(1, 2))),
        document="hello",
    )
    decoded = _roundtrip(contribution, kind="contrib").payload
    assert decoded == contribution
    assert _roundtrip(
        StateContribution(site=1, received_from_center=0, generated_locally=0),
        kind="contrib",
    ).payload.document is None


def test_unencodable_payload_raises() -> None:
    with pytest.raises(WireError):
        encode_envelope(Envelope(source=0, dest=1, payload=object(),
                                 timestamp_bytes=0, kind="op"))


def test_unknown_frame_tag_raises() -> None:
    with pytest.raises(WireError):
        decode_frame(b"\xff\x00")


def test_oversized_frame_raises() -> None:
    with pytest.raises(WireError):
        frame(b"x" * (MAX_FRAME_BYTES + 1))


# -- stream framing ------------------------------------------------------------


def _reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_read_frame_roundtrip_and_clean_eof() -> None:
    async def body() -> None:
        payload = encode_hello(2)
        reader = _reader_with(frame(payload) + frame(payload))
        assert await read_frame(reader) == payload
        assert await read_frame(reader) == payload
        assert await read_frame(reader) is None  # EOF on a boundary

    asyncio.run(body())


def test_read_frame_rejects_torn_prefix_and_torn_body() -> None:
    async def body() -> None:
        with pytest.raises(WireError, match="mid-prefix"):
            await read_frame(_reader_with(b"\x00\x00"))
        torn = frame(encode_hello(1))[:-2]
        with pytest.raises(WireError, match="mid-frame"):
            await read_frame(_reader_with(torn))

    asyncio.run(body())


def test_pump_routes_control_frames_and_ignores_them_without_callbacks() -> None:
    async def body() -> None:
        envelope = Envelope(source=1, dest=0, payload=_op_message(),
                            timestamp_bytes=8, kind="op", message_id=1)
        data = (frame(encode_roster({1: 9101}))
                + frame(encode_envelope(envelope))
                + frame(encode_drained(1))
                + frame(encode_goodbye()))
        rosters: list[Roster] = []
        drained: list[Drained] = []
        goodbyes: list[None] = []
        seen: list[Envelope] = []
        await pump(
            _reader_with(data), seen.append,
            on_roster=rosters.append,
            on_drained=drained.append,
            on_goodbye=lambda: goodbyes.append(None),
        )
        assert [r.ports for r in rosters] == [{1: 9101}]
        assert [d.site for d in drained] == [1]
        assert len(goodbyes) == 1 and len(seen) == 1
        # Without callbacks the control frames are skipped, not fatal:
        # an old reader meeting a new writer must not explode.
        seen.clear()
        await pump(_reader_with(data), seen.append)
        assert len(seen) == 1

    asyncio.run(body())


def test_pump_decodes_and_rejects_late_hello() -> None:
    async def body() -> None:
        envelope = Envelope(source=1, dest=0, payload=_op_message(),
                            timestamp_bytes=8, kind="op", message_id=1)
        seen: list[Envelope] = []
        await pump(_reader_with(frame(encode_envelope(envelope))), seen.append)
        assert len(seen) == 1 and seen[0].payload.op_id == "1-1"
        with pytest.raises(WireError, match="HELLO"):
            await pump(_reader_with(frame(encode_hello(1))), seen.append)

    asyncio.run(body())


# -- WireChannel accounting ----------------------------------------------------


class _NullWriter:
    """Just enough of a StreamWriter to collect written bytes."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)


def test_wire_channel_accounting_matches_fifo_channel() -> None:
    message = _op_message()

    def envelope() -> Envelope:
        return Envelope(source=1, dest=0, payload=message,
                        timestamp_bytes=8, kind="op")

    sim = Simulator()
    fifo = FIFOChannel(sim, 1, 0, FixedLatency(0.1), lambda e: None)
    fifo.send(envelope())

    writer = _NullWriter()
    wire = WireChannel(Simulator(), 1, 0, writer)  # type: ignore[arg-type]
    wire.send(envelope())

    assert wire.stats.messages == fifo.stats.messages == 1
    assert wire.stats.total_bytes == fifo.stats.total_bytes
    assert wire.stats.timestamp_bytes == fifo.stats.timestamp_bytes
    assert wire.stats.payload_bytes == fifo.stats.payload_bytes
    assert wire.fifo_respected()
    # And the frame really carries the envelope.
    body = writer.chunks[0][4:]
    decoded = decode_frame(body)
    assert isinstance(decoded, Envelope)
    assert decoded.payload.op_id == "1-1"


def test_wire_channel_rejects_misaddressed_envelopes() -> None:
    wire = WireChannel(Simulator(), 1, 0, _NullWriter())  # type: ignore[arg-type]
    with pytest.raises(ValueError, match="addressed"):
        wire.send(Envelope(source=2, dest=0, payload=None,
                           timestamp_bytes=0, kind="op"))


# -- connect_with_backoff ------------------------------------------------------


def test_backoff_delays_are_deterministic_capped_and_jittered() -> None:
    delays = backoff_delays(6, base_delay=0.05, max_delay=0.4,
                            backoff=2.0, jitter=0.5, seed=7)
    assert delays == backoff_delays(6, base_delay=0.05, max_delay=0.4,
                                    backoff=2.0, jitter=0.5, seed=7)
    assert len(delays) == 5  # one fewer sleep than attempts
    # Every delay sits in [raw, raw * 1.5] for its capped raw value.
    raws = [min(0.05 * 2.0 ** n, 0.4) for n in range(5)]
    for delay, raw in zip(delays, raws):
        assert raw <= delay <= raw * 1.5
    # A different seed jitters differently (with overwhelming odds).
    assert delays != backoff_delays(6, base_delay=0.05, max_delay=0.4,
                                    backoff=2.0, jitter=0.5, seed=8)
    assert backoff_delays(1) == []
    with pytest.raises(ValueError):
        backoff_delays(0)


def test_connect_with_backoff_retries_then_succeeds() -> None:
    async def body() -> None:
        calls: list[int] = []
        slept: list[float] = []

        async def connect(host: str, port: int):
            calls.append(port)
            if len(calls) < 3:
                raise ConnectionRefusedError("not yet")
            return ("reader", "writer")

        async def sleep(delay: float) -> None:
            slept.append(delay)

        result = await connect_with_backoff(
            "127.0.0.1", 9000, attempts=5, seed=3,
            connect=connect, sleep=sleep,  # type: ignore[arg-type]
        )
        assert result == ("reader", "writer")
        assert calls == [9000, 9000, 9000]
        assert slept == backoff_delays(5, seed=3)[:2]

    asyncio.run(body())


def test_connect_with_backoff_exhausts_attempts() -> None:
    async def body() -> None:
        async def connect(host: str, port: int):
            raise ConnectionRefusedError("down")

        async def sleep(delay: float) -> None:
            pass

        with pytest.raises(WireError, match="after 3 attempts"):
            await connect_with_backoff(
                "127.0.0.1", 9001, attempts=3,
                connect=connect, sleep=sleep,  # type: ignore[arg-type]
            )

    asyncio.run(body())
