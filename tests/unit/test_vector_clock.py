"""Unit tests for full vector clocks (repro.clocks.vector)."""

import numpy as np
import pytest

from repro.clocks.vector import (
    Ordering,
    VectorClock,
    bulk_concurrent,
    compare,
    concurrent,
    event_concurrent,
    happened_before,
)


class TestConstruction:
    def test_zero(self):
        assert VectorClock.zero(3).counts == (0, 0, 0)

    def test_zero_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            VectorClock.zero(0)

    def test_of_rejects_negative(self):
        with pytest.raises(ValueError):
            VectorClock.of([1, -1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VectorClock(())

    def test_len_and_getitem(self):
        vc = VectorClock.of([1, 2, 3])
        assert len(vc) == 3
        assert vc[1] == 2


class TestTickMerge:
    def test_tick_increments_one_component(self):
        vc = VectorClock.zero(3).tick(1)
        assert vc.counts == (0, 1, 0)

    def test_tick_is_pure(self):
        vc = VectorClock.zero(2)
        vc.tick(0)
        assert vc.counts == (0, 0)

    def test_tick_out_of_range(self):
        with pytest.raises(IndexError):
            VectorClock.zero(2).tick(5)

    def test_merge_is_componentwise_max(self):
        a = VectorClock.of([3, 0, 2])
        b = VectorClock.of([1, 4, 2])
        assert a.merge(b).counts == (3, 4, 2)

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            VectorClock.zero(2).merge(VectorClock.zero(3))

    def test_sum(self):
        assert VectorClock.of([1, 2, 3]).sum() == 6

    def test_dominates(self):
        assert VectorClock.of([2, 2]).dominates(VectorClock.of([1, 2]))
        assert not VectorClock.of([2, 1]).dominates(VectorClock.of([1, 2]))

    def test_size_bytes(self):
        assert VectorClock.zero(7).size_bytes() == 28


class TestCompare:
    def test_equal(self):
        a = VectorClock.of([1, 2])
        assert compare(a, VectorClock.of([1, 2])) is Ordering.EQUAL

    def test_before_after(self):
        a = VectorClock.of([1, 2])
        b = VectorClock.of([2, 2])
        assert compare(a, b) is Ordering.BEFORE
        assert compare(b, a) is Ordering.AFTER
        assert happened_before(a, b)
        assert not happened_before(b, a)

    def test_concurrent(self):
        a = VectorClock.of([2, 0])
        b = VectorClock.of([0, 2])
        assert compare(a, b) is Ordering.CONCURRENT
        assert concurrent(a, b)

    def test_event_concurrent_matches_formula_3(self):
        # events at sites 0 and 1 with clocks taken at the events
        ta = VectorClock.of([2, 0])
        tb = VectorClock.of([1, 1])
        assert event_concurrent(ta, tb, 0, 1) == concurrent(ta, tb)

    def test_causal_chain_transitivity(self):
        a = VectorClock.of([1, 0, 0])
        b = VectorClock.of([1, 1, 0])
        c = VectorClock.of([1, 1, 1])
        assert happened_before(a, b) and happened_before(b, c) and happened_before(a, c)


class TestBulkConcurrent:
    def test_matches_scalar_implementation(self):
        rng = np.random.default_rng(7)
        a = [VectorClock.of(rng.integers(0, 5, size=4)) for _ in range(50)]
        b = [VectorClock.of(rng.integers(0, 5, size=4)) for _ in range(50)]
        bulk = bulk_concurrent(a, b)
        scalar = np.array([concurrent(x, y) for x, y in zip(a, b)])
        assert (bulk == scalar).all()

    def test_empty_input(self):
        assert bulk_concurrent([], []).shape == (0,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bulk_concurrent([VectorClock.zero(2)], [])
