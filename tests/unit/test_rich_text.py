"""Unit tests for the rich-text OT type (repro.ot.rich)."""

import pytest

from repro.ot.rich import (
    DeleteRich,
    InsertRich,
    Retain,
    RichOperation,
    RichTextError,
    RichTextType,
    attrs_at,
    plain,
    to_string,
)


def fmt_op(doc_len, start, count, add=(), remove=()):
    """Format a span of an existing document."""
    op = RichOperation().retain(start)
    op.retain(count, add=add, remove=remove)
    return op.retain(doc_len - start - count)


class TestDocumentModel:
    def test_plain_builder(self):
        doc = plain("ab", "bold")
        assert to_string(doc) == "ab"
        assert attrs_at(doc, 0) == frozenset({"bold"})

    def test_components_validate(self):
        with pytest.raises(RichTextError):
            Retain(0)
        with pytest.raises(RichTextError):
            Retain(1, frozenset({"x"}), frozenset({"x"}))
        with pytest.raises(RichTextError):
            InsertRich("")
        with pytest.raises(RichTextError):
            DeleteRich(0)


class TestApply:
    def test_insert_with_attrs(self):
        doc = plain("ac")
        op = RichOperation().retain(1).insert("b", attrs=("bold",)).retain(1)
        out = op.apply(doc)
        assert to_string(out) == "abc"
        assert attrs_at(out, 1) == frozenset({"bold"})
        assert attrs_at(out, 0) == frozenset()

    def test_delete(self):
        doc = plain("abc", "i")
        op = RichOperation().retain(1).delete(1).retain(1)
        assert to_string(op.apply(doc)) == "ac"

    def test_format_span(self):
        doc = plain("hello")
        out = fmt_op(5, 1, 3, add=("bold",)).apply(doc)
        assert [sorted(attrs) for _, attrs in out] == [[], ["bold"], ["bold"], ["bold"], []]

    def test_format_add_and_remove(self):
        doc = plain("xy", "bold", "italic")
        op = RichOperation().retain(2, add=("underline",), remove=("bold",))
        out = op.apply(doc)
        assert attrs_at(out, 0) == frozenset({"italic", "underline"})

    def test_length_mismatch(self):
        with pytest.raises(RichTextError):
            RichOperation().retain(3).apply(plain("ab"))

    def test_lengths(self):
        op = RichOperation().retain(2).insert("xy").delete(1)
        assert op.base_length == 3
        assert op.target_length == 4


def check_tp1(doc, a, b, priority=True):
    a2, b2 = a.transform(b, self_priority=priority)
    left = b2.apply(a.apply(doc))
    right = a2.apply(b.apply(doc))
    assert left == right, f"TP1 violated: {left} != {right}"
    return left


class TestTransform:
    def test_insert_vs_insert_priority(self):
        doc = plain("ab")
        a = RichOperation().retain(1).insert("X", ("bold",)).retain(1)
        b = RichOperation().retain(1).insert("Y").retain(1)
        out = check_tp1(doc, a, b, priority=True)
        assert to_string(out) == "aXYb"
        assert attrs_at(out, 1) == frozenset({"bold"})

    def test_insert_vs_delete(self):
        doc = plain("abcd")
        a = RichOperation().retain(2).insert("Z").retain(2)
        b = RichOperation().retain(1).delete(2).retain(1)
        check_tp1(doc, a, b)

    def test_delete_vs_delete_overlap(self):
        doc = plain("abcdef")
        a = RichOperation().retain(1).delete(3).retain(2)
        b = RichOperation().retain(2).delete(3).retain(1)
        out = check_tp1(doc, a, b)
        assert to_string(out) == "af"

    def test_concurrent_formatting_disjoint_attrs_union(self):
        doc = plain("hello")
        a = fmt_op(5, 0, 5, add=("bold",))
        b = fmt_op(5, 0, 5, add=("italic",))
        out = check_tp1(doc, a, b)
        assert attrs_at(out, 2) == frozenset({"bold", "italic"})

    def test_conflicting_format_priority_wins(self):
        doc = plain("hello", "bold")
        a = fmt_op(5, 0, 5, remove=("bold",))
        b = fmt_op(5, 0, 5, add=("bold",))  # re-affirm bold
        out = check_tp1(doc, a, b, priority=True)
        # a has priority: bold removed in both execution orders
        assert attrs_at(out, 0) == frozenset()
        out = check_tp1(doc, a, b, priority=False)
        assert attrs_at(out, 0) == frozenset({"bold"})

    def test_partial_span_conflict(self):
        doc = plain("abcdef")
        a = fmt_op(6, 0, 4, add=("bold",))
        b = fmt_op(6, 2, 4, remove=("bold",))
        out = check_tp1(doc, a, b, priority=True)
        # chars 0-1 bold (only a), 2-3 conflict -> a wins (bold), 4-5 only b
        assert attrs_at(out, 0) == frozenset({"bold"})
        assert attrs_at(out, 2) == frozenset({"bold"})
        assert attrs_at(out, 4) == frozenset()

    def test_format_vs_delete(self):
        doc = plain("abcdef")
        a = fmt_op(6, 1, 4, add=("bold",))
        b = RichOperation().retain(2).delete(3).retain(1)
        out = check_tp1(doc, a, b)
        assert to_string(out) == "abf"

    def test_format_vs_insert(self):
        doc = plain("abcd")
        a = fmt_op(4, 0, 4, add=("bold",))
        b = RichOperation().retain(2).insert("XY").retain(2)
        out = check_tp1(doc, a, b)
        # inserted text keeps its own (empty) attrs; the rest is bold
        assert attrs_at(out, 0) == frozenset({"bold"})
        assert attrs_at(out, 2) == frozenset()

    def test_base_length_mismatch(self):
        with pytest.raises(RichTextError):
            RichOperation().retain(2).transform(RichOperation().retain(3))


class TestInvert:
    def test_invert_insert(self):
        doc = plain("ab")
        op = RichOperation().retain(1).insert("X", ("bold",)).retain(1)
        assert op.invert(doc).apply(op.apply(doc)) == doc

    def test_invert_delete_restores_styles(self):
        doc = plain("a") + plain("b", "bold") + plain("c", "italic")
        op = RichOperation().retain(1).delete(2)
        restored = op.invert(doc).apply(op.apply(doc))
        assert restored == doc

    def test_invert_formatting_heterogeneous_span(self):
        doc = plain("a", "bold") + plain("b") + plain("c", "bold")
        op = RichOperation().retain(3, add=("bold",))
        restored = op.invert(doc).apply(op.apply(doc))
        assert restored == doc

    def test_invert_remove_restores_only_prior(self):
        doc = plain("x", "bold") + plain("y")
        op = RichOperation().retain(2, remove=("bold",))
        restored = op.invert(doc).apply(op.apply(doc))
        assert restored == doc

    def test_invert_length_mismatch(self):
        with pytest.raises(RichTextError):
            RichOperation().retain(5).invert(plain("ab"))


class TestRichTextType:
    def test_registered(self):
        from repro.ot.types import get_type

        assert isinstance(get_type("rich-text"), RichTextType)

    def test_serialized_size(self):
        ot = RichTextType()
        op = RichOperation().retain(3, add=("bold",)).insert("x", ("i",)).delete(2)
        assert ot.serialized_size(op) > 0

    def test_star_session_with_formatting(self):
        """Two users format overlapping spans concurrently."""
        from repro.editor.star import StarSession

        doc = plain("collaborate")
        session = StarSession(
            2, ot_type_name="rich-text", initial_state=doc, verify_with_oracle=True
        )
        session.generate_at(1, fmt_op(11, 0, 6, add=("bold",)), at=1.0)
        session.generate_at(2, fmt_op(11, 4, 7, add=("italic",)), at=1.0)
        session.run()
        assert session.converged()
        final = session.notifier.document
        assert to_string(final) == "collaborate"
        assert attrs_at(final, 0) == frozenset({"bold"})
        assert attrs_at(final, 5) == frozenset({"bold", "italic"})
        assert attrs_at(final, 8) == frozenset({"italic"})

    def test_star_session_edit_while_formatting(self):
        from repro.editor.star import StarSession

        doc = plain("abc")
        session = StarSession(
            2, ot_type_name="rich-text", initial_state=doc, verify_with_oracle=True
        )
        session.generate_at(1, fmt_op(3, 0, 3, add=("bold",)), at=1.0)
        ins = RichOperation().retain(1).insert("XY").retain(2)
        session.generate_at(2, ins, at=1.0)
        session.run()
        assert session.converged()
        final = session.notifier.document
        assert to_string(final) == "aXYbc"
        assert attrs_at(final, 0) == frozenset({"bold"})
        assert attrs_at(final, 1) == frozenset()  # inserted text unformatted
        assert attrs_at(final, 4) == frozenset({"bold"})
