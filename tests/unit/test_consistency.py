"""Unit tests for divergence / intention checkers (repro.analysis.consistency)."""

import pytest

from repro.analysis.consistency import (
    check_divergence,
    intention_preserved_pair,
)
from repro.ot.operations import Delete, Insert


class TestDivergence:
    def test_all_equal_converged(self):
        report = check_divergence(["abc", "abc", "abc"])
        assert not report.diverged
        assert report.distinct_states == ("abc",)
        assert "CONVERGED" in report.summary()

    def test_detects_divergence(self):
        report = check_divergence(["abc", "abd", "abc", "xyz"])
        assert report.diverged
        assert report.distinct_states == ("abc", "abd", "xyz")
        assert "3 distinct" in report.summary()

    def test_single_site(self):
        assert not check_divergence(["only"]).diverged

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_divergence([])

    def test_works_on_unhashable_states(self):
        report = check_divergence([["a"], ["a"], ["b"]])
        assert report.diverged


class TestIntentionCheck:
    def test_paper_section_2_2_example(self):
        """O_1 = Insert["12",1], O_2 = Delete[3,2] on "ABCDE": preserved
        result "A12B"; naive site-1 execution gives "A1DE"."""
        check = intention_preserved_pair("ABCDE", Insert("12", 1), Delete(3, 2))
        assert check.preserved_result == "A12B"
        assert check.naive_results[0] == "A1DE"
        assert check.naive_violates

    def test_one_naive_order_can_be_correct(self):
        # Executing the lower-position op second leaves it unaffected:
        # Delete[1,5] then Insert["X",0] happens to match the intention,
        # but the other order does not -- still a violation overall.
        check = intention_preserved_pair("abcdef", Delete(1, 5), Insert("X", 0))
        assert check.preserved_result == "Xabcde"
        assert check.naive_results[0] == check.preserved_result
        assert check.naive_results[1] == "Xabcdf"
        assert check.naive_violates

    def test_inapplicable_naive_order_reported(self):
        # b deletes beyond what remains after a in one naive order
        check = intention_preserved_pair("abc", Delete(3, 0), Delete(2, 1))
        assert check.preserved_result == ""
        assert "<inapplicable>" in check.naive_results
