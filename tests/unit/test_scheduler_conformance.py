"""Conformance suite for the Scheduler protocol (ISSUE 7, satellite 3).

Both implementations -- the discrete-event ``Simulator`` and the
wall-clock ``AsyncioScheduler`` -- must satisfy one behavioural
contract, because the editor classes run unmodified over either.  The
suite is parametrized over the two; any divergence is a bug in the
newcomer, since the simulator's semantics are the repo's ground truth.
"""

from __future__ import annotations

import pytest

from repro.net.scheduler import AsyncioScheduler, Scheduler, SchedulingError
from repro.net.simulator import SimulationError, Simulator


@pytest.fixture(params=["simulator", "asyncio"])
def sched(request):
    if request.param == "simulator":
        return Simulator()
    return AsyncioScheduler()


def test_satisfies_protocol(sched) -> None:
    assert isinstance(sched, Scheduler)


def test_now_starts_near_zero(sched) -> None:
    assert 0.0 <= sched.now < 0.5


def test_same_deadline_fires_in_scheduling_order(sched) -> None:
    order: list[int] = []
    deadline = sched.now + 0.01
    for i in range(5):
        sched.schedule(deadline, lambda i=i: order.append(i))
    sched.run()
    assert order == [0, 1, 2, 3, 4]


def test_earlier_deadline_fires_first_regardless_of_insertion(sched) -> None:
    order: list[str] = []
    base = sched.now
    sched.schedule(base + 0.03, lambda: order.append("late"))
    sched.schedule(base + 0.01, lambda: order.append("early"))
    sched.run()
    assert order == ["early", "late"]


def test_cancel_prevents_execution_and_is_idempotent(sched) -> None:
    fired: list[int] = []
    handle = sched.schedule_after(0.01, lambda: fired.append(1))
    keeper = sched.schedule_after(0.01, lambda: fired.append(2))
    sched.cancel(handle)
    sched.cancel(handle)  # second cancel must be a no-op
    sched.run()
    assert fired == [2]
    assert keeper is not None


def test_pending_events_counts_cancellations(sched) -> None:
    handles = [sched.schedule_after(0.01, lambda: None) for _ in range(4)]
    assert sched.pending_events == 4
    sched.cancel(handles[0])
    assert sched.pending_events == 3
    sched.run()
    assert sched.pending_events == 0


def test_run_returns_processed_count(sched) -> None:
    for _ in range(3):
        sched.schedule_after(0.01, lambda: None)
    assert sched.run() == 3
    assert sched.run() == 0  # drained


def test_run_honours_max_events(sched) -> None:
    fired: list[int] = []
    for i in range(5):
        sched.schedule_after(0.01 + i * 0.001, lambda i=i: fired.append(i))
    assert sched.run(max_events=2) == 2
    assert fired == [0, 1]
    assert sched.run() == 3
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_in_the_past_raises(sched) -> None:
    with pytest.raises(SchedulingError):
        sched.schedule(sched.now - 1.0, lambda: None)


def test_negative_delay_raises(sched) -> None:
    with pytest.raises(SchedulingError):
        sched.schedule_after(-0.5, lambda: None)


def test_schedule_after_advances_now_monotonically(sched) -> None:
    stamps: list[float] = []
    sched.schedule_after(0.01, lambda: stamps.append(sched.now))
    sched.schedule_after(0.02, lambda: stamps.append(sched.now))
    sched.run()
    assert len(stamps) == 2
    assert stamps[0] <= stamps[1]
    assert all(s >= 0.01 - 1e-9 for s in stamps)


def test_callbacks_may_schedule_more_work(sched) -> None:
    order: list[str] = []

    def second() -> None:
        order.append("second")

    def first() -> None:
        order.append("first")
        sched.schedule_after(0.01, second)

    sched.schedule_after(0.01, first)
    sched.run()
    assert order == ["first", "second"]


def test_message_ids_are_unique_and_monotonic(sched) -> None:
    ids = [sched.next_message_id() for _ in range(10)]
    assert ids == sorted(set(ids))


def test_simulation_error_is_a_scheduling_error() -> None:
    # Call sites catching SchedulingError work under either scheduler.
    assert issubclass(SimulationError, SchedulingError)


def test_asyncio_run_rejects_reentry() -> None:
    import asyncio

    async def body() -> None:
        sched = AsyncioScheduler()
        with pytest.raises(SchedulingError):
            sched.run()

    asyncio.run(body())
