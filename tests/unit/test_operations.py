"""Unit tests for positional operations (repro.ot.operations)."""

import pytest

from repro.ot.operations import (
    Delete,
    Identity,
    Insert,
    OperationError,
    OperationGroup,
    apply_operation,
    apply_sequence,
    flatten,
    simplify,
)


class TestInsert:
    def test_insert_at_start(self):
        assert Insert("xy", 0).apply("abc") == "xyabc"

    def test_insert_in_middle(self):
        assert Insert("12", 1).apply("ABCDE") == "A12BCDE"

    def test_insert_at_end(self):
        assert Insert("!", 3).apply("abc") == "abc!"

    def test_insert_into_empty_document(self):
        assert Insert("hello", 0).apply("") == "hello"

    def test_insert_beyond_length_raises(self):
        with pytest.raises(OperationError):
            Insert("x", 4).apply("abc")

    def test_negative_position_rejected_at_construction(self):
        with pytest.raises(OperationError):
            Insert("x", -1)

    def test_empty_text_is_identity(self):
        op = Insert("", 2)
        assert op.is_identity()
        assert op.apply("abc") == "abc"

    def test_end_property(self):
        assert Insert("abc", 2).end == 5

    def test_repr_matches_paper_notation(self):
        assert repr(Insert("12", 1)) == "Insert['12', 1]"

    def test_is_immutable(self):
        op = Insert("x", 0)
        with pytest.raises(AttributeError):
            op.pos = 3


class TestDelete:
    def test_delete_prefix(self):
        assert Delete(2, 0).apply("abcd") == "cd"

    def test_delete_paper_example(self):
        # O_2 = Delete[3, 2] on "ABCDE" deletes "CDE"
        assert Delete(3, 2).apply("ABCDE") == "AB"

    def test_delete_suffix(self):
        assert Delete(2, 2).apply("abcd") == "ab"

    def test_delete_whole_document(self):
        assert Delete(3, 0).apply("abc") == ""

    def test_delete_beyond_length_raises(self):
        with pytest.raises(OperationError):
            Delete(3, 2).apply("abc")

    def test_negative_count_rejected(self):
        with pytest.raises(OperationError):
            Delete(-1, 0)

    def test_negative_position_rejected(self):
        with pytest.raises(OperationError):
            Delete(1, -2)

    def test_zero_count_is_identity(self):
        op = Delete(0, 1)
        assert op.is_identity()
        assert op.apply("abc") == "abc"

    def test_end_property(self):
        assert Delete(3, 2).end == 5

    def test_repr_matches_paper_notation(self):
        assert repr(Delete(3, 2)) == "Delete[3, 2]"


class TestIdentity:
    def test_apply_is_noop(self):
        assert Identity().apply("anything") == "anything"

    def test_is_identity(self):
        assert Identity().is_identity()

    def test_primitive_count_zero(self):
        assert Identity().primitive_count() == 0


class TestOperationGroup:
    def test_sequential_application(self):
        group = OperationGroup((Delete(2, 1), Delete(2, 3)))
        # "abcdefg" -> delete "bc" -> "adefg" -> delete "fg" -> "ade"
        assert group.apply("abcdefg") == "ade"

    def test_group_identity_detection(self):
        assert OperationGroup((Identity(), Insert("", 0))).is_identity()
        assert not OperationGroup((Identity(), Insert("x", 0))).is_identity()

    def test_primitive_count(self):
        group = OperationGroup((Delete(1, 0), Identity(), Insert("a", 0)))
        assert group.primitive_count() == 2

    def test_iteration(self):
        members = (Delete(1, 0), Insert("a", 0))
        assert tuple(OperationGroup(members)) == members

    def test_nested_groups_apply(self):
        inner = OperationGroup((Insert("x", 0),))
        outer = OperationGroup((inner, Insert("y", 0)))
        assert outer.apply("z") == "yxz"


class TestHelpers:
    def test_apply_operation_dispatches(self):
        assert apply_operation("abc", Insert("x", 1)) == "axbc"

    def test_apply_sequence(self):
        ops = [Insert("x", 0), Delete(1, 1), Insert("z", 2)]
        assert apply_sequence("ab", ops) == "xbz"

    def test_flatten_drops_identities(self):
        group = OperationGroup((Identity(), Insert("a", 0), OperationGroup((Delete(1, 0),))))
        assert flatten(group) == [Insert("a", 0), Delete(1, 0)]

    def test_simplify_empty_group_to_identity(self):
        assert simplify(OperationGroup((Identity(),))) == Identity()

    def test_simplify_singleton_group_to_member(self):
        assert simplify(OperationGroup((Insert("a", 1),))) == Insert("a", 1)

    def test_simplify_keeps_multi_member_group(self):
        group = simplify(OperationGroup((Delete(1, 0), Delete(1, 5))))
        assert isinstance(group, OperationGroup)
        assert len(group.members) == 2
