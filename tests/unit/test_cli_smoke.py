"""End-to-end smoke tests for the ``python -m repro`` entry point.

:mod:`tests.unit.test_stats_cli` drives :func:`repro.cli.main`
in-process; these run the real module entry point in a subprocess --
exactly what a user types -- so packaging regressions (a broken
``__main__``, an import cycle that only fires on cold start, a stack
layer that forgot a re-export) fail here even when in-process tests
pass.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_repro(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )


class TestSessionSmoke:
    def test_star_session(self):
        result = run_repro("session", "--sites", "3", "--ops", "2", "--seed", "1")
        assert result.returncode == 0, result.stderr
        assert "architecture     : star" in result.stdout
        assert "converged        : True" in result.stdout
        assert "timestamp bytes" in result.stdout

    def test_mesh_session(self):
        result = run_repro(
            "session", "--arch", "mesh", "--sites", "3", "--ops", "2", "--seed", "1"
        )
        assert result.returncode == 0, result.stderr
        assert "architecture     : mesh" in result.stdout
        assert "converged        : True" in result.stdout


class TestFaultsSmoke:
    def test_faulty_session_recovers_end_to_end(self):
        result = run_repro(
            "session", "--sites", "3", "--ops", "3", "--seed", "7",
            "--faults", "--drop", "0.15", "--dup", "0.05", "--crash", "2:3.0:5.0",
        )
        assert result.returncode == 0, result.stderr
        assert "converged        : True" in result.stdout
        assert "fifo respected   : True" in result.stdout
        assert "in-order release : True" in result.stdout
        assert "recoveries=1" in result.stdout

    def test_faults_flag_alone_enables_reliability(self):
        result = run_repro("session", "--sites", "2", "--ops", "1", "--faults")
        assert result.returncode == 0, result.stderr
        assert "protocol: sent=" in result.stdout

    def test_notifier_crash_fails_over_end_to_end(self):
        result = run_repro(
            "session", "--sites", "3", "--ops", "4", "--seed", "7",
            "--faults", "--crash-notifier", "2.0", "--standby", "2",
        )
        assert result.returncode == 0, result.stderr
        assert "converged        : True" in result.stdout
        assert "promotions=1" in result.stdout
        assert "in-order release : True" in result.stdout

    def test_traced_notifier_crash_passes_the_cross_check(self, tmp_path):
        result = run_repro(
            "trace", "--sites", "3", "--ops", "4", "--seed", "3",
            "--faults", "--crash-notifier", "2.0",
            "--out", str(tmp_path / "failover"),
        )
        assert result.returncode == 0, result.stderr
        assert "EXACT MATCH" in result.stdout
        assert "promotions=1" in result.stdout
        assert "0 disagreements" in result.stdout
        assert (tmp_path / "failover.jsonl").exists()


class TestFigureSmoke:
    def test_fig3_walkthrough(self):
        result = run_repro("fig3")
        assert result.returncode == 0, result.stderr
        assert "all replicas converged" in result.stdout

    def test_memory_table_uses_live_clocks(self):
        result = run_repro("memory", "--sizes", "8")
        assert result.returncode == 0, result.stderr
        # 8 | 8 (full VC) | 24 (SK) | 2 (client) | 8 (notifier)
        line = [l for l in result.stdout.splitlines() if l.strip().startswith("8 ")]
        assert line and "24" in line[0] and "2" in line[0]
