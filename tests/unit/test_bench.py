"""Unit tests for the bench harness, artifact schema, and regression gate."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs import bench
from repro.obs.bench import (
    BENCH_FORMAT,
    BENCH_SCHEMA_VERSION,
    BenchScenario,
    compare_artifacts,
    merge_table_blocks,
    read_artifact,
    run_scenario,
    write_artifact,
)


def small_star() -> BenchScenario:
    return BenchScenario(id="star-tiny", n_sites=3, ops_per_site=3, seed=7)


class TestScenarios:
    def test_matrix_ids_are_unique(self):
        ids = [s.id for s in bench.FULL_MATRIX]
        assert len(ids) == len(set(ids))
        assert len(bench.QUICK_MATRIX) >= 4

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ValueError):
            BenchScenario(id="x", kind="nope")
        with pytest.raises(ValueError):
            BenchScenario(id="x", topology="ring")
        with pytest.raises(ValueError):
            BenchScenario(id="x", faults="weird")
        with pytest.raises(ValueError):
            BenchScenario(id="x", topology="mesh", faults="lossy")
        with pytest.raises(ValueError):
            BenchScenario(id="x", n_sites=0)

    def test_run_star_scenario_populates_record(self):
        record = run_scenario(small_star())
        assert record["id"] == "star-tiny"
        assert record["converged"] is True
        assert record["ops"] == 9
        assert record["messages"] > 0
        assert record["storage_ints"] > 0
        assert record["latency"]["p50"] is not None
        assert record["latency"]["p95"] is not None
        # The profiler saw the hot paths of a transforming session.
        assert record["phase_calls"].get("net.send", 0) > 0
        assert record["phase_calls"].get("notifier.broadcast", 0) > 0
        assert record["profile"]["schema_version"] == 1

    def test_run_clocks_scenario_populates_record(self):
        scenario = BenchScenario(
            id="clocks-tiny", kind="clocks", clock_family="vector", n_sites=4, ops_per_site=5
        )
        record = run_scenario(scenario)
        assert record["ops"] == 20
        assert record["storage_ints"] == 4 * 4  # n vector clocks of n ints
        assert record["phase_calls"]["clock.vector.tick"] == 20
        assert record["phase_calls"]["clock.vector.merge"] == 20
        assert record["latency"]["p50"] is None

    def test_unknown_clock_family_rejected(self):
        scenario = BenchScenario(id="x", kind="clocks", clock_family="sundial")
        with pytest.raises(ValueError):
            run_scenario(scenario)

    def test_deterministic_metrics_are_reproducible(self):
        a = run_scenario(small_star())
        b = run_scenario(small_star())
        for metric in bench.DETERMINISTIC_METRICS:
            assert bench._metric_value(a, metric) == bench._metric_value(b, metric)
        assert a["phase_calls"] == b["phase_calls"]


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        doc = bench.run_matrix((small_star(),), label="t", quick=True)
        path = str(tmp_path / "BENCH_t.json")
        write_artifact(path, doc)
        loaded = read_artifact(path)
        assert loaded == doc
        assert loaded["format"] == BENCH_FORMAT
        assert loaded["schema_version"] == BENCH_SCHEMA_VERSION
        assert loaded["git_rev"]

    def test_validate_rejects_malformed(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"format": "something-else"}, fh)
        with pytest.raises(ValueError):
            read_artifact(path)

    def test_write_preserves_existing_tables(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        merge_table_blocks(path, [("CLAIM-OVH", "the table body")])
        doc = bench.run_matrix((small_star(),), label="x", quick=True)
        write_artifact(path, doc)
        loaded = read_artifact(path)
        assert loaded["tables"]["CLAIM-OVH"] == "the table body"
        assert loaded["scenarios"]

    def test_merge_table_blocks_replaces_by_title(self, tmp_path):
        path = str(tmp_path / "BENCH_y.json")
        merge_table_blocks(path, [("T1", "old"), ("T2", "keep")])
        merge_table_blocks(path, [("T1", "new")])
        loaded = read_artifact(path)
        assert loaded["tables"] == {"T1": "new", "T2": "keep"}
        assert loaded["label"] == "pytest"  # skeleton created on first merge


def synthetic_doc(**overrides):
    """A minimal hand-built artifact for gate tests."""
    record = {
        "id": "s1",
        "converged": True,
        "ops": 100,
        "ops_per_sec": 5000.0,
        "messages": 400,
        "storage_ints": 12,
        "holdback_high_water": 3,
        "latency": {"p50": 0.2, "p95": 0.5, "p99": 0.9},
        "phase_calls": {"ot.it": 40, "codec.encode": 100},
    }
    record.update(overrides)
    return {
        "format": BENCH_FORMAT,
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": "synthetic",
        "git_rev": "deadbee",
        "quick": True,
        "scenarios": [record],
    }


class TestCompare:
    def test_identical_docs_pass(self):
        doc = synthetic_doc()
        report = compare_artifacts(doc, copy.deepcopy(doc))
        assert report.status == "pass"
        assert report.exit_code == 0
        assert not report.problems()

    def test_small_drift_warns_exit_2(self):
        base = synthetic_doc()
        cur = synthetic_doc(messages=460)  # +15%: past warn, short of fail
        report = compare_artifacts(base, cur)
        assert report.status == "warn"
        assert report.exit_code == 2
        assert any(e.metric == "messages" for e in report.problems())

    def test_large_drift_fails_exit_1(self):
        base = synthetic_doc()
        cur = synthetic_doc(messages=600)  # +50%
        report = compare_artifacts(base, cur)
        assert report.status == "fail"
        assert report.exit_code == 1

    def test_thresholds_are_configurable(self):
        base = synthetic_doc()
        cur = synthetic_doc(messages=460)
        report = compare_artifacts(base, cur, warn_pct=0.20, fail_pct=0.50)
        assert report.status == "pass"

    def test_convergence_flip_fails(self):
        report = compare_artifacts(synthetic_doc(), synthetic_doc(converged=False))
        assert report.status == "fail"
        assert any(e.metric == "converged" for e in report.problems())

    def test_phase_call_drift_is_gated(self):
        base = synthetic_doc()
        cur = synthetic_doc(phase_calls={"ot.it": 80, "codec.encode": 100})
        report = compare_artifacts(base, cur)
        assert any(e.metric == "phase_calls.ot.it" for e in report.problems())

    def test_wire_scenarios_are_never_gated(self):
        # Real-socket cluster runs are wall-clock end to end: even a
        # wild swing in every metric must not trip the gate.
        base = synthetic_doc(id="wire-star-3x4", kind="wire", ops_per_sec=4.0)
        cur = synthetic_doc(id="wire-star-3x4", kind="wire", ops_per_sec=1.0,
                            messages=9999, converged=False)
        report = compare_artifacts(base, cur, gate_wall=True)
        assert report.status == "pass"
        assert report.exit_code == 0
        assert any(e.severity == "info" and "wire" in e.metric
                   for e in report.entries)

    def test_missing_scenario_fails(self):
        base = synthetic_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"] = []
        report = compare_artifacts(base, cur)
        assert report.status == "fail"

    def test_extra_scenario_is_informational(self):
        base = synthetic_doc()
        cur = copy.deepcopy(base)
        extra = copy.deepcopy(cur["scenarios"][0])
        extra["id"] = "s2"
        cur["scenarios"].append(extra)
        report = compare_artifacts(base, cur)
        assert report.status == "pass"
        assert any(e.severity == "info" for e in report.entries)

    def test_metric_vanishing_fails(self):
        base = synthetic_doc()
        cur = synthetic_doc(latency={"p50": 0.2, "p95": None, "p99": 0.9})
        report = compare_artifacts(base, cur)
        assert report.status == "fail"
        assert any(e.metric == "latency.p95" for e in report.problems())

    def test_zero_baseline_to_nonzero_fails(self):
        base = synthetic_doc(holdback_high_water=0)
        cur = synthetic_doc(holdback_high_water=4)
        report = compare_artifacts(base, cur)
        assert any(
            e.metric == "holdback_high_water" and e.severity == "fail"
            for e in report.entries
        )

    def test_wall_clock_gated_only_on_request(self):
        base = synthetic_doc()
        cur = synthetic_doc(ops_per_sec=2000.0)  # -60% throughput
        assert compare_artifacts(base, cur).status == "pass"
        gated = compare_artifacts(base, cur, gate_wall=True)
        assert gated.status == "fail"
        # A throughput *gain* is never a regression, even when gated.
        faster = synthetic_doc(ops_per_sec=9000.0)
        assert compare_artifacts(base, faster, gate_wall=True).status == "pass"

    def test_summary_mentions_regressions(self):
        report = compare_artifacts(synthetic_doc(), synthetic_doc(messages=600))
        text = report.summary()
        assert "messages" in text and "FAIL" in text


class TestCli:
    def test_bench_cli_writes_and_gates(self, tmp_path, capsys):
        out_dir = str(tmp_path)
        rc = main(
            ["bench", "--quick", "--scenario", "star-4x8-clean", "--label", "one",
             "--out-dir", out_dir]
        )
        assert rc == 0
        baseline = f"{out_dir}/BENCH_one.json"
        assert read_artifact(baseline)["scenarios"][0]["id"] == "star-4x8-clean"
        # Run-then-gate against the artifact just written: deterministic
        # metrics are identical, so the gate passes.
        rc = main(
            ["bench", "--quick", "--scenario", "star-4x8-clean", "--label", "two",
             "--out-dir", out_dir, "--compare", baseline]
        )
        assert rc == 0
        # Diff-only mode over the two artifacts.
        rc = main(["bench", "--compare", baseline, f"{out_dir}/BENCH_two.json"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench comparison" in out

    def test_bench_cli_rejects_unknown_scenario(self, tmp_path):
        rc = main(
            ["bench", "--scenario", "no-such-thing", "--out-dir", str(tmp_path)]
        )
        assert rc == 2

    def test_bench_cli_rejects_missing_baseline(self, tmp_path):
        rc = main(["bench", "--compare", str(tmp_path / "absent.json"), str(tmp_path / "b.json")])
        assert rc == 2
