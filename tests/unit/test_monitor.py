"""Unit tests for the cross-process telemetry aggregator.

The monitor's contracts: duplicated frames (local stream + gossiped
copy) count once, aggregation reflects each site's *latest* frame,
digest comparison only judges complete-looking replicas, the merged
registry equals the sum/union of the per-site registries, and
``run_monitor`` renders live lines, writes the JSONL artifact, and maps
what it saw onto its exit code.
"""

from __future__ import annotations

import json

from repro.obs import (
    HealthEvent,
    TelemetryFrame,
    aggregate,
    merged_registry,
    run_monitor,
    scan_dir,
    site_registry,
)
from repro.obs.monitor import (
    MONITOR_FORMAT,
    TelemetryTailer,
    read_telemetry,
    sparkline,
)
from repro.obs.telemetry import TELEMETRY_FORMAT, TELEMETRY_SCHEMA_VERSION


def frame_at(site: int, seq: int, **over) -> TelemetryFrame:
    base = dict(site=site, role="client" if site else "notifier",
                seq=seq, time=float(seq))
    base.update(over)
    return TelemetryFrame(**base)


def write_stream(path, records, *, site=0, role="notifier"):
    header = json.dumps({
        "format": TELEMETRY_FORMAT,
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "site": site,
        "role": role,
    })
    path.write_text("\n".join([header, *(r.to_json() for r in records)]) + "\n")


class TestScanDir:
    def test_gossiped_duplicates_count_once(self, tmp_path):
        local = [frame_at(1, 0), frame_at(1, 1)]
        write_stream(tmp_path / "telemetry_1.jsonl", local, site=1, role="client")
        # The notifier's stream holds its own frame plus a gossiped copy.
        write_stream(tmp_path / "telemetry_0.jsonl",
                     [frame_at(0, 0), local[0]])
        by_site, health = scan_dir(tmp_path)
        assert sorted(by_site) == [0, 1]
        assert [f.seq for f in by_site[1]] == [0, 1]
        assert health == []

    def test_health_events_are_deduplicated_and_sorted(self, tmp_path):
        event = HealthEvent(time=2.0, site=1, kind="peer_dead",
                            verdict="fail", peer=0)
        earlier = HealthEvent(time=1.0, site=2, kind="causal_stall",
                              verdict="warn")
        (tmp_path / "telemetry_1.jsonl").write_text(
            event.to_json() + "\n" + earlier.to_json() + "\n"
        )
        (tmp_path / "telemetry_0.jsonl").write_text(event.to_json() + "\n")
        _by_site, health = scan_dir(tmp_path)
        assert health == [earlier, event]

    def test_torn_tail_is_skipped(self, tmp_path):
        good = frame_at(1, 0)
        (tmp_path / "telemetry_1.jsonl").write_text(
            good.to_json() + "\n" + '{"rec": "frame", "sit'
        )
        header, frames, health = read_telemetry(tmp_path / "telemetry_1.jsonl")
        assert frames == [good]
        assert header == {} and health == []


class TestAggregate:
    def test_latest_frame_per_site_wins(self):
        by_site = {
            0: [frame_at(0, 0, ops_executed=2), frame_at(0, 3, ops_executed=9)],
            1: [frame_at(1, 1, ops_executed=5)],
        }
        snapshot = aggregate(by_site)
        assert snapshot.sites == [0, 1]
        assert snapshot.ops_executed == {0: 9, 1: 5}
        assert snapshot.time == 3.0  # the newest latest-frame time

    def test_sums_and_maxima(self):
        by_site = {
            0: [frame_at(0, 0, holdback_depth=1, holdback_high_water=4,
                         inflight=2, retransmits=3, storage_ints=7,
                         queue_depth=5, epoch=1, ops_generated=6)],
            1: [frame_at(1, 0, holdback_depth=2, holdback_high_water=3,
                         inflight=1, retransmits=1, storage_ints=4,
                         queue_depth=2, epoch=0, ops_generated=3)],
        }
        snapshot = aggregate(by_site)
        assert snapshot.holdback_depth == 3
        assert snapshot.holdback_high_water == 4  # worst single buffer
        assert snapshot.inflight == 3
        assert snapshot.retransmits == 4
        assert snapshot.storage_ints == 11
        assert snapshot.queue_depth == 7
        assert snapshot.epoch == 1
        assert snapshot.ops_generated == 9

    def test_digest_divergence_only_among_complete_replicas(self):
        behind = frame_at(1, 0, ops_executed=3, digest="bbb")
        complete_a = frame_at(0, 0, ops_executed=9, digest="aaa")
        assert aggregate({0: [complete_a], 1: [behind]}).digests_agree
        complete_b = frame_at(1, 1, ops_executed=9, digest="bbb")
        snapshot = aggregate({0: [complete_a], 1: [complete_b]})
        assert not snapshot.digests_agree
        assert "DIVERGED" in snapshot.line()

    def test_line_renders_health_events(self):
        snapshot = aggregate(
            {0: [frame_at(0, 0)]},
            [HealthEvent(time=1.0, site=2, kind="peer_dead", verdict="fail",
                         peer=0, detail="gone")],
        )
        text = snapshot.line(expected_sites=4)
        assert "sites=1/4" in text
        assert "health: [fail] site 2 peer_dead (peer 0): gone" in text

    def test_failover_counters_sum_and_render_only_when_present(self):
        # A quiet run never mentions failover -- the line segment is
        # reserved for runs where an epoch transition actually happened.
        quiet = aggregate({0: [frame_at(0, 0)], 1: [frame_at(1, 0)]})
        assert "failover=" not in quiet.line()
        assert quiet.elected == 0 and quiet.promoted == 0
        # After a crash: site 1 elected + promoted at epoch 1, sites 2-3
        # resynced from snapshots, site 3 queued edits while leaderless.
        by_site = {
            1: [frame_at(1, 2, elected=1, promoted=1, epoch=1)],
            2: [frame_at(2, 2, resynced=1, epoch=1)],
            3: [frame_at(3, 2, resynced=1, degraded_queued=2, epoch=1)],
        }
        snapshot = aggregate(by_site)
        assert snapshot.elected == 1
        assert snapshot.promoted == 1
        assert snapshot.resynced == 2
        assert snapshot.degraded_queued == 2
        assert "failover=1e/1p/2r dq=2" in snapshot.line()
        record = json.loads(snapshot.to_json())
        assert record["elected"] == 1
        assert record["promoted"] == 1
        assert record["resynced"] == 2
        assert record["degraded_queued"] == 2

    def test_site_registry_carries_failover_counters(self):
        registry = site_registry(
            [frame_at(1, 0), frame_at(1, 1, elected=1, promoted=1,
                                      resynced=1, degraded_queued=3)]
        )
        counters = registry.counters()
        assert counters["telemetry.elected"] == 1
        assert counters["telemetry.promoted"] == 1
        assert counters["telemetry.resynced"] == 1
        assert counters["telemetry.degraded_queued"] == 3


class TestRegistries:
    def test_site_registry_counts_latest_and_observes_every_frame(self):
        frames = [
            frame_at(1, 0, ops_executed=2, holdback_depth=1, retransmits=0),
            frame_at(1, 1, ops_executed=5, holdback_depth=3, retransmits=2),
        ]
        registry = site_registry(frames)
        counters = registry.counters()
        assert counters["telemetry.ops_executed"] == 5  # latest, not summed
        assert counters["telemetry.retransmits"] == 2
        assert counters["telemetry.frames"] == 2
        assert sorted(registry.histograms()["telemetry.holdback_depth"].values) \
            == [1.0, 3.0]

    def test_merged_registry_sums_across_sites(self):
        by_site = {
            0: [frame_at(0, 0, ops_executed=4)],
            1: [frame_at(1, 0, ops_executed=6)],
        }
        merged = merged_registry(by_site)
        assert merged.counters()["telemetry.ops_executed"] == 10
        assert merged.counters()["telemetry.frames"] == 2
        assert merged.histograms()["telemetry.queue_depth"].count == 2


class TestRunMonitor:
    def test_once_mode_emits_a_line_and_writes_the_artifact(self, tmp_path):
        write_stream(tmp_path / "telemetry_0.jsonl",
                     [frame_at(0, 0, ops_executed=9)])
        lines: list[str] = []
        code = run_monitor(tmp_path, once=True, expect_sites=4,
                           emit=lines.append)
        assert code == 0
        assert len(lines) == 1 and "sites=1/4" in lines[0]
        artifact = (tmp_path / "monitor.jsonl").read_text().splitlines()
        header = json.loads(artifact[0])
        assert header["format"] == MONITOR_FORMAT
        records = [json.loads(line) for line in artifact[1:]]
        kinds = [r["rec"] for r in records]
        assert kinds == ["interval", "metrics"]
        assert records[0]["ops_executed"] == {"0": 9}
        assert records[1]["counters"]["telemetry.ops_executed"] == 9

    def test_no_telemetry_at_all_exits_1(self, tmp_path):
        assert run_monitor(tmp_path, once=True, emit=lambda _: None) == 1

    def test_fail_health_verdict_exits_2(self, tmp_path):
        stream = (tmp_path / "telemetry_1.jsonl")
        event = HealthEvent(time=1.0, site=1, kind="peer_dead",
                            verdict="fail", peer=0)
        stream.write_text(frame_at(1, 0).to_json() + "\n"
                          + event.to_json() + "\n")
        code = run_monitor(tmp_path, once=True, emit=lambda _: None)
        assert code == 2
        records = [json.loads(line) for line
                   in (tmp_path / "monitor.jsonl").read_text().splitlines()[1:]]
        health = [r for r in records if r["rec"] == "health"]
        assert [h["kind"] for h in health] == ["peer_dead"]

    def test_live_loop_stops_once_streams_go_idle(self, tmp_path):
        write_stream(tmp_path / "telemetry_0.jsonl", [frame_at(0, 0)])
        clock = {"t": 0.0}

        def sleep(seconds: float) -> None:
            clock["t"] += seconds

        code = run_monitor(tmp_path, interval_s=0.1, emit=lambda _: None,
                           clock=lambda: clock["t"], sleep=sleep)
        assert code == 0  # returned on its own: idle detection worked

    def test_max_intervals_bounds_the_loop(self, tmp_path):
        write_stream(tmp_path / "telemetry_0.jsonl", [frame_at(0, 0)])
        rounds = {"n": 0}

        def sleep(_seconds: float) -> None:
            rounds["n"] += 1
            # Keep the streams "fresh" forever: without the bound the
            # idle detector would never fire.
            write_stream(tmp_path / "telemetry_0.jsonl",
                         [frame_at(0, seq) for seq in range(rounds["n"] + 1)])

        code = run_monitor(tmp_path, interval_s=0.01, max_intervals=3,
                           emit=lambda _: None, sleep=sleep)
        assert code == 0
        assert rounds["n"] == 2  # 3 rounds = 2 sleeps between them


class TestTelemetryTailer:
    def test_each_record_parsed_exactly_once_across_polls(self, tmp_path):
        stream = tmp_path / "telemetry_1.jsonl"
        write_stream(stream, [frame_at(1, 0), frame_at(1, 1)],
                     site=1, role="client")
        tailer = TelemetryTailer(tmp_path)
        by_site, _health = tailer.poll()
        assert [f.seq for f in by_site[1]] == [0, 1]
        assert tailer.records_parsed == 2  # header line is not a record

        # Nothing new on disk: a second poll parses zero records.
        assert tailer.poll() == ({}, [])
        assert tailer.records_parsed == 2

        # Append two more; only the appended bytes are parsed.
        with stream.open("a") as fh:
            fh.write(frame_at(1, 2).to_json() + "\n")
            fh.write(frame_at(1, 3).to_json() + "\n")
        by_site, _health = tailer.poll()
        assert [f.seq for f in by_site[1]] == [2, 3]
        assert tailer.records_parsed == 4
        assert tailer.frames_from_files == 4

    def test_partial_trailing_line_waits_for_completion(self, tmp_path):
        stream = tmp_path / "telemetry_1.jsonl"
        full = frame_at(1, 0).to_json()
        torn = frame_at(1, 1).to_json()
        stream.write_text(full + "\n" + torn[:10])
        tailer = TelemetryTailer(tmp_path)
        by_site, _ = tailer.poll()
        assert [f.seq for f in by_site[1]] == [0]
        # The writer finishes the line: the next poll picks it up whole.
        with stream.open("a") as fh:
            fh.write(torn[10:] + "\n")
        by_site, _ = tailer.poll()
        assert [f.seq for f in by_site[1]] == [1]
        assert tailer.records_parsed == 2

    def test_truncated_file_resets_cursor(self, tmp_path):
        stream = tmp_path / "telemetry_1.jsonl"
        write_stream(stream, [frame_at(1, 0), frame_at(1, 1)],
                     site=1, role="client")
        tailer = TelemetryTailer(tmp_path)
        tailer.poll()
        # A rewritten (shorter) file must not be read from the stale
        # offset; the tailer starts over and dedup absorbs the replays.
        write_stream(stream, [frame_at(1, 2)], site=1, role="client")
        by_site, _ = tailer.poll()
        assert [f.seq for f in by_site[1]] == [2]

    def test_ingest_dedupes_against_file_frames(self, tmp_path):
        write_stream(tmp_path / "telemetry_1.jsonl", [frame_at(1, 0)],
                     site=1, role="client")
        tailer = TelemetryTailer(tmp_path)
        tailer.poll()
        assert tailer.ingest(frame_at(1, 0)) is False  # seen on disk
        assert tailer.ingest(frame_at(1, 1)) is True   # fresh via UDP
        assert tailer.ingest(frame_at(1, 1)) is False  # duplicate datagram
        assert tailer.frames_from_ingest == 1
        # And the file path dedupes against ingest in return.
        with (tmp_path / "telemetry_1.jsonl").open("a") as fh:
            fh.write(frame_at(1, 1).to_json() + "\n")
        by_site, _ = tailer.poll()
        assert by_site == {}


class TestFollow:
    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([0.0, 5.0, 10.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(100)), width=12)) == 12

    def test_follow_piped_emits_plain_deterministic_lines(self, tmp_path):
        write_stream(tmp_path / "telemetry_0.jsonl",
                     [frame_at(0, 0, ops_executed=4)])
        lines: list[str] = []
        code = run_monitor(tmp_path, once=True, follow=True, tty=False,
                           expect_sites=2, emit=lines.append)
        assert code == 0
        assert len(lines) == 1
        assert "\x1b" not in lines[0]  # no ANSI when piped
        assert "sites=1/2" in lines[0]

    def test_follow_tty_renders_dashboard(self, tmp_path):
        write_stream(
            tmp_path / "telemetry_0.jsonl",
            [frame_at(0, 0, ops_executed=4, e2e_p95_ms=2.5, promoted=1,
                      degraded_queued=3)],
        )
        frames: list[str] = []
        code = run_monitor(tmp_path, once=True, follow=True, tty=True,
                           expect_sites=2, emit=frames.append)
        assert code == 0
        screen = frames[0]
        assert screen.startswith("\x1b[H\x1b[J")  # home + clear redraw
        assert "site 0" in screen
        assert "e2e" in screen and "2.5ms" in screen
        assert "PROMOTED" in screen
        assert "DEGRADED(3)" in screen
        assert any(block in screen for block in "▁▂▃▄▅▆▇█")

    def test_udp_frames_reach_the_view_and_the_registry(self, tmp_path):
        # No files at all: every frame arrives through the injected
        # beacon receiver, and the artifact's counters prove the path.
        from repro.net.beacon import BeaconReceiver, BeaconSender
        from repro.net.wire import encode_telemetry_frame

        with BeaconReceiver() as receiver:
            with BeaconSender(receiver.host, receiver.port) as sender:
                for seq in range(2):
                    sender.send(encode_telemetry_frame(
                        frame_at(1, seq, ops_executed=seq)))
                # Duplicate of seq 1, as if gossip delivered it too.
                sender.send(encode_telemetry_frame(
                    frame_at(1, 1, ops_executed=1)))
            lines: list[str] = []
            code = run_monitor(tmp_path, once=True, beacon=receiver,
                               emit=lines.append)
        assert code == 0
        assert len(lines) == 1 and "exec=1" in lines[0]
        records = [json.loads(line) for line
                   in (tmp_path / "monitor.jsonl").read_text().splitlines()[1:]]
        metrics = [r for r in records if r["rec"] == "metrics"][0]
        assert metrics["counters"]["monitor.frames_from_udp"] == 2
        assert metrics["counters"]["monitor.frames_from_files"] == 0
        assert metrics["counters"]["monitor.udp_datagrams"] == 3

    def test_e2e_gauge_flows_into_snapshot_and_registry(self, tmp_path):
        write_stream(
            tmp_path / "telemetry_0.jsonl",
            [frame_at(0, 0, e2e_p95_ms=1.5), frame_at(0, 1, e2e_p95_ms=4.0)],
        )
        write_stream(tmp_path / "telemetry_1.jsonl", [frame_at(1, 0)],
                     site=1, role="client")
        by_site, _ = scan_dir(tmp_path)
        snapshot = aggregate(by_site)
        assert snapshot.e2e_p95_ms == 4.0  # worst latest per-site gauge
        assert "e2e=4.0ms" in snapshot.line()
        merged = merged_registry(by_site)
        hist = merged.histograms()["telemetry.e2e_p95_ms"]
        assert sorted(hist.values) == [1.5, 4.0]  # None gauge not observed
