"""Unit tests for the UDP telemetry sideband (repro.net.beacon)."""

from repro.net.beacon import BeaconReceiver, BeaconSender
from repro.net.wire import encode_telemetry_frame
from repro.obs.telemetry import TelemetryFrame


def make_frame(site=1, seq=0, **overrides):
    fields = dict(
        time=1.5, site=site, seq=seq, role="client", ops_generated=3,
        ops_executed=7, holdback_depth=1, holdback_high_water=2,
        inflight=0, retransmits=0, storage_ints=3, queue_depth=0,
        epoch=0, elected=0, promoted=0, resynced=0, degraded_queued=0,
        digest="abc123", e2e_p95_ms=4.25,
    )
    fields.update(overrides)
    return TelemetryFrame(**fields)


class TestBeaconRoundTrip:
    def test_frames_arrive_decoded(self):
        with BeaconReceiver() as receiver:
            with BeaconSender(receiver.host, receiver.port) as sender:
                frames = [make_frame(seq=i) for i in range(3)]
                for tframe in frames:
                    assert sender.send(encode_telemetry_frame(tframe))
                assert sender.sent == 3
            got = receiver.drain()
        assert got == frames
        assert receiver.received == 3
        assert receiver.rejected == 0

    def test_optional_gauge_absent_survives(self):
        with BeaconReceiver() as receiver:
            with BeaconSender(receiver.host, receiver.port) as sender:
                sender.send(encode_telemetry_frame(
                    make_frame(e2e_p95_ms=None)))
            (got,) = receiver.drain()
        assert got.e2e_p95_ms is None

    def test_drain_on_empty_socket(self):
        with BeaconReceiver() as receiver:
            assert receiver.drain() == []

    def test_garbage_datagrams_rejected_not_fatal(self):
        with BeaconReceiver() as receiver:
            with BeaconSender(receiver.host, receiver.port) as sender:
                sender.send(b"")  # zero-length datagrams are dropped by
                sender.send(b"not a telemetry frame")
                sender.send(b"\x00\x01\x02")  # wrong tag byte
                sender.send(encode_telemetry_frame(make_frame(seq=9)))
            got = receiver.drain()
        assert [f.seq for f in got] == [9]
        # The empty datagram may not traverse loopback on every OS, so
        # bound the reject count instead of pinning it.
        assert receiver.rejected >= 2

    def test_truncated_frame_rejected(self):
        with BeaconReceiver() as receiver:
            with BeaconSender(receiver.host, receiver.port) as sender:
                body = encode_telemetry_frame(make_frame())
                sender.send(body[: len(body) // 2])
            assert receiver.drain() == []
            assert receiver.rejected == 1


class TestBeaconLifecycle:
    def test_sender_never_raises_after_close(self):
        sender = BeaconSender("127.0.0.1", 9)  # discard port
        sender.close()
        assert sender.send(b"late") is False
        sender.close()  # idempotent

    def test_sender_swallows_unreachable(self):
        # No receiver bound: send() must not raise, only report False or
        # fire-and-forget True (loopback accepts datagrams to dead
        # ports; the ICMP error surfaces later, if ever).
        with BeaconSender("127.0.0.1", 1) as sender:
            sender.send(b"x" * 32)  # must not raise

    def test_receiver_close_idempotent(self):
        receiver = BeaconReceiver()
        receiver.close()
        receiver.close()
        assert receiver.drain() == []

    def test_receiver_picks_ephemeral_port(self):
        with BeaconReceiver() as a, BeaconReceiver() as b:
            assert a.port != 0
            assert a.port != b.port
