"""Unit tests for session recording / replay (repro.editor.recorder)."""

import io

import pytest

from repro.editor.recorder import (
    RecordingError,
    SessionRecorder,
    TraceEntry,
    load_trace,
    op_from_json,
    op_to_json,
    replay,
)
from repro.editor.star import StarSession
from repro.ot.operations import Delete, Identity, Insert, OperationGroup
from repro.workloads.random_session import RandomSessionConfig, drive_star_session


class TestOpSerialisation:
    @pytest.mark.parametrize(
        "op",
        [
            Insert("héllo", 3),
            Delete(4, 0),
            Identity(),
            OperationGroup((Delete(1, 0), Insert("x", 2))),
        ],
    )
    def test_roundtrip(self, op):
        assert op_from_json(op_to_json(op)) == op

    def test_unknown_type_rejected(self):
        with pytest.raises(RecordingError):
            op_from_json({"type": "paint"})
        with pytest.raises(RecordingError):
            op_to_json("nope")  # type: ignore[arg-type]


class TestTraceEntry:
    def test_json_roundtrip(self):
        entry = TraceEntry(site=2, time=1.5, op_id="O2", op=Delete(3, 2))
        assert TraceEntry.from_json(entry.to_json()) == entry

    def test_malformed_line_rejected(self):
        with pytest.raises(RecordingError):
            TraceEntry.from_json("{not json")
        with pytest.raises(RecordingError):
            TraceEntry.from_json('{"site": 1}')


class TestRecordReplay:
    def run_recorded(self, seed=3):
        config = RandomSessionConfig(n_sites=3, ops_per_site=5, seed=seed)
        session = StarSession(3, initial_state=config.initial_document)
        recorder = SessionRecorder.attach(session)
        drive_star_session(session, config)
        session.run()
        assert session.converged()
        return session, recorder

    def test_recorder_captures_all_originals(self):
        session, recorder = self.run_recorded()
        assert len(recorder.entries) == 15
        assert {entry.site for entry in recorder.entries} == {1, 2, 3}

    def test_dump_and_load_roundtrip(self):
        _, recorder = self.run_recorded()
        buffer = io.StringIO()
        lines = recorder.dump(buffer)
        assert lines == 16  # header + 15 ops
        buffer.seek(0)
        header, entries = load_trace(buffer)
        assert header["n_sites"] == 3
        assert len(entries) == 15

    def test_replay_reproduces_final_state_exactly(self):
        session, recorder = self.run_recorded()
        buffer = io.StringIO()
        recorder.dump(buffer)
        buffer.seek(0)
        header, entries = load_trace(buffer)
        replayed = replay(header, entries)
        assert replayed.converged()
        assert replayed.documents() == session.documents()
        # timestamps identical too: same broadcasts in the same order
        assert [
            (op_id, dest, ts.as_paper_list())
            for op_id, dest, ts in replayed.notifier.broadcast_log
        ] == [
            (op_id, dest, ts.as_paper_list())
            for op_id, dest, ts in session.notifier.broadcast_log
        ]

    def test_empty_trace_rejected(self):
        with pytest.raises(RecordingError):
            load_trace(io.StringIO(""))

    def test_unknown_format_rejected(self):
        with pytest.raises(RecordingError):
            load_trace(io.StringIO('{"format": "v999"}\n'))
