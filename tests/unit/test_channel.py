"""Unit tests for FIFO channels and latency models (repro.net.channel)."""

import random

import pytest

from repro.net.channel import (
    FIFOChannel,
    FixedLatency,
    JitterLatency,
    UniformLatency,
)
from repro.net.simulator import Simulator
from repro.net.transport import Envelope


def make_channel(sim, latency, received):
    return FIFOChannel(sim, 1, 2, latency, received.append)


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(0.25).sample() == 0.25

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_in_range_and_seeded(self):
        model = UniformLatency(0.1, 0.5, random.Random(5))
        samples = [model.sample() for _ in range(100)]
        assert all(0.1 <= s < 0.5 for s in samples)
        model2 = UniformLatency(0.1, 0.5, random.Random(5))
        assert samples == [model2.sample() for _ in range(100)]

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_jitter_positive_and_seeded(self):
        model = JitterLatency(0.05, 0.6, random.Random(1))
        samples = [model.sample() for _ in range(50)]
        assert all(s > 0 for s in samples)
        model2 = JitterLatency(0.05, 0.6, random.Random(1))
        assert samples == [model2.sample() for _ in range(50)]

    def test_jitter_rejects_nonpositive_median(self):
        with pytest.raises(ValueError):
            JitterLatency(0.0)


class TestFIFOChannel:
    def test_delivers_payload(self):
        sim = Simulator()
        received = []
        channel = make_channel(sim, FixedLatency(0.5), received)
        channel.send(Envelope(1, 2, "hello"))
        sim.run()
        assert [e.payload for e in received] == ["hello"]
        assert sim.now == 0.5

    def test_fifo_under_adversarial_latency(self):
        """A latency model that *shrinks* over time must not reorder."""

        class ShrinkingLatency(FixedLatency):
            def __init__(self):
                super().__init__(0.0)
                self.next = 10.0

            def sample(self):
                self.next = max(self.next - 3.0, 0.1)
                return self.next

        sim = Simulator()
        received = []
        channel = FIFOChannel(sim, 1, 2, ShrinkingLatency(), received.append)
        for i in range(6):
            channel.send(Envelope(1, 2, i))
        sim.run()
        assert [e.payload for e in received] == list(range(6))
        assert channel.fifo_respected()

    def test_fifo_with_random_jitter(self):
        sim = Simulator()
        received = []
        channel = make_channel(sim, JitterLatency(0.05, 1.0, random.Random(3)), received)
        sender = []

        def send_burst(k):
            channel.send(Envelope(1, 2, k))
            sender.append(k)
            if k < 30:
                sim.schedule_after(0.01, lambda: send_burst(k + 1))

        sim.schedule(0.0, lambda: send_burst(0))
        sim.run()
        assert [e.payload for e in received] == sender
        assert channel.fifo_respected()

    def test_wrong_addressing_rejected(self):
        sim = Simulator()
        channel = make_channel(sim, FixedLatency(0.1), [])
        with pytest.raises(ValueError):
            channel.send(Envelope(2, 1, "backwards"))

    def test_stats_accumulate(self):
        sim = Simulator()
        channel = make_channel(sim, FixedLatency(0.1), [])
        channel.send(Envelope(1, 2, "abc", timestamp_bytes=8))
        channel.send(Envelope(1, 2, "de", timestamp_bytes=8))
        sim.run()
        assert channel.stats.messages == 2
        assert channel.stats.timestamp_bytes == 16
        # payload "abc" = 4 bytes (utf-8 + tag), "de" = 3
        assert channel.stats.payload_bytes == 7
        assert channel.stats.total_bytes == 16 + 7 + 2 * 8
