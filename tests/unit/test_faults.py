"""Unit tests for the seeded fault-injection layer (repro.net.faults)."""

import pytest

from repro.net.channel import FixedLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan, FaultyChannel
from repro.net.simulator import Simulator
from repro.net.transport import Envelope


def build_channel(faults, seed=0, source=0, dest=1):
    plan = FaultPlan(seed=seed, default=faults)
    sim = Simulator()
    delivered = []
    channel = FaultyChannel(
        sim,
        source,
        dest,
        FixedLatency(0.01),
        delivered.append,
        faults=plan.faults_for(source, dest),
        rng=plan.rng_for(source, dest),
    )
    return sim, channel, delivered


class TestValidation:
    def test_drop_p_range(self):
        with pytest.raises(ValueError):
            ChannelFaults(drop_p=1.0)
        with pytest.raises(ValueError):
            ChannelFaults(drop_p=-0.1)

    def test_dup_p_range(self):
        with pytest.raises(ValueError):
            ChannelFaults(dup_p=1.5)

    def test_outage_windows(self):
        with pytest.raises(ValueError):
            ChannelFaults(outages=((2.0, 1.0),))
        with pytest.raises(ValueError):
            ChannelFaults(outages=((-1.0, 1.0),))

    def test_crash_validation(self):
        with pytest.raises(ValueError):
            ClientCrash(site=0, at=1.0, restart_at=2.0)  # the notifier cannot crash
        with pytest.raises(ValueError):
            ClientCrash(site=1, at=2.0, restart_at=1.0)

    def test_in_outage_is_half_open(self):
        faults = ChannelFaults(outages=((1.0, 2.0),))
        assert not faults.in_outage(0.5)
        assert faults.in_outage(1.0)
        assert faults.in_outage(1.999)
        assert not faults.in_outage(2.0)


class TestFaultPlan:
    def test_per_channel_override(self):
        special = ChannelFaults(drop_p=0.5)
        plan = FaultPlan(per_channel={(0, 2): special})
        assert plan.faults_for(0, 2) is special
        assert plan.faults_for(0, 1) is plan.default

    def test_rng_deterministic_and_per_channel(self):
        plan_a = FaultPlan(seed=42)
        plan_b = FaultPlan(seed=42)
        draws_a = [plan_a.rng_for(0, 1).random() for _ in range(5)]
        draws_b = [plan_b.rng_for(0, 1).random() for _ in range(5)]
        assert draws_a == draws_b
        # distinct channels (and directions) decorrelate
        assert plan_a.rng_for(0, 1).random() != plan_a.rng_for(1, 0).random()
        assert plan_a.rng_for(0, 1).random() != plan_a.rng_for(0, 2).random()

    def test_channel_factory_builds_faulty_channels(self):
        plan = FaultPlan(seed=1, default=ChannelFaults(drop_p=0.3))
        sim = Simulator()
        channel = plan.channel_factory()(sim, 0, 1, FixedLatency(0.01), lambda e: None)
        assert isinstance(channel, FaultyChannel)
        assert channel.faults.drop_p == 0.3


class TestFaultyChannel:
    def test_lossless_plan_delivers_everything(self):
        sim, channel, delivered = build_channel(ChannelFaults())
        for _ in range(20):
            channel.send(Envelope(0, 1, None))
        sim.run()
        assert len(delivered) == 20
        assert channel.fault_stats.dropped == 0
        assert channel.fault_stats.duplicated == 0

    def test_drops_are_counted_and_seeded(self):
        results = []
        for _ in range(2):
            sim, channel, delivered = build_channel(ChannelFaults(drop_p=0.5), seed=9)
            for _ in range(100):
                channel.send(Envelope(0, 1, None))
            sim.run()
            results.append((len(delivered), channel.fault_stats.dropped))
        assert results[0] == results[1]  # same seed, same fault sequence
        delivered_n, dropped = results[0]
        assert dropped > 0
        assert delivered_n + dropped == 100
        # wire accounting charges the send either way (the sender paid)
        assert channel.stats.messages == 100

    def test_duplicates_delivered_in_order(self):
        sim, channel, delivered = build_channel(ChannelFaults(dup_p=1.0))
        ids = []
        for _ in range(5):
            env = Envelope(0, 1, None)
            channel.send(env)
            ids.append(env.message_id)
        sim.run()
        assert channel.fault_stats.duplicated == 5
        assert [e.message_id for e in delivered] == [i for i in ids for _ in range(2)]
        assert channel.fifo_respected()

    def test_outage_loses_everything_inside_the_window(self):
        sim, channel, delivered = build_channel(
            ChannelFaults(outages=((1.0, 2.0),))
        )
        for at in (0.5, 1.5, 2.5):
            sim.schedule(at, lambda: channel.send(Envelope(0, 1, None)))
        sim.run()
        assert len(delivered) == 2
        assert channel.fault_stats.outage_dropped == 1

    def test_fifo_respected_despite_drops(self):
        """Drops create gaps, not reorderings: the delivered stream must
        still be a prefix-order subsequence, so the FIFO audit holds."""
        sim, channel, delivered = build_channel(ChannelFaults(drop_p=0.4), seed=3)
        for _ in range(50):
            channel.send(Envelope(0, 1, None))
        sim.run()
        assert channel.fifo_respected()
        assert channel.fault_stats.dropped > 0
        delivered_ids = [e.message_id for e in delivered]
        assert delivered_ids == sorted(delivered_ids)
