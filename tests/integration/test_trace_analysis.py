"""Trace-level causality against the ground-truth oracle.

A traced session must yield a happens-before relation -- reconstructed
purely from the recorded :class:`~repro.obs.TraceEvent` stream -- that
matches :mod:`repro.analysis.causality` exactly, pair by pair, on clean
networks, lossy networks, and crash/recovery runs; and every formula
(5)/(7) verdict recorded during the run must agree with the trace
relation.
"""

from __future__ import annotations

import random

import pytest

from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan
from repro.obs import (
    TraceCausality,
    Tracer,
    cross_check_causality,
    latency_histograms,
    verify_check_records,
)
from repro.workloads.random_session import RandomSessionConfig, drive_star_session


def latency_factory(seed):
    def build(src, dst):
        return UniformLatency(0.02, 0.2, random.Random(seed * 1009 + src * 13 + dst))

    return build


def run_traced_session(plan=None, n_sites=4, ops_per_site=8, workload_seed=3):
    tracer = Tracer()
    session = StarSession(
        n_sites,
        latency_factory=latency_factory(plan.seed if plan else workload_seed),
        verify_with_oracle=True,
        fault_plan=plan,
        tracer=tracer,
    )
    drive_star_session(
        session,
        RandomSessionConfig(
            n_sites=n_sites, ops_per_site=ops_per_site, seed=workload_seed
        ),
    )
    session.run()
    assert session.converged() and session.quiescent()
    return session, tracer


class TestCleanSession:
    def test_happens_before_matches_oracle_exactly(self):
        session, tracer = run_traced_session()
        report = cross_check_causality(tracer.events, session.event_log)
        assert report.mode == "causality-oracle"
        assert report.ok, report.summary()
        assert report.pairs_checked == report.n_ops * (report.n_ops - 1)

    def test_formula_verdicts_agree_with_trace(self):
        session, tracer = run_traced_session()
        causality = TraceCausality(tracer.events)
        assert verify_check_records(causality, session.all_checks()) == []

    def test_notifier_transform_lineage(self):
        _, tracer = run_traced_session(ops_per_site=4)
        causality = TraceCausality(tracer.events)
        transformed = [op for op in causality.ops() if op.endswith("'")]
        assert transformed, "the notifier emitted no transformed operations"
        for op in transformed:
            original = causality.original_op(op)
            assert original == op[:-1]
            # The original always happened before its transformed form.
            assert causality.happened_before(original, op)
            assert not causality.concurrent(original, op)

    def test_latency_histograms_cover_every_executing_site(self):
        session, tracer = run_traced_session(n_sites=3)
        histograms = latency_histograms(tracer.events)
        assert set(histograms) == {0, 1, 2, 3}
        for hist in histograms.values():
            assert hist.count > 0
            assert hist.minimum > 0.0  # the network has nonzero latency


class TestFaultySession:
    def test_lossy_network_trace_still_matches_oracle(self):
        """20% loss + 5% duplication: retransmissions and hold-backs in
        the trace must not perturb the reconstructed causal relation."""
        plan = FaultPlan(seed=7, default=ChannelFaults(drop_p=0.2, dup_p=0.05))
        session, tracer = run_traced_session(plan=plan, ops_per_site=10)
        assert tracer.metrics.counter("trace.retransmitted") > 0
        report = cross_check_causality(tracer.events, session.event_log)
        assert report.mode == "causality-oracle"
        assert report.ok, report.summary()
        causality = TraceCausality(tracer.events)
        assert verify_check_records(causality, session.all_checks()) == []

    def test_crash_recovery_trace_matches_vector_clock_relation(self):
        """A crash/restart run switches the ground truth to the oracle's
        vector-clock half (the snapshot carries causality the event DAG
        does not model) and must still match exactly."""
        plan = FaultPlan(
            seed=7,
            default=ChannelFaults(drop_p=0.2, dup_p=0.05),
            crashes=(ClientCrash(site=2, at=3.0, restart_at=5.0),),
        )
        session, tracer = run_traced_session(plan=plan, ops_per_site=10)
        from repro.obs import TraceEventKind

        assert len(tracer.by_kind(TraceEventKind.CRASHED)) == 1
        assert len(tracer.by_kind(TraceEventKind.RECOVERED)) == 1
        assert len(tracer.by_kind(TraceEventKind.SNAPSHOT)) == 1
        report = cross_check_causality(tracer.events, session.event_log)
        assert report.mode == "vector-clock"
        assert report.ok, report.summary()
        causality = TraceCausality(tracer.events)
        assert verify_check_records(causality, session.all_checks()) == []

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_seed_sweep(self, seed):
        plan = FaultPlan(seed=seed, default=ChannelFaults(drop_p=0.15, dup_p=0.05))
        session, tracer = run_traced_session(
            plan=plan, ops_per_site=6, workload_seed=seed
        )
        report = cross_check_causality(tracer.events, session.event_log)
        assert report.ok, report.summary()


class TestSessionSurface:
    def test_session_exposes_trace_and_run_metrics(self):
        session, tracer = run_traced_session(n_sites=3, ops_per_site=4)
        assert list(session.trace_events()) == tracer.events
        assert tracer.metrics.counter("session.runs") == 1
        assert tracer.metrics.counter("session.sim_events") > 0

    def test_untraced_session_has_no_events(self):
        session = StarSession(2)
        assert session.tracer is None
        assert list(session.trace_events()) == []
