"""End-to-end notifier failover: the star survives losing its centre.

The acceptance scenario of the failover subsystem: the notifier crashes
permanently mid-workload, a surviving client detects the silence
(retransmit-budget exhaustion confirmed by a bounded liveness probe),
is elected successor, reconstructs the notifier state from per-client
contributions, and re-admits every survivor under notifier epoch 1 --
after which the session must converge with every compressed concurrency
verdict matching the full-vector-clock oracle, including across the
epoch boundary in the recorded trace.
"""

import random

import pytest

from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan, NotifierCrash
from repro.net.reliability import ReliabilityConfig
from repro.obs import TraceCausality, cross_check_causality, verify_check_records
from repro.obs.tracer import Tracer
from repro.ot.operations import Insert

# A small budget so detection fires in seconds of virtual time instead
# of the production default's ~minute.
FAST_DETECT = ReliabilityConfig(max_retries=4)


def latency_factory(src, dst):
    return UniformLatency(0.02, 0.15, random.Random(src * 13 + dst * 101))


def failover_session(standby=None, crashes=(), crash_at=5.0, tracer=None):
    plan = FaultPlan(
        notifier_crash=NotifierCrash(at=crash_at), crashes=tuple(crashes)
    )
    return StarSession(
        3,
        latency_factory=latency_factory,
        verify_with_oracle=True,
        fault_plan=plan,
        reliability=FAST_DETECT,
        standby_site=standby,
        tracer=tracer,
    )


def drive_across_the_crash(session):
    """Three edits fully settled before the crash, three generated after."""
    for at, (site, char) in enumerate(
        [(1, "a"), (2, "b"), (3, "c"), (1, "d"), (2, "e"), (3, "f")], start=1
    ):
        # at 1..3 pre-crash, 6..8 post-crash (the crash is at t=5.0)
        session.generate_at(site, Insert(char, 0), at=float(at if at <= 3 else at + 2))
    session.run()


class TestFailoverAcceptance:
    def test_standby_promotion_converges_with_oracle(self):
        tracer = Tracer()
        session = failover_session(standby=1, tracer=tracer)
        drive_across_the_crash(session)

        assert session.quiescent()
        assert session.converged(), session.documents()
        # The centre role moved to the warm standby under epoch 1.
        assert session.promoted_notifier is not None
        assert session.promoted_notifier.notifier_epoch == 1
        assert session.client(1).promoted
        assert len(session.endpoints()) == 3  # new centre + 2 survivors
        # No operation was lost across the failover: every insert from
        # both sides of the crash is in the converged document.
        assert sorted(session.documents()[0]) == list("abcdef")
        report = session.fault_report()
        assert report.promotions == 1
        assert report.handoffs == 2  # both survivors re-homed
        assert report.give_ups >= 1  # the detection signal actually fired
        assert report.probes_sent >= 1  # ... and was probe-confirmed
        assert session.reliable_delivery_in_order()

    def test_trace_cross_check_spans_the_epoch_boundary(self):
        tracer = Tracer()
        session = failover_session(standby=1, tracer=tracer)
        drive_across_the_crash(session)

        causality = TraceCausality(tracer.events)
        report = cross_check_causality(causality, session.event_log)
        assert report.ok, report.summary()
        assert verify_check_records(causality, session.all_checks()) == []

    def test_without_standby_the_lowest_live_site_wins(self):
        session = failover_session(standby=None)
        drive_across_the_crash(session)
        assert session.converged(), session.documents()
        assert session.client(1).promoted
        assert session.fault_report().promotions == 1

    def test_standby_preference_overrides_lowest_id(self):
        session = failover_session(standby=2)
        drive_across_the_crash(session)
        assert session.converged(), session.documents()
        assert session.client(2).promoted
        assert not session.client(1).promoted

    def test_detection_is_activity_triggered(self):
        """A crash after the last settled edit is never even noticed."""
        session = failover_session(standby=1, crash_at=50.0)
        for at, (site, char) in enumerate([(1, "a"), (2, "b")], start=1):
            session.generate_at(site, Insert(char, 0), at=float(at))
        session.run()
        assert session.converged()
        assert session.promoted_notifier is None
        assert session.fault_report().promotions == 0


class TestFailoverMidResync:
    def test_client_resyncing_from_the_dead_centre_completes(self):
        """A client whose crash-recovery resync targets the old notifier
        must end up served by the successor -- no duplicate, no loss."""
        tracer = Tracer()
        session = failover_session(
            standby=1,
            crashes=[ClientCrash(site=3, at=2.0, restart_at=4.0)],
            crash_at=3.0,
            tracer=tracer,
        )
        # One edit before anything fails, one while site 3 is down, one
        # from the recovered site 3 after the new centre is in place.
        session.generate_at(1, Insert("a", 0), at=1.0)
        session.generate_at(2, Insert("b", 0), at=2.5)
        session.generate_at(3, Insert("c", 0), at=40.0)
        session.run()

        assert session.quiescent()
        assert session.converged(), session.documents()
        assert sorted(session.documents()[0]) == list("abc")
        report = session.fault_report()
        assert report.promotions == 1
        assert report.recoveries == 1  # site 3's restart completed
        assert report.resyncs_served >= 1
        causality = TraceCausality(tracer.events)
        assert cross_check_causality(causality, session.event_log).ok
        assert session.reliable_delivery_in_order()


class TestFailoverGuards:
    def test_standby_without_reliability_is_rejected(self):
        with pytest.raises(ValueError):
            StarSession(3, standby_site=1)

    def test_standby_site_must_exist(self):
        with pytest.raises(ValueError):
            StarSession(3, reliability=FAST_DETECT, standby_site=9)

    def test_notifier_crash_without_reliability_cannot_be_planned(self):
        # A notifier crash in the plan implies a fault plan, which in
        # turn forces the reliability protocol on -- so this constructs.
        plan = FaultPlan(notifier_crash=NotifierCrash(at=1.0))
        session = StarSession(2, fault_plan=plan)
        assert session.reliability is not None
