"""Integration tests for the fully-distributed mesh baseline."""

import random

import pytest

from repro.analysis.consistency import check_divergence
from repro.editor.mesh import MeshOp, MeshSession, got_transform
from repro.net.channel import UniformLatency
from repro.ot.operations import Delete, Insert
from repro.workloads.random_session import RandomSessionConfig, drive_mesh_session


def uniform_latencies(seed):
    def factory(src, dst):
        return UniformLatency(0.01, 1.2, random.Random(seed * 17 + src * 3 + dst))

    return factory


class TestBasicMesh:
    def test_paper_pair_converges_with_intention(self):
        session = MeshSession(2, initial_document="ABCDE")
        session.generate_at(0, Insert("12", 1), at=1.0)
        session.generate_at(1, Delete(3, 2), at=1.0)
        session.run()
        assert session.converged()
        assert session.documents()[0] == "A12B"

    def test_sequential_edits(self):
        session = MeshSession(3, initial_document="")
        session.generate_at(0, Insert("abc", 0), at=1.0)
        session.generate_at(1, Insert("XY", 1), at=10.0)
        session.generate_at(2, Delete(1, 0), at=20.0)
        session.run()
        assert session.converged()
        assert session.documents()[0] == "XYbc"

    def test_needs_two_sites(self):
        with pytest.raises(ValueError):
            MeshSession(1)


class TestCausalDelivery:
    def test_out_of_order_messages_held_back(self):
        """An op that causally depends on an undelivered op must wait."""
        session = MeshSession(3, initial_document="base")

        # site 0 edits; site 1 sees it and edits on top; site 2 has a slow
        # channel from site 0, so site 1's op may arrive at site 2 first.
        def slow_from_0(src, dst):
            if src == 0 and dst == 2:
                return UniformLatency(5.0, 5.1, random.Random(1))
            return UniformLatency(0.1, 0.2, random.Random(src * 3 + dst))

        session = MeshSession(3, initial_document="base", latency_factory=slow_from_0)
        session.generate_at(0, Insert("!", 4), at=1.0)
        session.generate_at(1, Insert("?", 5), at=3.0)  # after seeing "!"
        session.run()
        assert session.quiescent()
        assert session.converged()
        assert session.documents()[0] == "base!?"

    def test_vector_clocks_on_wire_are_full_size(self):
        session = MeshSession(4, initial_document="x")
        session.generate_at(0, Insert("a", 0), at=1.0)
        session.run()
        stats = session.wire_stats()
        assert stats.messages == 3
        assert stats.timestamp_bytes == 3 * 16  # N=4 -> 16 bytes each


class TestMeshConvergence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_sessions_converge(self, seed):
        config = RandomSessionConfig(n_sites=3, ops_per_site=5, seed=seed)
        session = MeshSession(3, initial_document=config.initial_document,
                              latency_factory=uniform_latencies(seed))
        drive_mesh_session(session, config)
        session.run()
        assert session.quiescent()
        report = check_divergence(session.documents())
        assert not report.diverged, report.summary()

    def test_four_sites(self):
        config = RandomSessionConfig(n_sites=4, ops_per_site=4, seed=13)
        session = MeshSession(4, initial_document=config.initial_document,
                              latency_factory=uniform_latencies(13))
        drive_mesh_session(session, config)
        session.run()
        assert session.converged()

    def test_all_sites_deliver_everything(self):
        config = RandomSessionConfig(n_sites=3, ops_per_site=4, seed=2)
        session = MeshSession(3, initial_document=config.initial_document,
                              latency_factory=uniform_latencies(2))
        drive_mesh_session(session, config)
        session.run()
        for site in session.sites:
            assert len(site.log) == 12


class TestLogCompaction:
    def run_two_rounds(self, seed=0):
        config = RandomSessionConfig(n_sites=3, ops_per_site=4, seed=seed)
        session = MeshSession(
            3,
            initial_document=config.initial_document,
            latency_factory=uniform_latencies(seed),
        )
        drive_mesh_session(session, config)
        session.run()
        # a second round of edits carries the stability evidence around
        for s in range(3):
            session.sim.schedule(
                session.sim.now + 1 + s * 0.1,
                lambda s=s: session.sites[s].generate(Insert("z", 0)),
            )
        session.run()
        return session

    def test_stable_prefix_folds(self):
        session = self.run_two_rounds()
        folded = [site.compact() for site in session.sites]
        # all 12 first-round ops are stable and dominated by round two
        assert folded == [12, 12, 12]
        # only the three second-round ops remain in the logs
        assert all(len(site.log) == 3 for site in session.sites)
        assert all(site.compacted_ops == 12 for site in session.sites)
        assert session.converged()

    def test_compaction_preserves_document(self):
        session = self.run_two_rounds(seed=5)
        docs_before = session.documents()
        for site in session.sites:
            site.compact()
        assert session.documents() == docs_before

    def test_editing_continues_after_compaction(self):
        session = self.run_two_rounds(seed=2)
        for site in session.sites:
            site.compact()
        for s in range(3):
            session.sim.schedule(
                session.sim.now + 1 + s * 0.05,
                lambda s=s: session.sites[s].generate(Insert("w", s)),
            )
        session.run()
        assert session.converged()

    def test_nothing_stable_nothing_folds(self):
        """Before any second-round evidence, peers' knowledge is stale."""
        config = RandomSessionConfig(n_sites=3, ops_per_site=2, seed=1)
        session = MeshSession(
            3,
            initial_document=config.initial_document,
            latency_factory=uniform_latencies(1),
        )
        drive_mesh_session(session, config)
        session.run()
        # the very last ops cannot be stable: no site has spoken since
        assert all(site.compact() < len(site.delivered_ids) for site in session.sites)
        assert session.converged()

    def test_stability_vector_monotone_and_bounded(self):
        session = self.run_two_rounds(seed=3)
        for site in session.sites:
            stable = site.stability_vector()
            assert site.vc.dominates(stable)


class TestGOTTransform:
    def test_no_concurrent_prefix_returns_original(self):
        from repro.clocks.vector import VectorClock

        a = MeshOp(Insert("x", 0), VectorClock.of([1, 0]), 0, 1)
        b = MeshOp(Insert("y", 5), VectorClock.of([1, 1]), 1, 1)  # saw a
        assert got_transform(b, [a], [a.op]) == b.op

    def test_fully_concurrent_prefix_inclusion_transforms(self):
        from repro.clocks.vector import VectorClock

        a = MeshOp(Insert("x", 0), VectorClock.of([1, 0]), 0, 1)
        b = MeshOp(Insert("y", 3), VectorClock.of([0, 1]), 1, 1)
        transformed = got_transform(b, [a], [a.op])
        assert transformed == Insert("y", 4)

    def test_mixed_case_excludes_then_includes(self):
        """c depends on b but not on a; a sits before b in the order."""
        from repro.clocks.vector import VectorClock

        doc = "0123456789"
        a = MeshOp(Insert("A", 0), VectorClock.of([1, 0, 0]), 0, 1)
        b = MeshOp(Delete(2, 4), VectorClock.of([0, 1, 0]), 1, 1)
        # c generated at site 2 having seen b only (doc "01236789")
        c = MeshOp(Insert("C", 4), VectorClock.of([0, 1, 1]), 2, 1)
        b_form = got_transform(b, [a], [a.op])  # b after a: Delete(2, 5)
        c_form = got_transform(c, [a, b], [a.op, b_form])
        # replay: doc -> a -> "A0123456789" -> b_form -> "A01236789"
        replay = b_form.apply(a.op.apply(doc))
        assert c_form.apply(replay) == "A0123C6789"
