"""FIG3: the paper's Fig. 3 + Section 5 walkthrough, value-for-value.

Replays the scripted scenario with the compressed-vector-clock scheme
enabled and asserts EVERY number the paper prints:

* the clients' operation timestamps ([0,1], [0,1], [1,1], [1,2]);
* all eight per-destination broadcast timestamps of the notifier;
* all four full ``SV_0`` snapshots timestamping buffered operations;
* the final history-buffer contents of every site;
* all 21 concurrency verdicts of the walkthrough;
* convergence of all four replicas (with oracle verification of every
  verdict against full vector clocks while the session runs).
"""

import pytest

from repro.analysis.causality import CausalityOracle
from repro.editor.star import StarSession
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    FIG3_EXPECTED,
    fig3_script,
    fig_latency_factory,
)


@pytest.fixture(scope="module")
def session() -> StarSession:
    sess = StarSession(
        n_sites=3,
        initial_state=FIG2_INITIAL_DOCUMENT,
        latency_factory=fig_latency_factory,
        verify_with_oracle=True,
    )
    for item in fig3_script():
        sess.generate_at(item.site, item.op, item.time, op_id=item.op_id)
    sess.run()
    assert sess.quiescent()
    return sess


class TestClientTimestamps:
    def test_original_operation_timestamps(self, session):
        expected = FIG3_EXPECTED["client_timestamps"]
        seen = {}
        for client in session.clients:
            for entry in client.hb:
                if entry.op_id in expected:
                    seen[entry.op_id] = entry.timestamp.as_paper_list()
        assert seen == expected


class TestNotifierTimestamps:
    def test_broadcast_timestamps(self, session):
        got = {
            (op_id, dest): ts.as_paper_list()
            for op_id, dest, ts in session.notifier.broadcast_log
        }
        assert got == FIG3_EXPECTED["broadcast_timestamps"]

    def test_buffered_full_timestamps(self, session):
        got = {
            entry.op_id: entry.timestamp.as_paper_list()
            for entry in session.notifier.hb
        }
        assert got == FIG3_EXPECTED["notifier_buffer_timestamps"]

    def test_final_sv0(self, session):
        assert session.notifier.sv.as_paper_list() == [1, 2, 1]


class TestHistoryBuffers:
    def test_final_hb_contents(self, session):
        expected = FIG3_EXPECTED["final_hb"]
        assert session.notifier.hb.op_ids() == expected[0]
        for client in session.clients:
            assert client.hb.op_ids() == expected[client.pid], f"site {client.pid}"

    def test_execution_orders(self, session):
        expected = FIG3_EXPECTED["execution_orders"]
        assert session.notifier.executed_op_ids == expected[0]
        for client in session.clients:
            assert client.executed_op_ids == expected[client.pid]


class TestConcurrencyVerdicts:
    def test_every_walkthrough_verdict(self, session):
        got = {
            (r.site, r.new_op_id, r.buffered_op_id): r.verdict
            for r in session.all_checks()
        }
        for key, want in FIG3_EXPECTED["verdicts"].items():
            assert key in got, f"check {key} never happened"
            assert got[key] == want, f"check {key}: got {got[key]}, want {want}"

    def test_no_extra_checks(self, session):
        """The walkthrough enumerates every check the scheme performs."""
        assert len(session.all_checks()) == len(FIG3_EXPECTED["verdicts"])

    def test_ground_truth_relations(self, session):
        oracle = CausalityOracle(session.event_log)
        originals = ["O1", "O2", "O3", "O4"]
        concurrent = {
            frozenset((a, b))
            for i, a in enumerate(originals)
            for b in originals[i + 1 :]
            if oracle.concurrent(a, b)
        }
        assert concurrent == FIG3_EXPECTED["concurrent_pairs"]
        causal = {
            (a, b) for a in originals for b in originals
            if a != b and oracle.happened_before(a, b)
        }
        assert causal == FIG3_EXPECTED["causal_pairs"]

    def test_paper_example_O2_before_O1prime(self, session):
        """Fig. 3 discussion: O_1 || O_2 but O_2 -> O_1'."""
        oracle = CausalityOracle(session.event_log)
        assert oracle.concurrent("O1", "O2")
        assert oracle.happened_before("O2", "O1'")


class TestConvergence:
    def test_all_sites_converge(self, session):
        docs = session.documents()
        assert all(doc == docs[0] for doc in docs)
        assert docs[0] == FIG3_EXPECTED["final_document"]

    def test_client_state_vectors_final(self, session):
        assert session.client(1).sv.as_paper_list() == [3, 1]
        assert session.client(2).sv.as_paper_list() == [2, 2]
        assert session.client(3).sv.as_paper_list() == [3, 1]
