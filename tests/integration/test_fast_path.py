"""The diagnostic-free fast path must behave identically.

Sessions with ``record_checks=False`` / ``verify_with_oracle=False``
skip the O(|HB|) formula sweep per arrival and derive the concurrent set
from the FIFO-acknowledgement structure directly (see
``StarClient.on_message``).  These tests pin the equivalence: same
documents, same timestamps, same wire traffic as the fully instrumented
run, on identical workloads.
"""

import pytest

from repro.editor.star import StarSession
from repro.workloads.random_session import RandomSessionConfig, drive_star_session
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    fig3_script,
    fig_latency_factory,
)


def run_session(seed: int, diagnostics: bool) -> StarSession:
    config = RandomSessionConfig(n_sites=5, ops_per_site=8, seed=seed)
    session = StarSession(
        5,
        initial_state=config.initial_document,
        record_events=diagnostics,
        record_checks=diagnostics,
        verify_with_oracle=diagnostics,
    )
    drive_star_session(session, config)
    session.run()
    return session


class TestFastPathEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_identical_outcome_with_and_without_diagnostics(self, seed):
        fast = run_session(seed, diagnostics=False)
        slow = run_session(seed, diagnostics=True)
        assert fast.documents() == slow.documents()
        assert fast.converged() and slow.converged()
        # op ids come from a process-global counter; normalise by order
        # of first appearance before comparing the broadcast streams
        def normalised(session):
            rename: dict[str, int] = {}
            out = []
            for op_id, dest, ts in session.notifier.broadcast_log:
                index = rename.setdefault(op_id, len(rename))
                out.append((index, dest, ts.as_paper_list()))
            return out

        assert normalised(fast) == normalised(slow)
        fast_stats, slow_stats = fast.wire_stats(), slow.wire_stats()
        assert fast_stats.messages == slow_stats.messages
        # total_bytes differ only through op-id string lengths (global
        # counter); timestamp traffic is identical
        assert fast_stats.timestamp_bytes == slow_stats.timestamp_bytes

    def test_fast_path_records_no_checks(self):
        session = run_session(0, diagnostics=False)
        assert session.all_checks() == []

    def test_fig3_identical_under_fast_path(self):
        session = StarSession(
            3,
            initial_state=FIG2_INITIAL_DOCUMENT,
            latency_factory=fig_latency_factory,
            record_events=False,
            record_checks=False,
        )
        for item in fig3_script():
            session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
        session.run()
        assert session.converged()
        assert session.documents()[0] == "12Bxy"
        # broadcasts still match the paper exactly
        from repro.workloads.scripted import FIG3_EXPECTED

        got = {
            (op_id, dest): ts.as_paper_list()
            for op_id, dest, ts in session.notifier.broadcast_log
        }
        assert got == FIG3_EXPECTED["broadcast_timestamps"]
