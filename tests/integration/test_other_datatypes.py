"""The paper's Section 6 generalisation: CVC over other replicated types.

"The basic ideas and techniques in this scheme are potentially
applicable to other distributed systems which support concurrent updates
on replicated data objects, such as replicated database systems,
replicated file systems, etc."  The star editor is generic over
:class:`repro.ot.types.OTType`; these tests run full sessions over
counters, lists and LWW registers with the oracle enabled, exercising
exactly the same timestamping and concurrency machinery.
"""

import random

from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.ot.types import CounterOp, ListOp, RegisterOp
from repro.ot.component import TextOperation


def uniform_latencies(seed):
    def factory(src, dst):
        return UniformLatency(0.05, 0.8, random.Random(seed * 13 + src * 5 + dst))

    return factory


class TestCounterSessions:
    def test_concurrent_increments_all_apply(self):
        session = StarSession(3, ot_type_name="counter", verify_with_oracle=True)
        session.generate_at(1, CounterOp(5), at=1.0)
        session.generate_at(2, CounterOp(-2), at=1.0)
        session.generate_at(3, CounterOp(10), at=1.0)
        session.run()
        assert session.converged()
        assert session.notifier.document == 13

    def test_many_random_increments(self):
        rng = random.Random(0)
        session = StarSession(
            4, ot_type_name="counter", verify_with_oracle=True,
            latency_factory=uniform_latencies(3),
        )
        total = 0
        for i in range(40):
            delta = rng.randint(-5, 5)
            total += delta
            session.generate_at(1 + i % 4, CounterOp(delta), at=1.0 + i * 0.1)
        session.run()
        assert session.converged()
        assert session.notifier.document == total


class TestListSessions:
    def test_concurrent_inserts_converge(self):
        session = StarSession(2, ot_type_name="list", verify_with_oracle=True)
        session.generate_at(1, ListOp("ins", 0, "alpha"), at=1.0)
        session.generate_at(2, ListOp("ins", 0, "beta"), at=1.0)
        session.run()
        assert session.converged()
        # site 1 priority puts its element first
        assert session.notifier.document == ("alpha", "beta")

    def test_concurrent_delete_same_element(self):
        session = StarSession(2, ot_type_name="list",
                              initial_state=("x", "y", "z"),
                              verify_with_oracle=True)
        session.generate_at(1, ListOp("del", 1), at=1.0)
        session.generate_at(2, ListOp("del", 1), at=1.0)
        session.run()
        assert session.converged()
        # both deleted the same element; it must vanish exactly once
        assert session.notifier.document == ("x", "z")

    def test_replicated_database_rows_scenario(self):
        """Rows appended and removed concurrently from three clients."""
        session = StarSession(3, ot_type_name="list", verify_with_oracle=True,
                              latency_factory=uniform_latencies(7))
        session.generate_at(1, ListOp("ins", 0, {"id": 1}), at=1.0)
        session.generate_at(2, ListOp("ins", 0, {"id": 2}), at=1.1)
        session.generate_at(3, ListOp("ins", 0, {"id": 3}), at=1.2)
        session.generate_at(1, ListOp("ins", 1, {"id": 4}), at=3.0)
        session.generate_at(2, ListOp("del", 0), at=3.1)
        session.run()
        assert session.converged()
        assert len(session.notifier.document) == 3


class TestRegisterSessions:
    def test_concurrent_writes_lww(self):
        session = StarSession(2, ot_type_name="lww-register", verify_with_oracle=True)
        session.generate_at(1, RegisterOp("config-a"), at=1.0)
        session.generate_at(2, RegisterOp("config-b"), at=1.0)
        session.run()
        assert session.converged()
        # deterministic winner (site-priority tiebreak)
        assert session.notifier.document in ("config-a", "config-b")
        docs = set(map(str, session.documents()))
        assert len(docs) == 1

    def test_sequential_writes_last_wins(self):
        session = StarSession(3, ot_type_name="lww-register", verify_with_oracle=True)
        session.generate_at(1, RegisterOp("v1"), at=1.0)
        session.generate_at(2, RegisterOp("v2"), at=10.0)
        session.generate_at(3, RegisterOp("v3"), at=20.0)
        session.run()
        assert session.converged()
        assert session.notifier.document == "v3"


class TestComponentTextSessions:
    def test_component_ops_through_star(self):
        session = StarSession(2, ot_type_name="text-component",
                              initial_state="ABCDE", verify_with_oracle=True)
        o1 = TextOperation().retain(1).insert("12").retain(4)
        o2 = TextOperation().retain(2).delete(3)
        session.generate_at(1, o1, at=1.0)
        session.generate_at(2, o2, at=1.0)
        session.run()
        assert session.converged()
        assert session.notifier.document == "A12B"

    def test_batched_edits_compose_then_send(self):
        """A client may compose a burst locally before propagating."""
        session = StarSession(2, ot_type_name="text-component",
                              initial_state="hello", verify_with_oracle=True)
        burst = (
            TextOperation().retain(5).insert(" wor")
            .compose(TextOperation().retain(9).insert("ld"))
        )
        session.generate_at(1, burst, at=1.0)
        session.generate_at(2, TextOperation().delete(1).insert("H").retain(4), at=1.0)
        session.run()
        assert session.converged()
        assert session.notifier.document == "Hello world"
