"""FIG2: the paper's Fig. 2 inconsistency scenario, reproduced.

Runs the scripted four-operation scenario with transformation DISABLED
(operations relayed in their original forms, exactly Fig. 2) and asserts
both inconsistency problems the paper demonstrates:

* **divergence** -- the four sites end in four different documents;
* **intention violation** -- site 1's execution of ``O_1`` then the
  untransformed ``O_2`` yields ``"A1DE"`` instead of the
  intention-preserved ``"A12B"``.
"""

from repro.analysis.consistency import check_divergence, intention_preserved_pair
from repro.editor.star import StarSession
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    FIG3_EXPECTED,
    fig2_intention_example,
    fig3_script,
    fig_latency_factory,
)


def run_fig2_session() -> StarSession:
    session = StarSession(
        n_sites=3,
        initial_state=FIG2_INITIAL_DOCUMENT,
        latency_factory=fig_latency_factory,
        transform_enabled=False,
    )
    for item in fig3_script():
        session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
    session.run()
    assert session.quiescent()
    return session


class TestFig2ExecutionOrders:
    def test_per_site_execution_orders_match_figure(self):
        session = run_fig2_session()
        expected = FIG3_EXPECTED["execution_orders"]
        assert session.notifier.executed_op_ids == expected[0]
        for client in session.clients:
            assert client.executed_op_ids == expected[client.pid], f"site {client.pid}"


class TestFig2Divergence:
    def test_sites_diverge_without_transformation(self):
        session = run_fig2_session()
        report = check_divergence(session.documents())
        assert report.diverged
        # all four sites disagree (the strongest form of the figure)
        assert len(report.distinct_states) == 4

    def test_final_documents_match_derivation(self):
        session = run_fig2_session()
        expected = FIG3_EXPECTED["fig2_final_documents"]
        assert session.notifier.document == expected[0]
        for client in session.clients:
            assert client.document == expected[client.pid], f"site {client.pid}"

    def test_site1_exhibits_paper_intention_violation(self):
        """After O_1 and the untransformed O_2, site 1 reads "A1DE"."""
        session = StarSession(
            n_sites=3,
            initial_state=FIG2_INITIAL_DOCUMENT,
            latency_factory=fig_latency_factory,
            transform_enabled=False,
        )
        for item in fig3_script():
            session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
        # run until just after O_2 reaches site 1 (arrival at 2.5)
        session.run(until=2.6)
        assert session.client(1).document == "A1DE"


class TestFig2IntentionExample:
    def test_section_2_2_example_end_to_end(self):
        doc, o1, o2, preserved, naive = fig2_intention_example()
        check = intention_preserved_pair(doc, o1, o2)
        assert check.preserved_result == preserved == "A12B"
        assert check.naive_results[0] == naive == "A1DE"
        assert check.naive_violates

    def test_transformed_O2_is_delete_3_4(self):
        """The paper: O_2' = Delete[3, 4] after transforming against O_1."""
        from repro.ot.operations import Delete
        from repro.ot.transform import inclusion_transform

        doc, o1, o2, preserved, _ = fig2_intention_example()
        o2_prime = inclusion_transform(o2, o1)
        assert o2_prime == Delete(3, 4)
        assert o2_prime.apply(o1.apply(doc)) == preserved
