"""End-to-end fault tolerance: sessions that converge despite a hostile
network, verified against the full-vector-clock oracle throughout.

The acceptance scenario of the reliability layer: a star session under
20% message loss, 5% duplication and one client crash/restart must
converge to the same document at every site, with every compressed
concurrency verdict matching the oracle, while the protocol counters
show the recovery actually happened (retransmits, dedup, resync).
"""

import random

import pytest

from repro.editor.star import ReliabilityConfig, StarSession
from repro.net.channel import UniformLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan
from repro.ot.operations import Insert
from repro.workloads.random_session import RandomSessionConfig, drive_star_session


def latency_factory(seed):
    def build(src, dst):
        return UniformLatency(0.02, 0.2, random.Random(seed * 1009 + src * 13 + dst))

    return build


def run_faulty_session(plan, n_sites=4, ops_per_site=10, workload_seed=3):
    session = StarSession(
        n_sites,
        latency_factory=latency_factory(plan.seed),
        verify_with_oracle=True,
        fault_plan=plan,
    )
    config = RandomSessionConfig(
        n_sites=n_sites, ops_per_site=ops_per_site, seed=workload_seed
    )
    drive_star_session(session, config)
    session.run()
    return session


class TestLossyNetwork:
    def test_acceptance_scenario_converges_with_oracle(self):
        """20% drop + 5% dup + one crash/restart: converged, oracle-clean,
        and every recovery counter actually fired."""
        plan = FaultPlan(
            seed=7,
            default=ChannelFaults(drop_p=0.2, dup_p=0.05),
            crashes=(ClientCrash(site=2, at=3.0, restart_at=5.0),),
        )
        session = run_faulty_session(plan)
        assert session.quiescent()
        assert session.converged(), session.documents()
        assert session.topology.fifo_respected()
        assert session.reliable_delivery_in_order()
        report = session.fault_report()
        assert report.lost > 0  # the network really was hostile
        assert report.duplicated > 0
        assert report.retransmits > 0  # and the protocol really recovered
        assert report.duplicates_discarded > 0
        assert report.recoveries >= 1  # the client's completed restart
        assert report.resyncs_served >= 1  # and the notifier's side of it

    def test_burst_outage_recovered(self):
        plan = FaultPlan(
            seed=11,
            default=ChannelFaults(outages=((2.0, 4.0),)),
        )
        session = run_faulty_session(plan, n_sites=3, ops_per_site=8)
        assert session.converged()
        report = session.fault_report()
        assert report.outage_dropped > 0
        assert report.retransmits > 0

    def test_lossless_plan_reliability_overhead_only(self):
        """With a zero-fault plan the reliability layer is pure overhead:
        no retransmits, no dedup, nothing lost -- but still convergent."""
        session = run_faulty_session(FaultPlan(seed=1), n_sites=3, ops_per_site=6)
        assert session.converged()
        report = session.fault_report()
        assert report.lost == 0
        assert report.duplicated == 0
        # RTO (0.5) exceeds the worst-case RTT (0.4) and the retransmit
        # clock restarts on every cumulative-ack progress, so a lossless
        # run must never suspect loss.
        assert report.retransmits == 0
        assert report.duplicates_discarded == 0

    def test_crashed_client_loses_volatile_state_then_resyncs(self):
        plan = FaultPlan(
            seed=5,
            crashes=(ClientCrash(site=1, at=2.0, restart_at=3.0),),
        )
        session = StarSession(
            2,
            latency_factory=latency_factory(5),
            verify_with_oracle=True,
            fault_plan=plan,
        )
        session.generate_at(1, Insert("a", 0), at=1.0)  # before the crash
        session.generate_at(2, Insert("b", 0), at=2.5)  # while site 1 is down
        session.generate_at(1, Insert("c", 0), at=4.0)  # after recovery
        session.run()
        assert session.converged(), session.documents()
        client = session.client(1)
        assert client.crash_count == 1
        assert client.rel_stats.recoveries == 1
        # the op generated before the crash survives at the other sites
        # (the notifier had executed and re-broadcast it)
        assert "a" in session.notifier.document
        assert "c" in session.notifier.document

    def test_edit_during_crash_is_counted_lost(self):
        plan = FaultPlan(
            seed=5,
            crashes=(ClientCrash(site=1, at=1.0, restart_at=3.0),),
        )
        session = StarSession(
            2, latency_factory=latency_factory(6), fault_plan=plan
        )
        session.generate_at(1, Insert("x", 0), at=2.0)  # into a dead terminal
        session.run()
        assert session.converged()
        assert session.client(1).rel_stats.lost_local_edits == 1
        assert "x" not in session.notifier.document

    def test_faults_without_plan_reject_crash_api(self):
        session = StarSession(2)
        with pytest.raises(RuntimeError, match="requires the reliability"):
            session.client(1).crash()


class TestDeterminism:
    def _run(self, seed):
        plan = FaultPlan(
            seed=seed,
            default=ChannelFaults(drop_p=0.15, dup_p=0.05),
            crashes=(ClientCrash(site=1, at=2.0, restart_at=4.0),),
        )
        session = run_faulty_session(plan, n_sites=3, ops_per_site=8, workload_seed=11)
        return session

    def test_two_sessions_in_one_process_are_identical(self):
        """Regression: op ids and envelope ids used process-global
        counters, so a second session in the same process replayed
        differently.  Identical seeds must now give identical runs."""
        a = self._run(seed=7)
        b = self._run(seed=7)
        assert a.notifier.executed_op_ids == b.notifier.executed_op_ids
        assert [c.executed_op_ids for c in a.clients] == [
            c.executed_op_ids for c in b.clients
        ]
        assert a.documents() == b.documents()
        report_a, report_b = a.fault_report(), b.fault_report()
        assert report_a == report_b

    def test_different_seeds_diverge(self):
        a = self._run(seed=7)
        b = self._run(seed=8)
        assert a.fault_report() != b.fault_report()

    def test_plain_sessions_also_deterministic(self):
        """The determinism fix matters without faults too."""

        def run_plain():
            session = StarSession(3, latency_factory=latency_factory(2))
            config = RandomSessionConfig(n_sites=3, ops_per_site=6, seed=4)
            drive_star_session(session, config)
            session.run()
            return session

        a, b = run_plain(), run_plain()
        assert a.notifier.executed_op_ids == b.notifier.executed_op_ids
        assert a.documents() == b.documents()

    def test_reliability_without_faults_is_transparent(self):
        """Reliability enabled over a perfect network must deliver the
        exact same editor-level outcome as no reliability at all.

        Fixed latency keeps the comparison exact: acknowledgement
        packets draw no latency samples that would shift data-message
        delivery times between the two runs."""
        from repro.net.channel import FixedLatency

        def run(reliability):
            session = StarSession(
                3,
                latency_factory=lambda s, d: FixedLatency(0.08),
                verify_with_oracle=True,
                reliability=reliability,
            )
            config = RandomSessionConfig(n_sites=3, ops_per_site=6, seed=4)
            drive_star_session(session, config)
            session.run()
            return session

        bare = run(None)
        covered = run(ReliabilityConfig())
        assert bare.documents() == covered.documents()
        assert bare.notifier.executed_op_ids == covered.notifier.executed_op_ids
        assert covered.fault_report().retransmits == 0
