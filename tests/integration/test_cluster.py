"""End-to-end cluster runs: real processes, real sockets, full verdicts.

The acceptance bar of ISSUE 7: a localhost cluster of notifier + N
client *processes* converges on the same document, every concurrency
verdict agrees with the merged trace, and the trace passes the
vector-clock cross-check -- the same editor classes the simulator
tests drive, over TCP.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from repro.cluster import ClusterConfig, run_cluster
from repro.cluster.harness import read_artifacts


def test_three_client_cluster_converges(tmp_path: Path) -> None:
    config = ClusterConfig(clients=3, ops_per_client=3, seed=7,
                           timeout_s=20.0)
    report = run_cluster(config, tmp_path)
    assert report.ok, report.summary()
    assert len(report.documents) == 4  # notifier + 3 clients
    docs = set(report.documents.values())
    assert len(docs) == 1
    assert all(n == config.total_ops for n in report.executed_ops.values())
    assert report.cross_check.ok
    assert report.cross_check.pairs_checked > 0
    # Every process left its artifacts behind for post-mortems.
    for site in range(4):
        result, events = read_artifacts(tmp_path, site)
        assert result.site == site
        assert events, f"site {site} wrote an empty trace"


def test_cluster_over_reliability_protocol(tmp_path: Path) -> None:
    config = ClusterConfig(clients=2, ops_per_client=3, seed=3,
                           reliability=True, timeout_s=20.0)
    report = run_cluster(config, tmp_path)
    assert report.ok, report.summary()
    assert report.bad_releases == 0


def test_serve_and_client_in_one_loop(tmp_path: Path) -> None:
    """The process entry points also compose in-process (one event loop).

    Covers the asyncio plumbing without subprocess overhead: the serve
    coroutine announces its port on a future and the client coroutines
    dial it, all on the test's own loop.
    """
    from repro.cluster.client import run_client
    from repro.cluster.serve import serve

    config = ClusterConfig(clients=2, ops_per_client=2, seed=1,
                           timeout_s=15.0, settle_s=0.1)

    async def body() -> None:
        port_future: asyncio.Future[int] = asyncio.get_running_loop().create_future()
        server = asyncio.ensure_future(serve(config, tmp_path,
                                             on_port=port_future))
        port = await asyncio.wait_for(port_future, 10.0)
        clients = [
            asyncio.ensure_future(run_client(config, site, port, tmp_path))
            for site in (1, 2)
        ]
        results = await asyncio.wait_for(
            asyncio.gather(server, *clients), config.timeout_s + 10.0
        )
        assert all(results)

    asyncio.run(body())
    documents = {
        read_artifacts(tmp_path, site)[0].document for site in range(3)
    }
    assert len(documents) == 1


def test_cluster_with_telemetry_streams_and_monitor_aggregation(
    tmp_path: Path,
) -> None:
    """ISSUE 8 acceptance, clean half: telemetry on, cross-check EXACT.

    TELEMETRY frames must actually travel the wire (the notifier's
    stream holds gossiped client frames), and the monitor's per-site
    aggregate must equal each process's final local stats.
    """
    import pytest

    from repro.cluster.driver import ClusterError
    from repro.cluster.harness import telemetry_path
    from repro.obs.monitor import aggregate, run_monitor, scan_dir

    config = ClusterConfig(clients=3, ops_per_client=3, seed=7,
                           timeout_s=20.0, telemetry_interval_s=0.2)
    try:
        report = run_cluster(config, tmp_path)
    except ClusterError as exc:  # pragma: no cover - loaded-host diagnostics
        pytest.fail(f"telemetry-enabled cluster failed: {exc}")
    # Telemetry on changes no verdict: the trace-vs-oracle cross-check
    # still passes EXACT on the merged trace.
    assert report.ok, report.summary()
    assert report.cross_check.ok

    # Every process wrote a telemetry stream...
    for site in range(4):
        assert telemetry_path(tmp_path, site).exists()
    by_site, health = scan_dir(tmp_path)
    assert sorted(by_site) == [0, 1, 2, 3]
    assert not any(e.verdict == "fail" for e in health)

    # ...the clients' frames were gossiped over the wire into the
    # notifier's stream (frames whose site != 0 in telemetry_0.jsonl)...
    from repro.obs.monitor import read_telemetry

    _header, notifier_stream, _events = read_telemetry(
        telemetry_path(tmp_path, 0)
    )
    assert {f.site for f in notifier_stream} > {0}

    # ...and the monitor's aggregate equals each process's final stats.
    snapshot = aggregate(by_site, health)
    assert snapshot.digests_agree
    for site in range(4):
        result, _ = read_artifacts(tmp_path, site)
        assert snapshot.ops_executed[site] == result.executed_ops
        assert snapshot.latest[site].retransmits == result.retransmits
    # The CI probe mode exits clean and leaves the artifact behind.
    assert run_monitor(tmp_path, once=True, expect_sites=4,
                       emit=lambda _: None) == 0
    assert (tmp_path / "monitor.jsonl").exists()


def test_injected_notifier_crash_without_failover_leaves_flight_recorders(
    tmp_path: Path,
) -> None:
    """The negative test: failover disabled, a crash is cleanly terminal.

    The notifier hard-exits mid-run with ``failover=False``; every
    process must dump a flight recorder, the clients must flag the dead
    peer *live* (a ``fail`` health event in their telemetry streams,
    written before the run ends), and the driver must salvage the
    artifacts by name instead of discarding the run -- the explained
    failure, not a hang or an unexplained one.
    """
    import pytest

    from repro.cluster.driver import ClusterError
    from repro.cluster.harness import flight_path, telemetry_path
    from repro.obs.monitor import scan_dir
    from repro.obs.tracer import read_jsonl

    config = ClusterConfig(clients=2, ops_per_client=20, seed=5,
                           time_scale=0.3, timeout_s=8.0,
                           telemetry_interval_s=0.2,
                           crash_notifier_after_s=1.5,
                           failover=False)
    with pytest.raises(ClusterError) as excinfo:
        run_cluster(config, tmp_path)
    # The failure report names the salvaged observability artifacts.
    assert "salvaged" in str(excinfo.value)
    assert "flight_0.jsonl" in str(excinfo.value)

    # A flight-recorder dump from every process, in trace format.
    for site in range(3):
        with flight_path(tmp_path, site).open() as fh:
            header, _events = read_jsonl(fh, lenient=True)
        assert header["flight_recorder"] is True
        assert header["site"] == site
    with flight_path(tmp_path, 0).open() as fh:
        header, _events = read_jsonl(fh, lenient=True)
    assert header["reason"] == "injected-crash"

    # The clients flagged the dead notifier live, before the run ended.
    _by_site, health = scan_dir(tmp_path)
    dead_flags = [e for e in health if e.kind == "peer_dead"
                  and e.verdict == "fail" and e.peer == 0]
    assert {e.site for e in dead_flags} == {1, 2}
    # The crashed notifier's own stream survived (crash-safe writes).
    assert telemetry_path(tmp_path, 0).exists()
