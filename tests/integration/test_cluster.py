"""End-to-end cluster runs: real processes, real sockets, full verdicts.

The acceptance bar of ISSUE 7: a localhost cluster of notifier + N
client *processes* converges on the same document, every concurrency
verdict agrees with the merged trace, and the trace passes the
vector-clock cross-check -- the same editor classes the simulator
tests drive, over TCP.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from repro.cluster import ClusterConfig, run_cluster
from repro.cluster.harness import read_artifacts


def test_three_client_cluster_converges(tmp_path: Path) -> None:
    config = ClusterConfig(clients=3, ops_per_client=3, seed=7,
                           timeout_s=20.0)
    report = run_cluster(config, tmp_path)
    assert report.ok, report.summary()
    assert len(report.documents) == 4  # notifier + 3 clients
    docs = set(report.documents.values())
    assert len(docs) == 1
    assert all(n == config.total_ops for n in report.executed_ops.values())
    assert report.cross_check.ok
    assert report.cross_check.pairs_checked > 0
    # Every process left its artifacts behind for post-mortems.
    for site in range(4):
        result, events = read_artifacts(tmp_path, site)
        assert result.site == site
        assert events, f"site {site} wrote an empty trace"


def test_cluster_over_reliability_protocol(tmp_path: Path) -> None:
    config = ClusterConfig(clients=2, ops_per_client=3, seed=3,
                           reliability=True, timeout_s=20.0)
    report = run_cluster(config, tmp_path)
    assert report.ok, report.summary()
    assert report.bad_releases == 0


def test_serve_and_client_in_one_loop(tmp_path: Path) -> None:
    """The process entry points also compose in-process (one event loop).

    Covers the asyncio plumbing without subprocess overhead: the serve
    coroutine announces its port on a future and the client coroutines
    dial it, all on the test's own loop.
    """
    from repro.cluster.client import run_client
    from repro.cluster.serve import serve

    config = ClusterConfig(clients=2, ops_per_client=2, seed=1,
                           timeout_s=15.0, settle_s=0.1)

    async def body() -> None:
        port_future: asyncio.Future[int] = asyncio.get_running_loop().create_future()
        server = asyncio.ensure_future(serve(config, tmp_path,
                                             on_port=port_future))
        port = await asyncio.wait_for(port_future, 10.0)
        clients = [
            asyncio.ensure_future(run_client(config, site, port, tmp_path))
            for site in (1, 2)
        ]
        results = await asyncio.wait_for(
            asyncio.gather(server, *clients), config.timeout_s + 10.0
        )
        assert all(results)

    asyncio.run(body())
    documents = {
        read_artifacts(tmp_path, site)[0].document for site in range(3)
    }
    assert len(documents) == 1
