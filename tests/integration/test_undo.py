"""Undo-as-new-operation in the star editor."""

import pytest

from repro.editor.star import StarSession, UndoError
from repro.ot.component import TextOperation
from repro.ot.operations import Delete, Insert, OperationGroup
from repro.ot.types import CounterOp


class TestInvertSupport:
    def test_positional_insert_inverts_to_delete(self):
        from repro.ot.types import PositionalTextType

        ot = PositionalTextType()
        assert ot.invert("abc", Insert("XY", 1)) == Delete(2, 1)

    def test_positional_delete_inverts_to_reinsert(self):
        from repro.ot.types import PositionalTextType

        ot = PositionalTextType()
        assert ot.invert("ABCDE", Delete(3, 2)) == Insert("CDE", 2)

    def test_positional_group_inverts_reversed(self):
        from repro.ot.types import PositionalTextType

        ot = PositionalTextType()
        group = OperationGroup((Delete(2, 1), Delete(2, 3)))
        doc = "abcdefg"
        inverse = ot.invert(doc, group)
        assert inverse.apply(group.apply(doc)) == doc

    def test_component_invert(self):
        from repro.ot.types import TextComponentType

        ot = TextComponentType()
        op = TextOperation().retain(1).delete(2).insert("Z").retain(1)
        doc = "abcd"
        inverse = ot.invert(doc, op)
        assert inverse.apply(op.apply(doc)) == doc


class TestUndoLast:
    def test_simple_undo_restores_document(self):
        session = StarSession(2, initial_state="hello")
        session.generate_at(1, Insert(" world", 5), at=1.0)
        session.sim.schedule(2.0, lambda: session.client(1).undo_last())
        session.run()
        assert session.converged()
        assert session.notifier.document == "hello"

    def test_undo_delete_restores_text(self):
        session = StarSession(2, initial_state="ABCDE")
        session.generate_at(1, Delete(3, 2), at=1.0)
        session.sim.schedule(1.5, lambda: session.client(1).undo_last())
        session.run()
        assert session.converged()
        assert session.notifier.document == "ABCDE"

    def test_undo_with_concurrent_remote_edit(self):
        """The undo propagates like any edit; concurrent ops transform."""
        session = StarSession(2, initial_state="ABCDE")
        session.generate_at(1, Insert("12", 1), at=1.0)
        session.sim.schedule(1.01, lambda: session.client(1).undo_last())
        session.generate_at(2, Delete(3, 2), at=1.0)
        session.run()
        assert session.converged()
        assert session.notifier.document == "AB"

    def test_undo_nothing_raises(self):
        session = StarSession(1)
        with pytest.raises(UndoError, match="nothing to undo"):
            session.client(1).undo_last()

    def test_undo_blocked_after_remote_execution(self):
        session = StarSession(2, initial_state="ab")
        session.generate_at(1, Insert("x", 0), at=1.0)
        session.generate_at(2, Insert("y", 2), at=1.0)
        session.run()  # client 1 has now executed client 2's op remotely
        with pytest.raises(UndoError, match="remote operation executed"):
            session.client(1).undo_last()

    def test_undo_unsupported_type_raises(self):
        session = StarSession(1, ot_type_name="counter")
        session.generate_at(1, CounterOp(5), at=1.0)
        session.run()
        with pytest.raises(UndoError, match="does not support inversion"):
            session.client(1).undo_last()

    def test_undo_of_undo_redoes(self):
        session = StarSession(2, initial_state="x")
        session.generate_at(1, Insert("yz", 1), at=1.0)
        session.sim.schedule(1.1, lambda: session.client(1).undo_last())
        session.sim.schedule(1.2, lambda: session.client(1).undo_last())
        session.run()
        assert session.converged()
        assert session.notifier.document == "xyz"

    def test_component_type_undo(self):
        session = StarSession(2, ot_type_name="text-component", initial_state="abc")
        op = TextOperation().retain(3).insert("!")
        session.sim.schedule(1.0, lambda: session.client(1).generate(op))
        session.sim.schedule(2.0, lambda: session.client(1).undo_last())
        session.run()
        assert session.converged()
        assert session.notifier.document == "abc"

    def test_undo_survives_garbage_collection(self):
        """Regression: undo must not depend on the entry still being in
        the HB.  ``collect_garbage`` prunes an acknowledged local entry,
        but the operation stays perfectly undoable as long as nothing
        remote executed since -- the old HB-tail lookup raised a spurious
        "nothing to undo" here."""
        session = StarSession(1, initial_state="hello")
        session.generate_at(1, Insert(" world", 5), at=1.0)
        session.run()
        client = session.client(1)
        client.pending.clear()  # stand-in for a notifier acknowledgement
        assert client.collect_garbage() == 1
        assert len(client.hb) == 0
        client.undo_last()
        session.run()
        assert session.converged()
        assert session.notifier.document == "hello"

    def test_undo_blocked_when_gc_hides_remote_execution(self):
        """Regression (the dangerous direction): after GC prunes the
        FROM_CENTER tail, the HB again *ends* with a local entry -- but a
        remote operation did execute since, so its inverse's context is
        gone.  The old HB-tail lookup would happily undo into a corrupted
        document; the independent tracking must refuse."""
        from repro.core.timestamp import OriginKind

        session = StarSession(2, initial_state="ABCDE")
        # B broadcasts before the notifier has seen A, so A stays pending
        # at client 1 (the broadcast carries T[2] = 0) and survives GC.
        session.generate_at(2, Delete(2, 0), at=1.0)
        session.generate_at(1, Insert("xy", 1), at=1.07)
        session.run()
        client = session.client(1)
        client.collect_garbage()
        assert client.hb[len(client.hb) - 1].origin_kind is OriginKind.LOCAL
        with pytest.raises(UndoError, match="remote operation executed"):
            client.undo_last()

    def test_undo_counts_as_ordinary_operation_in_sv(self):
        session = StarSession(1, initial_state="q")
        session.generate_at(1, Insert("r", 1), at=1.0)
        session.sim.schedule(2.0, lambda: session.client(1).undo_last())
        session.run()
        assert session.client(1).sv.as_paper_list() == [0, 2]
        assert session.notifier.sv.as_paper_list() == [2]
