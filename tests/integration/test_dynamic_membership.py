"""Dynamic membership: late joiners in the star session.

The paper's demonstrator "allows an arbitrary number of users to
participate a collaborative editing session"; these tests exercise the
join protocol: the notifier grows ``SV_0`` by one entry, ships a state
snapshot whose ``base_count`` seeds the joiner's ``SV_i[1]``, and all
compressed-timestamp arithmetic stays exact across the membership
change.
"""

import random

import pytest

from repro.editor.star import ConsistencyError, StarSession
from repro.net.channel import UniformLatency
from repro.ot.operations import Delete, Insert
from repro.workloads.random_session import (
    RandomSessionConfig,
    drive_star_session,
    random_positional_op,
)


def uniform_latencies(seed):
    def factory(src, dst):
        return UniformLatency(0.05, 1.0, random.Random(seed * 7 + src * 3 + dst))

    return factory


class TestJoinProtocol:
    def test_snapshot_seeds_clock_and_document(self):
        session = StarSession(2, initial_state="ABCDE", record_events=False)
        session.generate_at(1, Insert("12", 1), at=1.0)
        session.generate_at(2, Delete(3, 2), at=1.0)
        new_site = session.add_client(at=5.0)
        assert new_site == 3
        session.run(until=6.0)
        joiner = session.client(new_site)
        assert joiner.active
        assert joiner.document == "A12B"
        # SV seeded with the two snapshot-covered operations
        assert joiner.sv.as_paper_list() == [2, 0]
        assert session.notifier.sv.as_paper_list() == [1, 1, 0]

    def test_joiner_cannot_edit_before_snapshot(self):
        session = StarSession(1, record_events=False)
        new_site = session.add_client(at=5.0)
        joiner = session.client(new_site)
        with pytest.raises(RuntimeError, match="snapshot"):
            joiner.generate(Insert("x", 0))

    def test_double_snapshot_rejected(self):
        from repro.editor.star import SnapshotMessage
        from repro.net.transport import Envelope

        session = StarSession(1, record_events=False)
        new_site = session.add_client(at=1.0)
        session.run(until=2.0)
        joiner = session.client(new_site)
        with pytest.raises(ConsistencyError, match="second snapshot"):
            joiner.on_message(
                Envelope(source=0, dest=new_site, payload=SnapshotMessage("x", 0))
            )

    def test_join_requires_no_event_log(self):
        session = StarSession(2)  # record_events defaults True
        with pytest.raises(ValueError, match="record_events"):
            session.add_client(at=1.0)

    def test_notifier_rejects_wrong_site_id(self):
        from repro.editor.star import StarClient

        session = StarSession(2, record_events=False)
        rogue = StarClient(session.sim, 9, record_checks=False, joining=True)
        with pytest.raises(ValueError, match="next site id"):
            session.notifier.admit_client(rogue)


class TestJoinerParticipation:
    def test_joiner_edits_concurrently_with_founders(self):
        session = StarSession(2, initial_state="ABCDE", record_events=False)
        session.generate_at(1, Insert("12", 1), at=1.0)
        session.generate_at(2, Delete(3, 2), at=1.0)
        new_site = session.add_client(at=5.0)
        session.run(until=6.0)
        session.generate_at(new_site, Insert("!", 0), at=7.0)
        session.generate_at(1, Insert("?", 4), at=7.0)  # concurrent
        session.run()
        assert session.converged()
        assert session.notifier.document == "!A12B?"

    def test_join_while_operations_in_flight(self):
        """Joins races against broadcasts: FIFO keeps the snapshot first."""
        for seed in range(5):
            config = RandomSessionConfig(n_sites=3, ops_per_site=5, seed=seed)
            session = StarSession(
                3,
                initial_state=config.initial_document,
                record_events=False,
                latency_factory=uniform_latencies(seed),
            )
            drive_star_session(session, config)
            j1 = session.add_client(at=1.5)
            j2 = session.add_client(at=2.5)
            for k, site in enumerate((j1, j2, j1)):
                client = session.client(site)

                def gen(client=client, sub=seed * 77 + k):
                    rng = random.Random(sub)
                    client.generate(random_positional_op(rng, client.document, config))

                session.sim.schedule(4.0 + k * 0.5, gen)
            session.run()
            assert session.quiescent()
            assert session.converged(), (seed, session.documents())

    def test_timestamps_stay_constant_after_join(self):
        session = StarSession(2, initial_state="ab", record_events=False)
        session.generate_at(1, Insert("x", 0), at=1.0)
        new_site = session.add_client(at=2.0)
        session.run(until=3.0)
        session.generate_at(new_site, Insert("y", 0), at=4.0)
        session.run()
        stats = session.wire_stats()
        # every op message still carries exactly 8 timestamp bytes
        op_messages = [
            ch.stats.messages for ch in session.topology.channels.values()
        ]
        assert stats.timestamp_bytes == 8 * (stats.messages - 1)  # -1 snapshot
        assert session.converged()

    def test_growing_notifier_vector(self):
        session = StarSession(1, record_events=False)
        assert session.notifier.clock_storage_ints() == 1
        session.add_client(at=1.0)
        session.add_client(at=2.0)
        session.run(until=3.0)
        assert session.notifier.clock_storage_ints() == 3
        # clients keep the constant 2 regardless
        assert all(c.clock_storage_ints() == 2 for c in session.clients)
