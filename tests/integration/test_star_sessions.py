"""Integration tests for the star editor on non-scripted workloads."""

import random

import pytest

from repro.editor.star import ConsistencyError, StarSession
from repro.net.channel import JitterLatency, UniformLatency
from repro.ot.operations import Delete, Insert
from repro.workloads.random_session import RandomSessionConfig, drive_star_session
from repro.workloads.typing_model import TypingBurstConfig
from repro.workloads.typing_model import drive_typing_session


def uniform_latencies(seed):
    def factory(src, dst):
        return UniformLatency(0.01, 1.5, random.Random(seed * 31 + src * 7 + dst))

    return factory


class TestBasicSessions:
    def test_single_client_echo_free(self):
        """With one client the notifier must not echo ops back."""
        session = StarSession(n_sites=1, initial_state="abc")
        session.generate_at(1, Insert("x", 0), at=1.0)
        session.run()
        assert session.converged()
        assert session.client(1).sv.as_paper_list() == [0, 1]
        assert session.notifier.sv.as_paper_list() == [1]

    def test_two_concurrent_inserts_ordered_by_site_priority(self):
        session = StarSession(n_sites=2, initial_state="ab")
        session.generate_at(1, Insert("X", 1), at=1.0)
        session.generate_at(2, Insert("Y", 1), at=1.0)
        session.run()
        assert session.converged()
        # site 1 has priority: its insert ends up first
        assert session.notifier.document == "aXYb"

    def test_sequential_edits_no_transformation_needed(self):
        session = StarSession(n_sites=2, initial_state="")
        session.generate_at(1, Insert("hello", 0), at=1.0)
        session.generate_at(2, Insert(" world", 5), at=10.0)  # after delivery
        session.run()
        assert session.converged()
        assert session.notifier.document == "hello world"

    def test_delete_vs_delete_overlap_converges(self):
        session = StarSession(n_sites=2, initial_state="abcdef")
        session.generate_at(1, Delete(3, 1), at=1.0)
        session.generate_at(2, Delete(3, 2), at=1.0)
        session.run()
        assert session.converged()
        assert session.notifier.document == "af"

    def test_generate_at_bad_site(self):
        session = StarSession(n_sites=2)
        with pytest.raises(IndexError):
            session.client(3)
        with pytest.raises(IndexError):
            session.client(0)


class TestRandomConvergence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_sessions_converge_with_oracle(self, seed):
        config = RandomSessionConfig(n_sites=4, ops_per_site=8, seed=seed)
        session = StarSession(
            4,
            initial_state=config.initial_document,
            latency_factory=uniform_latencies(seed),
            verify_with_oracle=True,
        )
        drive_star_session(session, config)
        session.run()
        assert session.quiescent()
        assert session.converged(), session.documents()

    def test_delete_heavy_workload(self):
        config = RandomSessionConfig(
            n_sites=3, ops_per_site=12, seed=5, insert_ratio=0.25
        )
        session = StarSession(
            3,
            initial_state=config.initial_document,
            latency_factory=uniform_latencies(5),
            verify_with_oracle=True,
        )
        drive_star_session(session, config)
        session.run()
        assert session.converged()

    def test_hotspot_contention(self):
        config = RandomSessionConfig(n_sites=4, ops_per_site=10, seed=2, hotspot=True)
        session = StarSession(
            4,
            initial_state=config.initial_document,
            latency_factory=uniform_latencies(2),
            verify_with_oracle=True,
        )
        drive_star_session(session, config)
        session.run()
        assert session.converged()

    def test_long_tailed_latency(self):
        config = RandomSessionConfig(n_sites=3, ops_per_site=8, seed=9)
        session = StarSession(
            3,
            initial_state=config.initial_document,
            latency_factory=lambda s, d: JitterLatency(0.2, 1.0, random.Random(s * 5 + d)),
            verify_with_oracle=True,
        )
        drive_star_session(session, config)
        session.run()
        assert session.converged()

    def test_typing_workload(self):
        config = TypingBurstConfig(n_sites=3, bursts_per_site=3, seed=1)
        session = StarSession(3, verify_with_oracle=True,
                              latency_factory=uniform_latencies(1))
        drive_typing_session(session, config)
        session.run()
        assert session.converged()
        total_typed = 3 * 3 * config.burst_length
        assert len(session.notifier.document) == total_typed

    def test_moderate_scale(self):
        config = RandomSessionConfig(n_sites=16, ops_per_site=6, seed=3)
        session = StarSession(16, initial_state=config.initial_document,
                              verify_with_oracle=True)
        drive_star_session(session, config)
        session.run()
        assert session.converged()
        # timestamp bytes stay constant regardless of N
        stats = session.wire_stats()
        assert stats.timestamp_bytes == 8 * stats.messages


class TestInvariants:
    def test_fifo_respected_everywhere(self):
        config = RandomSessionConfig(n_sites=5, ops_per_site=6, seed=11)
        session = StarSession(5, initial_state=config.initial_document,
                              latency_factory=uniform_latencies(11))
        drive_star_session(session, config)
        session.run()
        assert session.topology.fifo_respected()

    def test_notifier_storage_is_n_clients_storage_is_2(self):
        session = StarSession(7)
        assert session.notifier.clock_storage_ints() == 7
        assert all(c.clock_storage_ints() == 2 for c in session.clients)

    def test_message_counts(self):
        """Each op costs 1 upload + (N-1) broadcasts."""
        config = RandomSessionConfig(n_sites=4, ops_per_site=5, seed=0)
        session = StarSession(4, initial_state=config.initial_document)
        drive_star_session(session, config)
        session.run()
        total_ops = 4 * 5
        assert session.wire_stats().messages == total_ops * 4  # 1 + (4-1)

    def test_stale_ack_raises_consistency_error(self):
        """A client claiming fewer acks than before trips the guard."""
        from repro.core.timestamp import CompressedTimestamp
        from repro.editor.star import OpMessage
        from repro.net.transport import Envelope

        session = StarSession(n_sites=2, initial_state="ab")
        session.generate_at(1, Insert("x", 0), at=1.0)
        session.generate_at(2, Insert("y", 0), at=5.0)
        session.run()
        bad = OpMessage(
            op=Insert("z", 0),
            timestamp=CompressedTimestamp(0, 2),  # claims 0 received, but acked 1
            origin_site=2,
            op_id="stale",
        )
        with pytest.raises(ConsistencyError):
            session.notifier.on_message(Envelope(source=2, dest=0, payload=bad))


class TestGarbageCollection:
    def test_client_gc_drops_acked_entries(self):
        config = RandomSessionConfig(n_sites=3, ops_per_site=6, seed=4)
        session = StarSession(3, initial_state=config.initial_document)
        drive_star_session(session, config)
        session.run()
        for client in session.clients:
            # A trailing local op stays pending until a later center op
            # acknowledges it, so GC keeps exactly the pending entries.
            pending = len(client.pending)
            removed = client.collect_garbage()
            assert removed == len(client.executed_op_ids) - pending
            assert len(client.hb) == pending
            assert client.hb.op_ids() == [e.op_id for e in client.pending]

    def test_notifier_gc_drops_fully_acked_entries(self):
        session = StarSession(n_sites=2, initial_state="ab")
        session.generate_at(1, Insert("x", 0), at=1.0)
        session.run()
        # client 2 has not sent anything, so its ack horizon is unknown;
        # the broadcast to it is still pending and must be kept.
        assert session.notifier.collect_garbage() == 0
        session.generate_at(2, Insert("y", 0), at=session.sim.now + 1.0)
        session.run()
        # now client 2 acknowledged the first broadcast; only the second
        # operation remains pending (for client 1's horizon).
        removed = session.notifier.collect_garbage()
        assert removed == 1

    def test_gc_preserves_correctness(self):
        """A session that GCs aggressively still converges."""
        config = RandomSessionConfig(n_sites=3, ops_per_site=10, seed=8)
        session = StarSession(3, initial_state=config.initial_document,
                              latency_factory=uniform_latencies(8),
                              verify_with_oracle=False)
        drive_star_session(session, config)
        # interleave GC with the workload
        for t in range(2, 14, 2):
            session.sim.schedule(float(t), session.notifier.collect_garbage)
            for client in session.clients:
                session.sim.schedule(float(t) + 0.1, client.collect_garbage)
        session.run()
        assert session.converged()
