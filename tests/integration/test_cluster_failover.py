"""Live failover over real sockets: seeded chaos, full verdicts.

The acceptance bar of ISSUE 9: a notifier process hard-killed mid-run
must not end the session -- the surviving client processes re-elect
over the wire, the lowest-numbered site promotes itself to the epoch-1
notifier, the others re-dial it with backoff and resync from failover
snapshots, and the run still converges with the merged-trace
happens-before cross-check EXACT across the epoch boundary.  Each test
kills the centre at a different point in the run's life; the timings
are seeded-workload wall-clock points, chosen so the crash lands where
the test name says (generously inside the window, to stay robust on
loaded CI hosts).
"""

from __future__ import annotations

from pathlib import Path

from repro.cluster import ClusterConfig, run_cluster
from repro.cluster.harness import result_path, trace_path


def _assert_survived_by_failover(report, config, tmp_path: Path) -> None:
    """The common bar: converged, EXACT, dead centre absent by design."""
    assert report.ok, report.summary()
    assert report.failover_run
    assert report.cross_check.ok
    assert report.cross_check.pairs_checked > 0
    # The dead centre wrote no result artifact -- but its streamed
    # trace survived and was merged (the driver's note records it).
    assert not result_path(tmp_path, 0).exists()
    assert trace_path(tmp_path, 0).exists()
    assert any("failed over live" in note for note in report.notes)
    # Every survivor converged on the same document.
    assert sorted(report.documents) == list(range(1, config.clients + 1))
    assert len(set(report.documents.values())) == 1


def test_notifier_crash_early_in_run_fails_over(tmp_path: Path) -> None:
    config = ClusterConfig(clients=2, ops_per_client=16, seed=5,
                           time_scale=0.3, timeout_s=25.0,
                           crash_notifier_after_s=0.3)
    _assert_survived_by_failover(run_cluster(config, tmp_path), config,
                                 tmp_path)


def test_notifier_crash_mid_run_fails_over_with_telemetry(
    tmp_path: Path,
) -> None:
    """Mid-run crash with telemetry on: the epoch transition is visible.

    Election, promotion and member resync must land in the health
    streams as ``warn`` verdicts (the cluster *healed*; nothing failed
    terminally) and in the v2 counter gauges the monitor aggregates.
    """
    from repro.obs.monitor import aggregate, run_monitor, scan_dir

    config = ClusterConfig(clients=3, ops_per_client=12, seed=11,
                           time_scale=0.3, timeout_s=25.0,
                           telemetry_interval_s=0.2,
                           crash_notifier_after_s=1.5)
    report = run_cluster(config, tmp_path)
    _assert_survived_by_failover(report, config, tmp_path)

    by_site, health = scan_dir(tmp_path)
    # A healed run has no terminal verdicts anywhere...
    assert not any(e.verdict == "fail" for e in health), health
    kinds = {e.kind for e in health}
    # ...but the whole failover story is on the record: the dead-peer
    # flags, the election on the successor, its promotion, and the
    # members re-homing.
    assert "peer_dead" in kinds
    assert "failover_elected" in kinds
    assert "failover_promoted" in kinds
    assert "failover_rehomed" in kinds
    # The v2 telemetry counters carry the epoch transition: exactly one
    # promotion cluster-wide, and every other survivor resynced.
    snapshot = aggregate(by_site, health)
    assert snapshot.epoch >= 1
    assert snapshot.promoted == 1
    assert snapshot.elected >= 1
    assert snapshot.resynced == config.clients - 1
    # The monitor's CI probe accepts the healed run (exit 0, not 2).
    assert run_monitor(tmp_path, once=True,
                       expect_sites=config.clients + 1,
                       emit=lambda _: None) == 0


def test_udp_sideband_keeps_monitor_fed_through_failover(
    tmp_path: Path,
) -> None:
    """ISSUE 10 acceptance: the monitor survives the gossip hub's death.

    The monitor watches an *empty* directory -- its only input is the
    UDP beacon sideband -- while a cluster crashes its notifier mid-run
    and fails over.  Frames must keep arriving straight through the
    failover window (the TCP gossip hub is dead for all of it), the
    monitor must keep producing snapshot lines, and the artifact's
    provenance counters must prove every frame arrived by datagram:
    files contributed zero.
    """
    import json
    import threading

    from repro.net.beacon import BeaconReceiver
    from repro.obs.monitor import run_monitor

    monitor_dir = tmp_path / "monitor_only"
    monitor_dir.mkdir()
    cluster_dir = tmp_path / "cluster"
    cluster_dir.mkdir()

    lines: list[str] = []
    exit_code: dict[str, int] = {}
    receiver = BeaconReceiver()
    try:
        config = ClusterConfig(clients=3, ops_per_client=12, seed=11,
                               time_scale=0.3, timeout_s=25.0,
                               telemetry_interval_s=0.2,
                               crash_notifier_after_s=1.5,
                               beacon_port=receiver.port)

        def watch() -> None:
            # Idle detection ends the loop a few intervals after the
            # cluster's last datagram; the duration is a backstop only.
            exit_code["monitor"] = run_monitor(
                monitor_dir, interval_s=0.2, duration_s=60.0,
                beacon=receiver, expect_sites=config.clients + 1,
                emit=lines.append,
            )

        monitor = threading.Thread(target=watch)
        monitor.start()
        report = run_cluster(config, cluster_dir)
        monitor.join(timeout=30.0)
        assert not monitor.is_alive()
    finally:
        receiver.close()

    _assert_survived_by_failover(report, config, tmp_path / "cluster")
    assert exit_code["monitor"] == 0
    assert lines, "the monitor never rendered a snapshot"

    artifact = (monitor_dir / "monitor.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in artifact[1:]]
    intervals = [r for r in records if r["rec"] == "interval"]
    # Fresh snapshots from *after* the failover window: the epoch-1
    # frames can only have been minted by the promoted successor, after
    # the original gossip hub was already dead.
    assert any(r["epoch"] >= 1 for r in intervals), \
        "no post-failover frames reached the monitor"
    # Provenance: every frame the monitor saw came in by datagram.
    metrics = [r for r in records if r["rec"] == "metrics"][0]
    assert metrics["counters"]["monitor.frames_from_udp"] > 0
    assert metrics["counters"]["monitor.frames_from_files"] == 0


def test_crash_timer_after_quiescence_is_a_clean_run(tmp_path: Path) -> None:
    """Failover armed but never needed: the timer outlives the session.

    The listening sockets, roster broadcast and DRAINED/GOODBYE
    completion protocol must not perturb a run whose crash never fires.
    """
    config = ClusterConfig(clients=2, ops_per_client=3, seed=3,
                           timeout_s=20.0, crash_notifier_after_s=15.0)
    report = run_cluster(config, tmp_path)
    assert report.ok, report.summary()
    # The centre survived to the end: full artifacts, full execution.
    assert result_path(tmp_path, 0).exists()
    assert sorted(report.documents) == [0, 1, 2]
    assert len(set(report.documents.values())) == 1
    assert all(n >= config.total_ops for n in report.executed_ops.values())
