"""Property-based tests for the OT substrate (hypothesis).

TP1 is the load-bearing property of the whole reproduction: star
convergence follows from it, so it is tested exhaustively-at-random for
both operation models, along with the algebraic laws of the component
model (compose associativity w.r.t. application, inversion) and the
positional/component conversions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ot.component import TextOperation
from repro.ot.operations import apply_operation
from repro.ot.transform import exclusion_transform, inclusion_transform, transform_pair

from .strategies import (
    doc_and_component_chain,
    doc_and_component_pair,
    doc_and_op_pair,
    documents,
    component_op_for,
    positional_op_for,
)


class TestPositionalTP1:
    @given(doc_and_op_pair())
    @settings(max_examples=400)
    def test_tp1_priority_a(self, case):
        doc, a, b = case
        a2, b2 = transform_pair(a, b, a_priority=True)
        assert apply_operation(apply_operation(doc, a), b2) == apply_operation(
            apply_operation(doc, b), a2
        )

    @given(doc_and_op_pair())
    @settings(max_examples=400)
    def test_tp1_priority_b(self, case):
        doc, a, b = case
        a2, b2 = transform_pair(a, b, a_priority=False)
        assert apply_operation(apply_operation(doc, a), b2) == apply_operation(
            apply_operation(doc, b), a2
        )

    @given(doc_and_op_pair())
    @settings(max_examples=200)
    def test_transform_is_priority_symmetric(self, case):
        """swap(transform(a, b, p)) == transform(b, a, not p)."""
        doc, a, b = case
        a2, b2 = transform_pair(a, b, a_priority=True)
        b3, a3 = transform_pair(b, a, a_priority=False)
        assert (a2, b2) == (a3, b3)

    @given(doc_and_op_pair())
    @settings(max_examples=200)
    def test_transformed_ops_remain_applicable(self, case):
        doc, a, b = case
        a2, _ = transform_pair(a, b)
        apply_operation(apply_operation(doc, b), a2)  # must not raise


class TestExclusionProperties:
    @given(doc_and_op_pair())
    @settings(max_examples=300)
    def test_et_undoes_it_when_lossless(self, case):
        """ET(IT(a, b), b) == a whenever IT kept ``a`` primitive and out
        of b's created/destroyed region (the lossless cases)."""
        from repro.ot.operations import Delete, Insert

        doc, a, b = case
        transformed = inclusion_transform(a, b)
        if type(transformed) is not type(a):
            return  # split or annihilated: lossy by design
        # Skip positions relocated into or onto b's region (documented
        # lossy cases; the boundary a.pos == b.end is ambiguous after IT).
        if isinstance(a, Insert) and isinstance(b, Delete):
            if b.pos < a.pos <= b.end:
                return
        if isinstance(a, Delete) and isinstance(b, Delete):
            if not (a.end <= b.pos or a.pos >= b.end):
                return
        restored = exclusion_transform(transformed, b)
        assert restored == a


class TestComponentTP1:
    @given(doc_and_component_pair())
    @settings(max_examples=400)
    def test_tp1_both_priorities(self, case):
        doc, a, b = case
        for priority in (True, False):
            a2, b2 = a.transform(b, self_priority=priority)
            assert b2.apply(a.apply(doc)) == a2.apply(b.apply(doc))

    @given(doc_and_component_pair())
    @settings(max_examples=200)
    def test_transform_preserves_lengths(self, case):
        doc, a, b = case
        a2, b2 = a.transform(b)
        assert a2.base_length == b.target_length
        assert b2.base_length == a.target_length
        assert b2.apply(a.apply(doc)) is not None


class TestComponentAlgebra:
    @given(doc_and_component_chain())
    @settings(max_examples=300)
    def test_compose_equals_sequential_application(self, case):
        doc, ops = case
        composed = ops[0]
        for op in ops[1:]:
            composed = composed.compose(op)
        expected = doc
        for op in ops:
            expected = op.apply(expected)
        assert composed.apply(doc) == expected

    @given(documents.flatmap(lambda d: st.tuples(st.just(d), component_op_for(d))))
    @settings(max_examples=300)
    def test_invert_roundtrip(self, case):
        doc, op = case
        assert op.invert(doc).apply(op.apply(doc)) == doc

    @given(documents.flatmap(lambda d: st.tuples(st.just(d), component_op_for(d))))
    @settings(max_examples=300)
    def test_double_invert_is_identity_effect(self, case):
        doc, op = case
        done = op.apply(doc)
        inverse = op.invert(doc)
        assert inverse.invert(done).apply(doc) == done


class TestModelConversions:
    @given(documents.flatmap(lambda d: st.tuples(st.just(d), positional_op_for(d))))
    @settings(max_examples=300)
    def test_positional_to_component_same_effect(self, case):
        doc, op = case
        component = TextOperation.from_positional(op, len(doc))
        assert component.apply(doc) == op.apply(doc)

    @given(documents.flatmap(lambda d: st.tuples(st.just(d), component_op_for(d))))
    @settings(max_examples=300)
    def test_component_to_positional_same_effect(self, case):
        doc, op = case
        positional = op.to_positional()
        assert apply_operation(doc, positional) == op.apply(doc)
