"""Property tests: histogram merging is exact, not approximate.

The monitor aggregates per-process telemetry by merging histograms
(:meth:`repro.obs.tracer.Histogram.merge`).  The claim worth a property
test is the round-trip: however the cluster's observations are
partitioned across processes, merging the per-process histograms yields
*identical* statistics -- every percentile, not just means -- to one
histogram that saw all observations directly.  Bucketed or
summary-merging schemes cannot make this promise; sample-concatenation
must, and any drift here would silently skew the cluster report.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.tracer import Histogram, MetricsRegistry

values = st.lists(
    st.floats(-1e9, 1e9, allow_nan=False), min_size=0, max_size=60
)
percentiles = st.floats(0.0, 100.0, allow_nan=False)


def partitioned(samples, boundaries):
    """Split ``samples`` into chunks at the (sorted, clamped) boundaries."""
    cuts = sorted(min(b, len(samples)) for b in boundaries)
    parts = []
    start = 0
    for cut in cuts:
        parts.append(samples[start:cut])
        start = cut
    parts.append(samples[start:])
    return parts


class TestHistogramMergeRoundTrip:
    @given(values, st.lists(st.integers(0, 60), max_size=4), percentiles)
    @settings(max_examples=300)
    def test_merge_equals_direct_observation(self, samples, cuts, p):
        direct = Histogram()
        for value in samples:
            direct.observe(value)

        merged = Histogram()
        for part in partitioned(samples, cuts):
            shard = Histogram()
            for value in part:
                shard.observe(value)
            merged.merge(shard)

        assert merged.count == direct.count
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum
        assert merged.mean == direct.mean
        assert merged.percentile(p) == direct.percentile(p)
        # The canonical report percentiles, pinned explicitly.
        for pinned in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert merged.percentile(pinned) == direct.percentile(pinned)

    @given(values, values)
    @settings(max_examples=200)
    def test_merge_leaves_source_untouched(self, left, right):
        a, b = Histogram(), Histogram()
        for value in left:
            a.observe(value)
        for value in right:
            b.observe(value)
        before = list(b.values)
        a.merge(b)
        assert b.values == before
        assert a.count == len(left) + len(right)

    @given(values, st.lists(st.integers(0, 60), max_size=3), percentiles)
    @settings(max_examples=150)
    def test_registry_merge_matches_histogram_merge(self, samples, cuts, p):
        # The registry path the monitor actually uses must agree with
        # the direct histogram: same name, observations spread across
        # shard registries.
        direct = Histogram()
        for value in samples:
            direct.observe(value)
        merged = MetricsRegistry()
        for part in partitioned(samples, cuts):
            shard = MetricsRegistry()
            for value in part:
                shard.observe("telemetry.gauge", value)
            merged.merge(shard)
        hist = merged.histogram("telemetry.gauge")
        assert hist.count == direct.count
        assert hist.percentile(p) == direct.percentile(p)
