"""Property tests for notifier failover under randomized fault plans.

Every drawn plan contains exactly one mid-workload notifier crash, plus
random message loss/duplication and an optional client crash/restart.
Whatever the draw, the session must converge with the full-vector-clock
oracle verifying every compressed concurrency verdict inline, the
transport must release gap-free FIFO streams, and the happens-before
relation recovered from the trace must match the ground-truth event log
-- across the notifier epoch boundary when a promotion happened.

Detection is activity-triggered, so draws whose edits all settle before
the crash legitimately end without a promotion; the properties hold
either way (the interesting draws are the ones that do fail over).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan, NotifierCrash
from repro.net.reliability import ReliabilityConfig
from repro.obs import TraceCausality, cross_check_causality, verify_check_records
from repro.obs.tracer import Tracer
from repro.workloads.random_session import RandomSessionConfig, drive_star_session

# A small retransmit budget so crash detection fires within seconds of
# virtual time; the production default takes ~a minute of silence.
FAST_DETECT = ReliabilityConfig(max_retries=4)

failover_params = st.fixed_dictionaries(
    {
        "n_sites": st.integers(2, 4),
        "ops_per_site": st.integers(1, 5),
        "workload_seed": st.integers(0, 10**6),
        "fault_seed": st.integers(0, 10**6),
        "drop_p": st.sampled_from([0.0, 0.05, 0.1]),
        "dup_p": st.sampled_from([0.0, 0.05]),
        "client_crash": st.booleans(),
        "notifier_crash_at": st.sampled_from([1.2, 1.8, 2.5]),
        "standby": st.booleans(),
    }
)


def build_plan(params) -> FaultPlan:
    crashes = ()
    if params["client_crash"]:
        site = 1 + params["fault_seed"] % params["n_sites"]
        crashes = (ClientCrash(site=site, at=2.0, restart_at=4.5),)
    return FaultPlan(
        seed=params["fault_seed"],
        default=ChannelFaults(drop_p=params["drop_p"], dup_p=params["dup_p"]),
        crashes=crashes,
        notifier_crash=NotifierCrash(at=params["notifier_crash_at"]),
    )


def run_session(params) -> StarSession:
    def latency_factory(src, dst):
        return UniformLatency(
            0.02, 0.2, random.Random(params["fault_seed"] * 31 + src * 7 + dst)
        )

    tracer = Tracer()
    session = StarSession(
        params["n_sites"],
        latency_factory=latency_factory,
        verify_with_oracle=True,
        fault_plan=build_plan(params),
        reliability=FAST_DETECT,
        standby_site=params["n_sites"] if params["standby"] else None,
        tracer=tracer,
    )
    config = RandomSessionConfig(
        n_sites=params["n_sites"],
        ops_per_site=params["ops_per_site"],
        seed=params["workload_seed"],
    )
    drive_star_session(session, config)
    session.run()
    return session


def broadcasts_stranded_at_crash(session: StarSession) -> bool:
    """True iff the dead centre still held undelivered broadcasts.

    Detection is activity-triggered (DESIGN §3.2): a client only
    declares the centre dead when its *own* retransmit budget toward it
    runs out.  If, at crash time, every client's uploads were already
    acknowledged and the only in-flight traffic was centre→client, no
    budget ever runs out, no promotion happens, and whatever the crash
    ate stays lost — the protocol's documented liveness gap.  Such
    draws cannot promise convergence; the property below scopes its
    convergence claim by this predicate.  ``go_down()`` voids the link
    state, so the count is snapshotted into the endpoint's stats at
    crash time rather than read from the (cleared) send windows.
    """
    return session.notifier.transport.stats.stranded_at_crash > 0


class TestFailoverProperties:
    @given(failover_params)
    @settings(max_examples=20, deadline=None)
    def test_converges_with_oracle_across_any_failover(self, params):
        session = run_session(params)  # ConsistencyError on oracle mismatch
        assert session.quiescent()
        assert session.reliable_delivery_in_order()
        if session.promoted_notifier is not None:
            assert session.promoted_notifier.notifier_epoch == 1
            assert session.fault_report().promotions == 1
            assert session.converged(), session.documents()
        elif not broadcasts_stranded_at_crash(session):
            # No promotion and nothing stranded: the crash was silent
            # (everything had settled), so replicas must agree.
            assert session.converged(), session.documents()

    @given(failover_params)
    @settings(max_examples=12, deadline=None)
    def test_trace_happens_before_matches_ground_truth(self, params):
        session = run_session(params)
        causality = TraceCausality(session.tracer.events)
        report = cross_check_causality(causality, session.event_log)
        assert report.ok, report.summary()
        assert verify_check_records(causality, session.all_checks()) == []
