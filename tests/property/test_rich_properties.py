"""Property tests for the rich-text OT type."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ot.rich import RichOperation, plain

ATTRS = ["bold", "italic", "underline", "mono"]

attr_sets = st.frozensets(st.sampled_from(ATTRS), max_size=2)

rich_documents = st.lists(
    st.tuples(st.sampled_from(string.ascii_lowercase), attr_sets),
    max_size=25,
).map(tuple)


@st.composite
def rich_op_for(draw, doc):
    op = RichOperation()
    remaining = len(doc)
    while remaining > 0:
        kind = draw(st.sampled_from(["retain", "format", "insert", "delete"]))
        if kind == "insert":
            text = draw(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4))
            op.insert(text, draw(attr_sets))
            continue
        span = draw(st.integers(1, remaining))
        if kind == "retain":
            op.retain(span)
        elif kind == "format":
            add = draw(attr_sets)
            remove = draw(attr_sets) - add
            op.retain(span, add=add, remove=remove)
        else:
            op.delete(span)
        remaining -= span
    if draw(st.booleans()):
        op.insert(draw(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3)))
    return op


@st.composite
def doc_and_rich_pair(draw):
    doc = draw(rich_documents)
    return doc, draw(rich_op_for(doc)), draw(rich_op_for(doc))


class TestRichInvert:
    @given(rich_documents.flatmap(lambda d: st.tuples(st.just(d), rich_op_for(d))))
    @settings(max_examples=250)
    def test_invert_roundtrip(self, case):
        doc, op = case
        assert op.invert(doc).apply(op.apply(doc)) == doc


class TestRichTP1:
    @given(doc_and_rich_pair())
    @settings(max_examples=400)
    def test_tp1_both_priorities(self, case):
        doc, a, b = case
        for priority in (True, False):
            a2, b2 = a.transform(b, self_priority=priority)
            left = b2.apply(a.apply(doc))
            right = a2.apply(b.apply(doc))
            assert left == right

    @given(doc_and_rich_pair())
    @settings(max_examples=150)
    def test_priority_symmetry(self, case):
        """swap(transform(a, b, p)) == transform(b, a, not p)."""
        doc, a, b = case
        del doc
        a2, b2 = a.transform(b, self_priority=True)
        b3, a3 = b.transform(a, self_priority=False)
        assert (a2, b2) == (a3, b3)

    @given(doc_and_rich_pair())
    @settings(max_examples=150)
    def test_content_preservation(self, case):
        """Neither execution order loses or duplicates surviving text:
        characters retained by both operations appear exactly once, and
        both inserts appear exactly once.

        (Note: the rich and plain component models are NOT byte-for-byte
        interchangeable -- ``TextOperation`` canonicalises
        insert-before-delete, which re-anchors inserts relative to
        concurrent ones.  Each model satisfies TP1 on its own; sessions
        must simply not mix them, which the type registry enforces.)
        """
        from repro.ot.rich import InsertRich, Retain, to_string

        doc, a, b = case
        a2, b2 = a.transform(b)
        merged = to_string(b2.apply(a.apply(doc)))

        def inserted(op):
            return "".join(
                c.text for c in op.components if isinstance(c, InsertRich)
            )

        expected_length = len(inserted(a)) + len(inserted(b))
        # characters both sides retained survive
        index = 0
        survivors = 0
        for c_a, c_b in _aligned_spans(a, b):
            if isinstance(c_a, Retain) and isinstance(c_b, Retain):
                survivors += c_a.count
        assert len(merged) == expected_length + survivors


def _aligned_spans(a, b):
    """Pair up the base-document spans of two operations."""
    from repro.ot.rich import InsertRich

    def spans(op):
        for c in op.components:
            if isinstance(c, InsertRich):
                continue
            for _ in range(c.count):
                yield c.take(1)[0] if hasattr(c, "take") else c

    return zip(spans(a), spans(b))
