"""System-level property tests (hypothesis over whole sessions).

The headline property of the reproduction: **on every randomly generated
star session, every concurrency verdict produced by the compressed
2-element timestamps equals the verdict of full N-element vector clocks**
(the session raises ``ConsistencyError`` on any disagreement because the
oracle runs inline), and all replicas converge.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.causality import CausalityOracle
from repro.editor.mesh import MeshSession
from repro.editor.star import StarSession
from repro.net.channel import FixedLatency, JitterLatency, UniformLatency
from repro.workloads.random_session import (
    RandomSessionConfig,
    drive_mesh_session,
    drive_star_session,
    drive_star_session_component,
    drive_star_session_list,
)

session_params = st.fixed_dictionaries(
    {
        "n_sites": st.integers(1, 6),
        "ops_per_site": st.integers(0, 8),
        "seed": st.integers(0, 10**6),
        "insert_ratio": st.sampled_from([0.3, 0.5, 0.7, 1.0]),
        "latency_style": st.sampled_from(["fixed", "uniform", "jitter"]),
    }
)


def latency_factory(style, seed):
    if style == "fixed":
        return lambda s, d: FixedLatency(0.2)
    if style == "uniform":
        return lambda s, d: UniformLatency(0.01, 1.5, random.Random(seed * 31 + s * 7 + d))
    return lambda s, d: JitterLatency(0.1, 0.8, random.Random(seed * 31 + s * 7 + d))


def build_star(params, verify=True):
    config = RandomSessionConfig(
        n_sites=params["n_sites"],
        ops_per_site=params["ops_per_site"],
        seed=params["seed"],
        insert_ratio=params["insert_ratio"],
    )
    session = StarSession(
        params["n_sites"],
        initial_state=config.initial_document,
        latency_factory=latency_factory(params["latency_style"], params["seed"]),
        verify_with_oracle=verify,
    )
    drive_star_session(session, config)
    return session, config


class TestStarSessionProperties:
    @given(session_params)
    @settings(max_examples=60, deadline=None)
    def test_compressed_verdicts_match_oracle_and_converge(self, params):
        session, _ = build_star(params)  # ConsistencyError on any mismatch
        session.run()
        assert session.quiescent()
        assert session.converged(), session.documents()

    @given(session_params)
    @settings(max_examples=40, deadline=None)
    def test_fifo_never_violated(self, params):
        session, _ = build_star(params, verify=False)
        session.run()
        assert session.topology.fifo_respected()

    @given(session_params)
    @settings(max_examples=40, deadline=None)
    def test_timestamp_overhead_constant(self, params):
        session, _ = build_star(params, verify=False)
        session.run()
        stats = session.wire_stats()
        assert stats.timestamp_bytes == 8 * stats.messages

    @given(session_params)
    @settings(max_examples=30, deadline=None)
    def test_determinism_same_seed_same_outcome(self, params):
        a, _ = build_star(params, verify=False)
        a.run()
        b, _ = build_star(params, verify=False)
        b.run()
        assert a.documents() == b.documents()
        assert [c.sv.as_paper_list() for c in a.clients] == [
            c.sv.as_paper_list() for c in b.clients
        ]

    @given(session_params)
    @settings(max_examples=30, deadline=None)
    def test_state_vector_accounting(self, params):
        """SV invariants at quiescence: every op counted exactly once."""
        session, config = build_star(params, verify=False)
        session.run()
        total = params["n_sites"] * params["ops_per_site"]
        assert session.notifier.sv.total() == total
        for client in session.clients:
            assert client.sv.generated_locally == params["ops_per_site"]
            # received = everything executed at the notifier minus own ops
            assert client.sv.received_from_center == total - params["ops_per_site"]

    @given(session_params)
    @settings(max_examples=25, deadline=None)
    def test_ground_truth_concurrency_is_symmetric_and_irreflexive(self, params):
        session, _ = build_star(params, verify=False)
        session.run()
        if session.event_log is None or not session.event_log.op_ids():
            return
        oracle = CausalityOracle(session.event_log)
        ops = session.event_log.op_ids()[:12]
        for a in ops:
            assert not oracle.concurrent(a, a)
            for b in ops:
                assert oracle.concurrent(a, b) == oracle.concurrent(b, a)


class TestOtherTypeSessionProperties:
    """The same convergence + oracle property over other OT types."""

    @given(session_params)
    @settings(max_examples=30, deadline=None)
    def test_component_text_sessions(self, params):
        config = RandomSessionConfig(
            n_sites=params["n_sites"],
            ops_per_site=params["ops_per_site"],
            seed=params["seed"],
            insert_ratio=params["insert_ratio"],
        )
        session = StarSession(
            params["n_sites"],
            ot_type_name="text-component",
            initial_state=config.initial_document,
            latency_factory=latency_factory(params["latency_style"], params["seed"]),
            verify_with_oracle=True,
        )
        drive_star_session_component(session, config)
        session.run()
        assert session.quiescent()
        assert session.converged(), session.documents()

    @given(session_params)
    @settings(max_examples=30, deadline=None)
    def test_list_sessions(self, params):
        config = RandomSessionConfig(
            n_sites=params["n_sites"],
            ops_per_site=params["ops_per_site"],
            seed=params["seed"],
            insert_ratio=params["insert_ratio"],
        )
        session = StarSession(
            params["n_sites"],
            ot_type_name="list",
            latency_factory=latency_factory(params["latency_style"], params["seed"]),
            verify_with_oracle=True,
        )
        drive_star_session_list(session, config)
        session.run()
        assert session.quiescent()
        assert session.converged(), session.documents()


class TestMeshSessionProperties:
    @given(
        st.fixed_dictionaries(
            {
                "n_sites": st.integers(2, 4),
                "ops_per_site": st.integers(0, 5),
                "seed": st.integers(0, 10**6),
            }
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_mesh_converges_on_random_sessions(self, params):
        config = RandomSessionConfig(
            n_sites=params["n_sites"],
            ops_per_site=params["ops_per_site"],
            seed=params["seed"],
        )
        session = MeshSession(
            params["n_sites"],
            initial_document=config.initial_document,
            latency_factory=latency_factory("uniform", params["seed"]),
        )
        drive_mesh_session(session, config)
        session.run()
        assert session.quiescent()
        assert session.converged(), session.documents()

    @given(st.integers(2, 6), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_mesh_timestamp_overhead_linear_in_n(self, n_sites, seed):
        config = RandomSessionConfig(n_sites=n_sites, ops_per_site=2, seed=seed)
        session = MeshSession(n_sites, initial_document=config.initial_document)
        drive_mesh_session(session, config)
        session.run()
        stats = session.wire_stats()
        assert stats.timestamp_bytes == stats.messages * 4 * n_sites
