"""Property tests for the clock substrate (vector clocks, SK, FZ)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.fz import FZProcess, reconstruct_vector_times
from repro.clocks.sk import SKProcess
from repro.clocks.vector import Ordering, VectorClock, compare

clock_entries = st.lists(st.integers(0, 20), min_size=1, max_size=8)


def clocks_same_size(n):
    return st.lists(st.integers(0, 20), min_size=n, max_size=n).map(VectorClock.of)


@st.composite
def clock_pair(draw):
    n = draw(st.integers(1, 8))
    return draw(clocks_same_size(n)), draw(clocks_same_size(n))


@st.composite
def clock_triple(draw):
    n = draw(st.integers(1, 6))
    gen = clocks_same_size(n)
    return draw(gen), draw(gen), draw(gen)


class TestVectorClockAlgebra:
    @given(clock_pair())
    def test_compare_antisymmetric(self, pair):
        a, b = pair
        fwd, back = compare(a, b), compare(b, a)
        opposite = {
            Ordering.BEFORE: Ordering.AFTER,
            Ordering.AFTER: Ordering.BEFORE,
            Ordering.CONCURRENT: Ordering.CONCURRENT,
            Ordering.EQUAL: Ordering.EQUAL,
        }
        assert back is opposite[fwd]

    @given(clock_pair())
    def test_merge_commutative_and_dominating(self, pair):
        a, b = pair
        merged = a.merge(b)
        assert merged == b.merge(a)
        assert merged.dominates(a) and merged.dominates(b)

    @given(clock_triple())
    def test_merge_associative(self, triple):
        a, b, c = triple
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(clock_triple())
    def test_happened_before_transitive(self, triple):
        a, b, c = triple
        if compare(a, b) is Ordering.BEFORE and compare(b, c) is Ordering.BEFORE:
            assert compare(a, c) is Ordering.BEFORE

    @given(clock_pair(), st.integers(0, 7))
    def test_tick_breaks_domination(self, pair, idx):
        a, _ = pair
        idx = idx % len(a)
        ticked = a.tick(idx)
        assert compare(a, ticked) is Ordering.BEFORE


@st.composite
def message_trace(draw):
    """A random (sender, dest) trace over n processes."""
    n = draw(st.integers(2, 6))
    length = draw(st.integers(0, 60))
    trace = []
    for _ in range(length):
        sender = draw(st.integers(0, n - 1))
        dest = draw(st.integers(0, n - 2))
        if dest >= sender:
            dest += 1
        trace.append((sender, dest))
    return n, trace


class TestSKEquivalence:
    @given(message_trace())
    @settings(max_examples=100, deadline=None)
    def test_sk_reconstructs_full_vectors(self, case):
        """After any FIFO trace, every SK process holds exactly the
        vector the textbook full-vector protocol would hold."""
        n, trace = case
        sk = [SKProcess(pid, n) for pid in range(n)]
        full = [VectorClock.zero(n) for _ in range(n)]
        for sender, dest in trace:
            message = sk[sender].prepare_send(dest)
            full[sender] = full[sender].tick(sender)
            sk[dest].receive(message)
            full[dest] = full[dest].merge(full[sender]).tick(dest)
        for pid in range(n):
            assert sk[pid].vector() == full[pid]

    @given(message_trace())
    @settings(max_examples=60, deadline=None)
    def test_sk_never_sends_more_than_n_entries(self, case):
        n, trace = case
        sk = [SKProcess(pid, n) for pid in range(n)]
        for sender, dest in trace:
            message = sk[sender].prepare_send(dest)
            assert message.entry_count() <= n
            sk[dest].receive(message)


class TestFZEquivalence:
    @given(message_trace())
    @settings(max_examples=60, deadline=None)
    def test_fz_offline_reconstruction_matches_full_vectors(self, case):
        n, trace = case
        fz = [FZProcess(pid, n) for pid in range(n)]
        full = [VectorClock.zero(n) for _ in range(n)]
        expected = {}
        for sender, dest in trace:
            message, record = fz[sender].prepare_send()
            full[sender] = full[sender].tick(sender)
            expected[(sender, record.index)] = full[sender]
            rec2 = fz[dest].receive(message)
            full[dest] = full[dest].merge(full[sender]).tick(dest)
            expected[(dest, rec2.index)] = full[dest]
        assert reconstruct_vector_times(fz) == expected
