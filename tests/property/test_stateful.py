"""Hypothesis stateful testing: adversarial interleavings of everything.

Two rule-based machines drive live star sessions through arbitrary
interleavings of the system's moving parts -- local edits at any client,
partial simulation advances (messages stay in flight between rules),
undo, garbage collection, and late joins -- checking the global
invariants after every step:

* FIFO is never violated on any channel;
* timestamp traffic is 8 bytes/message whatever happened;
* whenever the system is quiescent, all replicas are identical;
* with fixed membership, every concurrency verdict agrees with the
  full-vector oracle (enforced inline by ``verify_with_oracle``).
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.editor.star import StarSession, UndoError
from repro.workloads.random_session import RandomSessionConfig, random_positional_op

CONFIG = RandomSessionConfig(n_sites=4, initial_document="The five boxing wizards")


class StarMachine(RuleBasedStateMachine):
    """Fixed membership, oracle on: the strictest configuration."""

    def __init__(self):
        super().__init__()
        self.session = StarSession(
            4,
            initial_state=CONFIG.initial_document,
            verify_with_oracle=True,
        )

    @rule(site=st.integers(1, 4), seed=st.integers(0, 2**16))
    def edit(self, site, seed):
        client = self.session.client(site)
        rng = random.Random(seed)
        client.generate(random_positional_op(rng, client.document, CONFIG))

    @rule(delta=st.floats(0.01, 0.2))
    def let_time_pass(self, delta):
        self.session.sim.run(until=self.session.sim.now + delta)

    @rule()
    def drain(self):
        self.session.run()

    @rule(site=st.integers(1, 4))
    def undo(self, site):
        try:
            self.session.client(site).undo_last()
        except UndoError:
            pass  # nothing undoable right now -- fine

    @rule(site=st.integers(1, 4))
    def collect_garbage(self, site):
        self.session.client(site).collect_garbage()
        self.session.notifier.collect_garbage()

    @invariant()
    def fifo_holds(self):
        assert self.session.topology.fifo_respected()

    @invariant()
    def timestamps_constant(self):
        stats = self.session.wire_stats()
        assert stats.timestamp_bytes == 8 * stats.messages

    @invariant()
    def quiescent_implies_converged(self):
        if self.session.quiescent():
            assert self.session.converged(), self.session.documents()


class StarMembershipMachine(RuleBasedStateMachine):
    """Dynamic membership (joins racing traffic), oracle off."""

    MAX_SITES = 8

    def __init__(self):
        super().__init__()
        self.session = StarSession(
            2,
            initial_state=CONFIG.initial_document,
            record_events=False,
            record_checks=False,
        )

    @rule(pick=st.integers(0, 10**6), seed=st.integers(0, 2**16))
    def edit(self, pick, seed):
        client = self.session.clients[pick % len(self.session.clients)]
        if not client.active:
            return  # joiner still waiting for its snapshot
        rng = random.Random(seed)
        client.generate(random_positional_op(rng, client.document, CONFIG))

    @rule()
    def join(self):
        if len(self.session.clients) < self.MAX_SITES:
            self.session.add_client(at=self.session.sim.now)

    @rule(delta=st.floats(0.01, 0.2))
    def let_time_pass(self, delta):
        self.session.sim.run(until=self.session.sim.now + delta)

    @rule()
    def drain(self):
        self.session.run()

    @invariant()
    def fifo_holds(self):
        assert self.session.topology.fifo_respected()

    @invariant()
    def quiescent_implies_converged(self):
        if not self.session.quiescent():
            return
        docs = [self.session.notifier.document] + [
            c.document for c in self.session.clients if c.active
        ]
        assert all(doc == docs[0] for doc in docs), docs


TestStarMachine = StarMachine.TestCase
TestStarMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestStarMembershipMachine = StarMembershipMachine.TestCase
TestStarMembershipMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
