"""Shared hypothesis strategies for the property suites."""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.ot.component import TextOperation
from repro.ot.operations import Delete, Insert

documents = st.text(alphabet=string.ascii_letters + string.digits + " ", max_size=40)

_short_text = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)


@st.composite
def positional_op_for(draw, doc: str):
    """A valid positional operation on ``doc``."""
    n = len(doc)
    if n == 0 or draw(st.booleans()):
        return Insert(draw(_short_text), draw(st.integers(0, n)))
    pos = draw(st.integers(0, n - 1))
    count = draw(st.integers(1, n - pos))
    return Delete(count, pos)


@st.composite
def doc_and_op_pair(draw):
    """A document plus two operations both defined on it."""
    doc = draw(documents)
    return doc, draw(positional_op_for(doc)), draw(positional_op_for(doc))


@st.composite
def component_op_for(draw, doc: str):
    """A valid component operation on ``doc`` (random span structure)."""
    op = TextOperation()
    remaining = len(doc)
    while remaining > 0:
        kind = draw(st.sampled_from(["retain", "insert", "delete"]))
        if kind == "insert":
            op.insert(draw(_short_text))
        else:
            span = draw(st.integers(1, remaining))
            if kind == "retain":
                op.retain(span)
            else:
                op.delete(span)
            remaining -= span
    if draw(st.booleans()):
        op.insert(draw(_short_text))
    return op


@st.composite
def doc_and_component_pair(draw):
    doc = draw(documents)
    return doc, draw(component_op_for(doc)), draw(component_op_for(doc))


@st.composite
def doc_and_component_chain(draw):
    """A document plus a chain of sequentially applicable operations."""
    doc = draw(documents)
    ops = []
    current = doc
    for _ in range(draw(st.integers(1, 4))):
        op = draw(component_op_for(current))
        ops.append(op)
        current = op.apply(current)
    return doc, ops
