"""Property tests for the reliability layer under seeded fault plans.

For every randomly drawn session-and-fault-plan pair: the session runs
with the full-vector-clock oracle inline (any compressed-verdict
mismatch raises), every replica converges, the raw network never
reorders what it delivers (``fifo_respected``), and the reliability
layer hands each endpoint a gap-free in-order stream
(``reliable_delivery_in_order``) -- i.e. the protocol reconstructs
exactly the FIFO precondition formulas (5) and (7) need, no matter what
the fault plan destroys.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan
from repro.workloads.random_session import RandomSessionConfig, drive_star_session

fault_session_params = st.fixed_dictionaries(
    {
        "n_sites": st.integers(2, 4),
        "ops_per_site": st.integers(1, 6),
        "workload_seed": st.integers(0, 10**6),
        "fault_seed": st.integers(0, 10**6),
        "drop_p": st.sampled_from([0.0, 0.05, 0.1, 0.2]),
        "dup_p": st.sampled_from([0.0, 0.05, 0.1]),
        "crash": st.booleans(),
    }
)


def build_plan(params) -> FaultPlan:
    crashes = ()
    if params["crash"]:
        # crash a mid-session site while traffic is still in flight
        site = 1 + params["fault_seed"] % params["n_sites"]
        crashes = (ClientCrash(site=site, at=2.0, restart_at=4.5),)
    return FaultPlan(
        seed=params["fault_seed"],
        default=ChannelFaults(drop_p=params["drop_p"], dup_p=params["dup_p"]),
        crashes=crashes,
    )


def run_session(params) -> StarSession:
    def latency_factory(src, dst):
        return UniformLatency(
            0.02, 0.25, random.Random(params["fault_seed"] * 31 + src * 7 + dst)
        )

    session = StarSession(
        params["n_sites"],
        latency_factory=latency_factory,
        verify_with_oracle=True,
        fault_plan=build_plan(params),
    )
    config = RandomSessionConfig(
        n_sites=params["n_sites"],
        ops_per_site=params["ops_per_site"],
        seed=params["workload_seed"],
    )
    drive_star_session(session, config)
    session.run()
    return session


class TestFaultToleranceProperties:
    @given(fault_session_params)
    @settings(max_examples=25, deadline=None)
    def test_converges_with_oracle_under_any_plan(self, params):
        session = run_session(params)  # ConsistencyError on any oracle mismatch
        assert session.quiescent()
        assert session.converged(), session.documents()

    @given(fault_session_params)
    @settings(max_examples=25, deadline=None)
    def test_fifo_and_in_order_release_under_any_plan(self, params):
        session = run_session(params)
        # every physical channel: delivered stream is a prefix-order
        # subsequence of the sent stream (drops leave gaps, never swaps)
        assert session.topology.fifo_respected()
        # every endpoint: the reliability layer released a gap-free stream
        assert session.reliable_delivery_in_order()

    @given(fault_session_params)
    @settings(max_examples=10, deadline=None)
    def test_replay_is_deterministic(self, params):
        a, b = run_session(params), run_session(params)
        assert a.documents() == b.documents()
        assert a.notifier.executed_op_ids == b.notifier.executed_op_ids
        assert a.fault_report() == b.fault_report()

    @given(fault_session_params)
    @settings(max_examples=15, deadline=None)
    def test_losses_imply_retransmits(self, params):
        session = run_session(params)
        report = session.fault_report()
        # Only lost *data* packets force recovery work: a lost pure ack
        # (report.lost_acks) is healed by any later cumulative ack
        # without retransmission.  And a crash voids the crashed
        # incarnation's unacked windows (sender- and notifier-side, via
        # the epoch bump), so a loss just before a crash may legitimately
        # never be retransmitted -- the implication holds crash-free.
        if report.lost > 0 and not params["crash"]:
            assert report.retransmits > 0
        if params["drop_p"] == 0.0 and params["dup_p"] == 0.0 and not params["crash"]:
            assert report.lost == 0 and report.lost_acks == 0
            assert report.retransmits == 0
