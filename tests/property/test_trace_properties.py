"""Property tests for recorded traces under seeded fault plans.

For every randomly drawn session-and-fault-plan pair, the recorded
trace must be *structurally sound*:

* every ``RELEASED`` event is either a direct in-order delivery or has
  a matching earlier ``HELD_BACK`` event for the same (site, peer,
  epoch, seq) slot (:func:`repro.obs.released_without_cause`);
* every executed operation has a generation event earlier in the trace
  (``TraceCausality`` raises otherwise);
* the reconstructed happens-before relation matches the ground-truth
  oracle exactly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan
from repro.obs import (
    TraceCausality,
    Tracer,
    cross_check_causality,
    released_without_cause,
)
from repro.workloads.random_session import RandomSessionConfig, drive_star_session

trace_session_params = st.fixed_dictionaries(
    {
        "n_sites": st.integers(2, 4),
        "ops_per_site": st.integers(1, 6),
        "workload_seed": st.integers(0, 10**6),
        "fault_seed": st.integers(0, 10**6),
        "drop_p": st.sampled_from([0.0, 0.05, 0.2]),
        "dup_p": st.sampled_from([0.0, 0.05]),
        "crash": st.booleans(),
    }
)


def build_plan(params) -> FaultPlan:
    crashes = ()
    if params["crash"]:
        site = 1 + params["fault_seed"] % params["n_sites"]
        crashes = (ClientCrash(site=site, at=2.0, restart_at=4.5),)
    return FaultPlan(
        seed=params["fault_seed"],
        default=ChannelFaults(drop_p=params["drop_p"], dup_p=params["dup_p"]),
        crashes=crashes,
    )


def run_traced(params):
    def latency_factory(src, dst):
        return UniformLatency(
            0.02, 0.2, random.Random(params["fault_seed"] * 1009 + src * 13 + dst)
        )

    tracer = Tracer()
    session = StarSession(
        params["n_sites"],
        latency_factory=latency_factory,
        verify_with_oracle=True,
        fault_plan=build_plan(params),
        tracer=tracer,
    )
    drive_star_session(
        session,
        RandomSessionConfig(
            n_sites=params["n_sites"],
            ops_per_site=params["ops_per_site"],
            seed=params["workload_seed"],
        ),
    )
    session.run()
    assert session.converged(), session.documents()
    return session, tracer


@settings(max_examples=25, deadline=None)
@given(params=trace_session_params)
def test_every_release_has_a_cause(params):
    _, tracer = run_traced(params)
    assert released_without_cause(tracer.events) == []


@settings(max_examples=25, deadline=None)
@given(params=trace_session_params)
def test_trace_happens_before_matches_oracle(params):
    session, tracer = run_traced(params)
    # Construction itself asserts every execution has a prior generation.
    causality = TraceCausality(tracer.events)
    report = cross_check_causality(causality, session.event_log)
    assert report.ok, report.summary()
