"""Property tests: the wire codec and the at-rest trace format."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestamp import CompressedTimestamp
from repro.editor.recorder import TraceEntry, op_from_json, op_to_json
from repro.editor.star import OpMessage
from repro.net.codec import (
    Reader,
    Writer,
    decode_op_message,
    decode_operation,
    encode_op_message,
    encode_operation,
)
from repro.ot.operations import Delete, Identity, Insert, OperationGroup

short_text = st.text(alphabet=string.printable, max_size=12)

primitive_ops = st.one_of(
    st.builds(Insert, text=short_text, pos=st.integers(0, 10**6)),
    st.builds(Delete, count=st.integers(0, 10**6), pos=st.integers(0, 10**6)),
    st.just(Identity()),
)

operations = st.recursive(
    primitive_ops,
    lambda children: st.lists(children, min_size=1, max_size=4).map(
        lambda members: OperationGroup(tuple(members))
    ),
    max_leaves=6,
)

timestamps = st.builds(
    CompressedTimestamp,
    first=st.integers(0, 2**32 - 1),
    second=st.integers(0, 2**32 - 1),
)

op_ids = st.text(alphabet=string.ascii_letters + string.digits + "_'", min_size=1, max_size=16)

messages = st.builds(
    OpMessage,
    op=operations,
    timestamp=timestamps,
    origin_site=st.integers(0, 10**4),
    op_id=op_ids,
    source_op_id=st.one_of(st.none(), op_ids),
    # The origin wall-clock stamp rides in the versioned trailer; f64 on
    # the wire is exactly a Python float, so any finite value must
    # round-trip bit-for-bit (None = no trailer at all).
    origin_wall=st.one_of(
        st.none(), st.floats(allow_nan=False, allow_infinity=False)
    ),
)


class TestCodecProperties:
    @given(operations)
    @settings(max_examples=300)
    def test_operation_roundtrip(self, op):
        writer = Writer()
        encode_operation(op, writer)
        reader = Reader(writer.getvalue())
        assert decode_operation(reader) == op
        assert reader.done()

    @given(messages)
    @settings(max_examples=300)
    def test_message_roundtrip(self, message):
        assert decode_op_message(encode_op_message(message)) == message

    @given(messages)
    @settings(max_examples=150)
    def test_timestamp_bytes_constant_within_encoding(self, message):
        """Whatever the operation, the timestamp region is 8 bytes."""
        wire = encode_op_message(message)
        # the timestamp is the first field: 8 bytes, big-endian
        first = int.from_bytes(wire[0:4], "big")
        second = int.from_bytes(wire[4:8], "big")
        assert (first, second) == (message.timestamp.first, message.timestamp.second)


class TestTraceProperties:
    @given(operations)
    @settings(max_examples=200)
    def test_json_op_roundtrip(self, op):
        assert op_from_json(op_to_json(op)) == op

    @given(
        st.builds(
            TraceEntry,
            site=st.integers(1, 100),
            time=st.floats(0, 10**6, allow_nan=False),
            op_id=op_ids,
            op=operations,
        )
    )
    @settings(max_examples=200)
    def test_trace_entry_roundtrip(self, entry):
        assert TraceEntry.from_json(entry.to_json()) == entry
