#!/usr/bin/env python
"""A larger collaborative-editing session with overhead accounting.

Simulates N users typing concurrently through the notifier over jittery
Internet-like latencies, verifies convergence, then runs the *same*
workload through the fully-distributed mesh baseline and compares the
timestamp overhead -- the paper's Section 6 claim, measured end to end.

Run:  python examples/collaborative_session.py [n_users] [ops_per_user]
"""

import random
import sys

from repro.editor.mesh import MeshSession
from repro.editor.star import StarSession
from repro.net.channel import JitterLatency
from repro.workloads.random_session import (
    RandomSessionConfig,
    drive_mesh_session,
    drive_star_session,
)


def latency_factory(seed):
    def factory(src, dst):
        return JitterLatency(0.08, 0.7, random.Random(seed * 97 + src * 11 + dst))

    return factory


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    ops_per_user = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    config = RandomSessionConfig(
        n_sites=n_users, ops_per_site=ops_per_user, seed=2026, insert_ratio=0.7
    )
    total_ops = n_users * ops_per_user
    print(f"{n_users} users x {ops_per_user} edits = {total_ops} operations")
    print(f"initial document: {config.initial_document!r}\n")

    # -- star / compressed vector clocks -----------------------------------
    star = StarSession(
        n_users,
        initial_state=config.initial_document,
        latency_factory=latency_factory(1),
        verify_with_oracle=True,  # every verdict checked against full VCs
    )
    drive_star_session(star, config)
    star.run()
    assert star.converged(), "star session failed to converge!"
    star_stats = star.wire_stats()
    print("star + compressed vector clocks (the paper's system)")
    print(f"  final document ({len(star.notifier.document)} chars): "
          f"{star.notifier.document[:60]!r}...")
    print(f"  converged: {star.converged()}  "
          f"(all {total_ops * (n_users + 1)} concurrency verdicts oracle-verified)")
    print(f"  messages            : {star_stats.messages}")
    print(f"  timestamp bytes     : {star_stats.timestamp_bytes} "
          f"({star_stats.timestamp_bytes / star_stats.messages:.0f} per message)")
    print(f"  total wire bytes    : {star_stats.total_bytes}\n")

    # -- mesh / full vector clocks ------------------------------------------
    if n_users >= 2:
        mesh = MeshSession(
            n_users,
            initial_document=config.initial_document,
            latency_factory=latency_factory(2),
        )
        drive_mesh_session(mesh, config)
        mesh.run()
        assert mesh.converged(), "mesh session failed to converge!"
        mesh_stats = mesh.wire_stats()
        print("mesh + full vector clocks (the original REDUCE baseline)")
        print(f"  converged: {mesh.converged()}")
        print(f"  messages            : {mesh_stats.messages}")
        print(f"  timestamp bytes     : {mesh_stats.timestamp_bytes} "
              f"({mesh_stats.timestamp_bytes / mesh_stats.messages:.0f} per message)")
        print(f"  total wire bytes    : {mesh_stats.total_bytes}\n")

        ratio = mesh_stats.timestamp_bytes / star_stats.timestamp_bytes
        print(f"timestamp overhead ratio (mesh / star): {ratio:.2f}x")
        print("the star carries 8 bytes per message at ANY scale; the mesh "
              f"carries {4 * n_users} bytes per message at N={n_users}.")


if __name__ == "__main__":
    main()
