#!/usr/bin/env python
"""Collaborative rich-text editing with undo.

Two authors style and edit the same sentence concurrently; the session
runs on the identical compressed-vector-clock machinery as plain text --
only the transformation function changed.  Demonstrates:

* concurrent formatting of overlapping spans (attribute union);
* conflicting formatting (one bolds, one un-bolds: site priority wins
  deterministically at every replica);
* text edits racing formatting;
* undo of the most recent local edit, propagated as an ordinary
  operation.

Run:  python examples/rich_formatting.py
"""

from repro.editor.star import StarSession
from repro.ot.rich import RichOperation, attrs_at, plain, to_string


def render(doc) -> str:
    """Markdown-ish rendering: *italic*, **bold**."""
    out = []
    for ch, attrs in doc:
        piece = ch
        if "italic" in attrs:
            piece = f"*{piece}*"
        if "bold" in attrs:
            piece = f"**{piece}**"
        out.append(piece)
    return "".join(out)


def fmt(doc_len, start, count, add=(), remove=()):
    op = RichOperation().retain(start)
    op.retain(count, add=add, remove=remove)
    return op.retain(doc_len - start - count)


def main() -> None:
    text = "vector clocks"
    session = StarSession(
        2,
        ot_type_name="rich-text",
        initial_state=plain(text),
        verify_with_oracle=True,
    )
    print(f"initial: {text!r}\n")

    # concurrent formatting: author 1 bolds "vector", author 2
    # italicises "tor clocks" -- overlapping on "tor"
    session.generate_at(1, fmt(13, 0, 6, add=("bold",)), at=1.0)
    session.generate_at(2, fmt(13, 3, 10, add=("italic",)), at=1.0)
    session.run()
    assert session.converged()
    doc = session.notifier.document
    print("after concurrent bold/italic:")
    print(" ", render(doc))
    assert attrs_at(doc, 4) == frozenset({"bold", "italic"})

    # conflicting formatting: author 1 un-bolds the word author 2 re-bolds
    n = len(doc)
    session.generate_at(1, fmt(n, 0, 6, remove=("bold",)), at=10.0)
    session.generate_at(2, fmt(n, 0, 6, add=("bold",)), at=10.0)
    session.run()
    assert session.converged()
    doc = session.notifier.document
    print("\nafter conflicting un-bold vs re-bold (site 1 priority):")
    print(" ", render(doc))
    assert attrs_at(doc, 0) == frozenset()  # site 1's removal won

    # a text edit racing a format
    ins = RichOperation().retain(6).insert(" logical")
    ins.retain(len(doc) - 6)
    session.generate_at(1, ins, at=20.0)
    session.generate_at(2, fmt(len(doc), 7, 6, add=("bold",)), at=20.0)
    session.run()
    assert session.converged()
    doc = session.notifier.document
    print("\nafter insert racing a format:")
    print(" ", render(doc))
    assert to_string(doc) == "vector logical clocks"

    # author 1 types a stray word and immediately undoes it, while
    # author 2 concurrently bolds the tail -- the undo is an ordinary
    # operation and transforms like any other
    def typo_and_undo():
        client = session.client(1)
        stray = RichOperation().retain(6).insert(" oops")
        stray.retain(len(client.document) - 6)
        client.generate(stray)
        client.undo_last()

    session.sim.schedule(30.0, typo_and_undo)
    session.generate_at(
        2, fmt(len(doc), len(doc) - 6, 6, add=("bold",)), at=30.0
    )
    session.run()
    assert session.converged()
    doc = session.notifier.document
    print("\nafter author 1's typo + undo racing author 2's bold:")
    print(" ", render(doc))
    assert to_string(doc) == "vector logical clocks"

    stats = session.wire_stats()
    print(
        f"\n{stats.messages} messages, "
        f"{stats.timestamp_bytes // stats.messages} timestamp bytes each -- "
        "same constant-2 scheme, richer data type"
    )


if __name__ == "__main__":
    main()
