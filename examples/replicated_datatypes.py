#!/usr/bin/env python
"""The paper's Section 6 generalisation: CVC beyond text editing.

"The basic ideas and techniques in this scheme are potentially
applicable to other distributed systems which support concurrent updates
on replicated data objects, such as replicated database systems,
replicated file systems, etc."

Three mini-applications run the *identical* compressed-vector-clock
machinery over different replicated data types:

* a shared counter (concurrent increments commute);
* a replicated database table (ordered list of rows, concurrent
  inserts/deletes transformed);
* a configuration register (last-writer-wins conflict policy).

Run:  python examples/replicated_datatypes.py
"""

from repro.editor.star import StarSession
from repro.ot.types import CounterOp, ListOp, RegisterOp


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def shared_counter() -> None:
    banner("shared counter: three sites increment concurrently")
    session = StarSession(3, ot_type_name="counter", verify_with_oracle=True)
    session.generate_at(1, CounterOp(+5), at=1.0)
    session.generate_at(2, CounterOp(-2), at=1.0)
    session.generate_at(3, CounterOp(+10), at=1.0)
    session.run()
    assert session.converged()
    print(f"  deltas: +5, -2, +10 (all concurrent)")
    print(f"  every replica reads: {session.notifier.document}")
    stats = session.wire_stats()
    print(f"  timestamp bytes/message: {stats.timestamp_bytes // stats.messages}")


def replicated_table() -> None:
    banner("replicated table: concurrent row inserts and deletes")
    session = StarSession(3, ot_type_name="list", verify_with_oracle=True)
    session.generate_at(1, ListOp("ins", 0, {"user": "ada", "score": 10}), at=1.0)
    session.generate_at(2, ListOp("ins", 0, {"user": "bob", "score": 7}), at=1.0)
    session.generate_at(3, ListOp("ins", 0, {"user": "cyd", "score": 9}), at=1.0)
    session.run()
    # everyone now sees three rows; two sites mutate concurrently
    session.generate_at(1, ListOp("del", 1), at=10.0)
    session.generate_at(2, ListOp("ins", 3, {"user": "dee", "score": 4}), at=10.0)
    session.run()
    assert session.converged()
    print("  rows at every replica:")
    for row in session.notifier.document:
        print(f"    {row}")
    assert len(session.notifier.document) == 3


def config_register() -> None:
    banner("configuration register: last-writer-wins conflicts")
    session = StarSession(2, ot_type_name="lww-register", verify_with_oracle=True)
    session.generate_at(1, RegisterOp("replicas=3"), at=1.0)
    session.generate_at(2, RegisterOp("replicas=5"), at=1.0)  # concurrent write
    session.run()
    assert session.converged()
    print(f"  concurrent writes 'replicas=3' vs 'replicas=5'")
    print(f"  deterministic winner at every replica: {session.notifier.document!r}")
    session.generate_at(2, RegisterOp("replicas=7"), at=10.0)
    session.run()
    assert session.converged()
    print(f"  later write wins: {session.notifier.document!r}")


def main() -> None:
    shared_counter()
    replicated_table()
    config_register()
    print()
    print("same notifier, same 2-integer timestamps, same formulas (5)/(7) --")
    print("only the transformation function changed per data type.")


if __name__ == "__main__":
    main()
