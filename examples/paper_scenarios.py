#!/usr/bin/env python
"""Replay the paper's three figures on the terminal.

* Fig. 1 -- the star-like topology of Web-based REDUCE (ASCII art);
* Fig. 2 -- the four-operation scenario WITHOUT transformation:
  divergence and intention violation, with a space-time diagram;
* Fig. 3 -- the same scenario WITH compressed vector clocks and
  transformation: every timestamp and concurrency verdict of the
  Section 5 walkthrough, and convergence.

Run:  python examples/paper_scenarios.py
"""

from repro.analysis.consistency import check_divergence
from repro.editor.star import StarSession
from repro.viz.spacetime import DiagramEvent, render_spacetime, render_star_topology
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    FIG_LATENCIES,
    fig3_script,
    fig_latency_factory,
)


def banner(title: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)


def run_scenario(transform: bool) -> StarSession:
    session = StarSession(
        n_sites=3,
        initial_state=FIG2_INITIAL_DOCUMENT,
        latency_factory=fig_latency_factory,
        transform_enabled=transform,
    )
    for item in fig3_script():
        session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
    session.run()
    return session


def spacetime_events(session: StarSession) -> list[DiagramEvent]:
    events = []
    for entry in session.notifier.hb:
        events.append(
            DiagramEvent(entry.executed_at, 0, f"exec {entry.op_id} {entry.timestamp!r}")
        )
    for client in session.clients:
        for entry in client.hb:
            kind = "gen " if entry.origin_site == client.pid else "exec"
            events.append(
                DiagramEvent(
                    entry.executed_at,
                    client.pid,
                    f"{kind} {entry.op_id} {entry.timestamp!r}",
                )
            )
    return events


def main() -> None:
    banner("Fig. 1: star-like topology of Web-based REDUCE")
    print(render_star_topology(3))
    print(f"\nchannel latencies (s): {FIG_LATENCIES}")

    banner("Fig. 2: transformation OFF -> divergence & intention violation")
    fig2 = run_scenario(transform=False)
    print(render_spacetime(4, spacetime_events(fig2), col_width=20))
    print()
    for site, doc in enumerate(fig2.documents()):
        print(f"  site {site} final document: {doc!r}")
    report = check_divergence(fig2.documents())
    print(f"\n  {report.summary()}")
    print("  site 1 reads 'A1DE' after O1;O2 -- O2's intention ('delete CDE')")
    print("  and O1's intention ('insert 12 between A and B') are both violated.")

    banner("Fig. 3: compressed vector clocks + transformation -> convergence")
    fig3 = run_scenario(transform=True)
    print(render_spacetime(4, spacetime_events(fig3), col_width=20))

    print("\n  notifier broadcasts (formulas 1-2):")
    for op_id, dest, ts in fig3.notifier.broadcast_log:
        print(f"    {op_id} -> site {dest}  timestamp {ts!r}")
    print("\n  notifier history buffer (full SV_0 snapshots):")
    for entry in fig3.notifier.hb:
        print(f"    {entry.op_id}  {entry.timestamp!r}")
    print("\n  concurrency verdicts (formulas 5 and 7):")
    for record in fig3.all_checks():
        relation = "||" if record.verdict else "-/||"
        print(
            f"    site {record.site}: {record.new_op_id} {relation} "
            f"{record.buffered_op_id}  ({record.new_timestamp} vs "
            f"{record.buffered_timestamp})"
        )
    print()
    for site, doc in enumerate(fig3.documents()):
        print(f"  site {site} final document: {doc!r}")
    assert fig3.converged()
    print("\n  all replicas CONVERGED -- every timestamp above matches the paper.")


if __name__ == "__main__":
    main()
