#!/usr/bin/env python
"""Quickstart: two users edit a shared document through the notifier.

Reproduces the paper's Section 2.2 running example end to end: user 1
inserts "12" at position 1 while user 2 concurrently deletes "CDE" --
with operational transformation and compressed vector clocks both
replicas converge to the intention-preserved "A12B".

Run:  python examples/quickstart.py
"""

from repro import Delete, Insert, StarSession


def main() -> None:
    session = StarSession(n_sites=2, initial_state="ABCDE")

    # Both operations are generated at virtual time 1.0 -- neither user
    # has seen the other's edit, so the operations are concurrent.
    session.generate_at(1, Insert("12", 1), at=1.0)  # user 1: "A[12]BCDE"
    session.generate_at(2, Delete(3, 2), at=1.0)  # user 2: delete "CDE"

    session.run()

    print("initial document : 'ABCDE'")
    print(f"user 1 intention : {Insert('12', 1)!r}")
    print(f"user 2 intention : {Delete(3, 2)!r}")
    print()
    notifier_doc, *client_docs = session.documents()
    print(f"notifier replica : {notifier_doc!r}")
    for i, doc in enumerate(client_docs, start=1):
        print(f"user {i} replica   : {doc!r}")
    print()
    assert session.converged()
    assert notifier_doc == "A12B"
    print("converged to the intention-preserved result 'A12B'")

    stats = session.wire_stats()
    print(
        f"\nwire traffic: {stats.messages} messages, "
        f"{stats.timestamp_bytes} timestamp bytes "
        f"({stats.timestamp_bytes // stats.messages} per message -- "
        "constant, whatever the number of users)"
    )


if __name__ == "__main__":
    main()
