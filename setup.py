"""Legacy shim: this environment lacks the `wheel` package, so editable
installs must use the setup.py code path (`pip install -e . --no-use-pep517`
or `python setup.py develop`). All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
