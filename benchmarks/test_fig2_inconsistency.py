"""FIG2: divergence and intention violation without transformation.

Regenerates the paper's Fig. 2 scenario with operations relayed in their
original forms and reports both inconsistency problems, including the
Section 2.2 "A12B" vs "A1DE" example.
"""

from conftest import emit

from repro.analysis.consistency import check_divergence, intention_preserved_pair
from repro.editor.star import StarSession
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    FIG3_EXPECTED,
    fig2_intention_example,
    fig3_script,
    fig_latency_factory,
)


def run_fig2():
    session = StarSession(
        n_sites=3,
        initial_state=FIG2_INITIAL_DOCUMENT,
        latency_factory=fig_latency_factory,
        transform_enabled=False,
        record_events=False,
    )
    for item in fig3_script():
        session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
    session.run()
    return session


def test_fig2_divergence(benchmark):
    session = benchmark(run_fig2)
    report = check_divergence(session.documents())
    assert report.diverged
    assert len(report.distinct_states) == 4
    expected = FIG3_EXPECTED["fig2_final_documents"]
    assert session.notifier.document == expected[0]

    rows = [f"initial document: {FIG2_INITIAL_DOCUMENT!r}", ""]
    rows.append("site | execution order          | final document")
    orders = FIG3_EXPECTED["execution_orders"]
    docs = session.documents()
    for site in range(4):
        order = " ".join(o.rstrip("'") for o in orders[site])
        rows.append(f"{site:>4} | {order:<24} | {docs[site]!r}")
    rows.append("")
    rows.append(report.summary())
    emit("FIG2: transformation OFF -> divergence", "\n".join(rows))


def test_fig2_intention_violation(benchmark):
    doc, o1, o2, preserved, naive = fig2_intention_example()
    check = benchmark(intention_preserved_pair, doc, o1, o2)
    assert check.preserved_result == preserved
    assert check.naive_results[0] == naive
    assert check.naive_violates
    emit(
        "FIG2: intention violation (Section 2.2 example)",
        "\n".join(
            [
                f"document          : {doc!r}",
                f"O1 = {o1!r}   O2 = {o2!r}",
                f"intention-preserved result : {check.preserved_result!r}",
                f"naive O1;O2 (site 1)       : {check.naive_results[0]!r}  <- violation",
                f"naive O2;O1                : {check.naive_results[1]!r}",
            ]
        ),
    )
