"""Telemetry overhead guard: an idle sampler must be (nearly) free.

The telemetry layer extends the observability overhead contract (see
``benchmarks/test_trace_overhead.py``): a session that *attaches* a
sampler but never fires it -- armed with a window that is already
closed, the disabled/idle configuration -- must stay within 5% of the
un-instrumented baseline.  Attaching costs one object construction and
one bounds check; no timer lands on the scheduler, so the seeded event
stream is untouched.

An *active* sampler is allowed to cost what it costs (snapshotting
gauges is real work); it is reported for context and sanity-checked for
actually recording frames, mirroring how the trace guard treats the
fully-enabled tracer.
"""

import time

from conftest import emit

from repro.editor.star import StarSession
from repro.workloads.random_session import RandomSessionConfig, drive_star_session

N_SITES = 4
OPS_PER_SITE = 12
REPEATS = 9


def run_session(attach_idle_sampler: bool):
    session = StarSession(N_SITES)
    drive_star_session(
        session,
        RandomSessionConfig(n_sites=N_SITES, ops_per_site=OPS_PER_SITE, seed=5),
    )
    if attach_idle_sampler:
        # ``until=0.0`` closes the sampling window before the first
        # tick: the sampler is armed but never schedules an event.
        session.attach_telemetry(interval=1.0, until=0.0)
    session.run()
    assert session.converged()
    return session


def timed(attach_idle_sampler: bool) -> float:
    start = time.perf_counter()
    run_session(attach_idle_sampler)
    return time.perf_counter() - start


def test_idle_sampler_within_5_percent_of_baseline():
    # Warm-up: import costs, allocator and OT caches out of the timings.
    run_session(False)
    run_session(True)
    baseline = float("inf")
    idle = float("inf")
    for _ in range(REPEATS):  # interleaved so drift hits both alike
        baseline = min(baseline, timed(False))
        idle = min(idle, timed(True))
    emit(
        f"Telemetry overhead (same deterministic session, min of {REPEATS} runs)",
        f"  baseline (no sampler)   {baseline * 1000:.2f} ms\n"
        f"  idle sampler attached   {idle * 1000:.2f} ms"
        f"  ({idle / baseline:.3f}x baseline)",
    )
    assert idle <= baseline * 1.05, (
        f"an idle sampler cost {idle / baseline:.3f}x the un-instrumented "
        f"baseline ({idle * 1000:.2f} ms vs {baseline * 1000:.2f} ms); "
        "attaching telemetry without sampling must stay (nearly) free"
    )
    # Sanity: an *active* sampler on the same session does record frames,
    # and sampling leaves the deterministic run unperturbed.
    plain = run_session(False)
    active = StarSession(N_SITES)
    drive_star_session(
        active,
        RandomSessionConfig(n_sites=N_SITES, ops_per_site=OPS_PER_SITE, seed=5),
    )
    sampler = active.attach_telemetry(interval=0.5, max_samples=32)
    active.run()
    assert sampler.samples_taken > 0
    assert len(sampler.frames) == (N_SITES + 1) * sampler.samples_taken
    assert active.documents() == plain.documents()
    assert active.wire_stats().messages == plain.wire_stats().messages
