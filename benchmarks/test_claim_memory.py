"""CLAIM-MEM: per-process clock storage.

Paper Section 6: "all communicating processes in our system, except the
notifier, need to maintain a single vector of 2 elements only, rather
than having to maintain three full vectors of N elements by every
process as in early compressing techniques [9, 13]."

Regenerates the comparison table and verifies it against *live* editor
instances (the numbers come from the running objects, not the formula).
"""

from conftest import emit

from repro.clocks.sk import SKProcess
from repro.editor.star import StarSession
from repro.metrics.accounting import memory_comparison

SWEEP_N = [2, 4, 8, 16, 64, 256, 1024]


def test_memory_table(benchmark):
    rows = benchmark(memory_comparison, SWEEP_N)
    header = "     N | full VC ints | SK ints  | CVC client  | CVC notifier"
    emit(
        "CLAIM-MEM: resident clock-state integers per process",
        "\n".join([header] + [r.as_row() for r in rows]),
    )
    for row in rows:
        assert row.compressed_client == 2
        assert row.sk_per_process == 3 * row.n
        assert row.compressed_notifier == row.n


def test_live_objects_match_table(benchmark):
    def build():
        session = StarSession(16)
        sk = SKProcess(0, 16)
        return session, sk

    session, sk = benchmark(build)
    assert all(c.clock_storage_ints() == 2 for c in session.clients)
    assert session.notifier.clock_storage_ints() == 16
    assert sk.storage_ints() == 48
