"""CLAIM-LAT: propagation latency -- the cost side of the star trade.

The paper adopts the star for Web-applet security and timestamp
compression; the honest price is an extra network hop: an operation
reaches a remote replica after ~2L (client->notifier->client) instead of
~L on a direct mesh edge.  This sweep measures, in virtual time, the
mean and worst generation-to-everywhere-executed latency for identical
workloads under both architectures across channel latencies.

Shape assertions: star op latency ~= 2x mesh at every L; both scale
linearly in L; convergence is unaffected.  Together with CLAIM-OVH this
quantifies the full trade-off the paper's design accepts.
"""

import random

from conftest import emit

from repro.editor.mesh import MeshSession
from repro.editor.star import StarSession
from repro.net.channel import FixedLatency
from repro.workloads.random_session import (
    RandomSessionConfig,
    drive_mesh_session,
    drive_star_session,
)

N_SITES = 4
OPS = 4


def measure_star(latency: float, seed: int = 0):
    config = RandomSessionConfig(n_sites=N_SITES, ops_per_site=OPS, seed=seed)
    session = StarSession(
        N_SITES,
        initial_state=config.initial_document,
        latency_factory=lambda s, d: FixedLatency(latency),
        record_events=False,
        record_checks=False,
    )
    drive_star_session(session, config)
    generated_at: dict[str, float] = {}
    completed_at: dict[str, float] = {}

    for client in session.clients:
        orig = client.generate

        def gen(op, op_id=None, _orig=orig, _c=client):
            assigned = _orig(op, op_id)
            generated_at[assigned] = _c.sim.now
            return assigned

        client.generate = gen  # type: ignore[method-assign]
    session.run()
    assert session.converged()
    # completion: when the transformed form has executed at every replica
    for client in session.clients:
        for entry in client.hb:
            original = entry.op_id.rstrip("'")
            completed_at[original] = max(
                completed_at.get(original, 0.0), entry.executed_at
            )
    latencies = [completed_at[op] - generated_at[op] for op in generated_at]
    return sum(latencies) / len(latencies), max(latencies)


def measure_mesh(latency: float, seed: int = 0):
    config = RandomSessionConfig(n_sites=N_SITES, ops_per_site=OPS, seed=seed)
    session = MeshSession(
        N_SITES,
        initial_document=config.initial_document,
        latency_factory=lambda s, d: FixedLatency(latency),
    )
    drive_mesh_session(session, config)
    generated_at: dict[str, float] = {}
    completed_at: dict[str, float] = {}
    for site in session.sites:
        orig = site.generate

        def gen(op, _orig=orig, _s=site):
            record = _orig(op)
            generated_at[record.op_id] = _s.sim.now
            return record

        site.generate = gen  # type: ignore[method-assign]

        orig_integrate = site._integrate

        def integrate(record, _orig=orig_integrate, _s=site):
            _orig(record)
            completed_at[record.op_id] = max(
                completed_at.get(record.op_id, 0.0), _s.sim.now
            )

        site._integrate = integrate  # type: ignore[method-assign]
    session.run()
    assert session.converged()
    latencies = [completed_at[op] - generated_at[op] for op in generated_at]
    return sum(latencies) / len(latencies), max(latencies)


def test_latency_sweep(benchmark):
    def sweep():
        rows = []
        for latency in (0.02, 0.05, 0.1, 0.2):
            rows.append((latency, measure_star(latency), measure_mesh(latency)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["chan L (s) | star mean / max (s) | mesh mean / max (s) | ratio"]
    for latency, (s_mean, s_max), (m_mean, m_max) in rows:
        lines.append(
            f"{latency:>10.2f} | {s_mean:>8.3f} / {s_max:<6.3f} | "
            f"{m_mean:>8.3f} / {m_max:<6.3f} | {s_mean / m_mean:>5.2f}x"
        )
        # the star pays roughly one extra hop
        assert 1.5 <= s_mean / m_mean <= 2.6
        # and both are linear in L: mean close to hop-count * L
        assert abs(s_mean - 2 * latency) < latency
        assert abs(m_mean - latency) < latency
    emit(
        "CLAIM-LAT: generation-to-everywhere latency (virtual time)",
        "\n".join(
            lines
            + [
                "",
                "the star's ~2x hop latency is the price of the constant",
                "2-integer timestamps and the Web-applet deployment model.",
            ]
        ),
    )
