"""CLAIM-OVH: timestamp overhead -- "two integers, rather than being
linear in N as in early compressing techniques" (paper Section 6).

Sweeps the system size N and reports per-message timestamp bytes for
full vector clocks, Singhal-Kshemkalyani differential compression (the
paper's reference [13], measured by replaying real traffic through real
SK processes, under both high interaction locality -- SK's best case --
and uniform interaction), scalar Lamport clocks (cannot detect
concurrency; shown as the floor), and the paper's compressed scheme.

Shape assertions: CVC is flat at 8 bytes for every N; full vectors grow
linearly; SK lies between Lamport and the full vector and degrades as
locality drops; CVC beats full vectors from N = 3 and SK-uniform from
small N onward.
"""

from conftest import emit

from repro.metrics.accounting import (
    compressed_timestamp_bytes,
    full_vector_timestamp_bytes,
    overhead_sweep,
    sk_expected_timestamp_bytes,
)

SWEEP_N = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


def test_overhead_table(benchmark):
    rows = benchmark(overhead_sweep, SWEEP_N, 0, 400)

    header = (
        "     N |  full VC B | lamport |  SK local  |  SK uniform | compressed"
    )
    emit(
        "CLAIM-OVH: per-message timestamp bytes vs system size",
        "\n".join([header] + [r.as_row() for r in rows]),
    )

    for row in rows:
        # the paper's headline: constant two integers
        assert row.compressed == 8
        assert row.full_vector == 4 * row.n
        # SK sits between the scalar floor and (roughly) the full vector
        assert row.sk_local >= 8  # at least one (index, value) pair
        assert row.sk_uniform <= 2 * row.full_vector
        # locality is what SK exploits
        if row.n >= 8:
            assert row.sk_local < row.sk_uniform
    # crossover claims
    assert all(row.compressed < row.full_vector for row in rows if row.n >= 3)
    big = [row for row in rows if row.n >= 32]
    assert all(row.compressed < row.sk_uniform for row in big)
    # full VC at N=1024 is 512x the compressed size
    assert rows[-1].full_vector / rows[-1].compressed == 512


def test_sk_measurement_cost(benchmark):
    """Benchmark the SK replay measurement itself at a realistic size."""
    mean = benchmark(sk_expected_timestamp_bytes, 64, 0.5, 0, 500)
    assert 0 < mean <= 2 * full_vector_timestamp_bytes(64)


def test_compressed_constant_lookup(benchmark):
    assert benchmark(compressed_timestamp_bytes) == 8
