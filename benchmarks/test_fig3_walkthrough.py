"""FIG3: the complete Section 5 walkthrough under the compressed scheme.

Benchmarks the full scripted session (timestamping, concurrency checks,
transformation, convergence) and regenerates the walkthrough's tables:
per-destination broadcast timestamps, buffered full timestamps, and all
21 concurrency verdicts -- asserting each against the paper's values.
"""

from conftest import emit

from repro.editor.star import StarSession
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    FIG3_EXPECTED,
    fig3_script,
    fig_latency_factory,
)


def run_fig3(verify=False):
    session = StarSession(
        n_sites=3,
        initial_state=FIG2_INITIAL_DOCUMENT,
        latency_factory=fig_latency_factory,
        verify_with_oracle=verify,
        record_events=verify,
    )
    for item in fig3_script():
        session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
    session.run()
    return session


def test_fig3_full_scenario(benchmark):
    session = benchmark(run_fig3)
    # -- assert every number in the walkthrough --
    got_broadcasts = {
        (op_id, dest): ts.as_paper_list()
        for op_id, dest, ts in session.notifier.broadcast_log
    }
    assert got_broadcasts == FIG3_EXPECTED["broadcast_timestamps"]
    got_buffered = {
        e.op_id: e.timestamp.as_paper_list() for e in session.notifier.hb
    }
    assert got_buffered == FIG3_EXPECTED["notifier_buffer_timestamps"]
    got_verdicts = {
        (r.site, r.new_op_id, r.buffered_op_id): r.verdict
        for r in session.all_checks()
    }
    assert got_verdicts == FIG3_EXPECTED["verdicts"]
    docs = session.documents()
    assert all(d == FIG3_EXPECTED["final_document"] for d in docs)

    # -- regenerate the walkthrough tables --
    rows = ["op   | destination | compressed timestamp"]
    for (op_id, dest), ts in sorted(got_broadcasts.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        rows.append(f"{op_id:<4} | site {dest:<6} | {ts}")
    rows.append("")
    rows.append("op   | full SV_0 timestamp in HB_0")
    for op_id, ts in got_buffered.items():
        rows.append(f"{op_id:<4} | {ts}")
    emit("FIG3: operation timestamping (paper Section 5)", "\n".join(rows))

    rows = ["site | new op | buffered op | concurrent?"]
    for (site, new, buf), verdict in sorted(got_verdicts.items()):
        rows.append(f"{site:>4} | {new:<6} | {buf:<11} | {verdict}")
    rows.append("")
    rows.append(f"all four replicas converged to {docs[0]!r}")
    emit("FIG3: concurrency verdicts (21 checks)", "\n".join(rows))


def test_fig3_with_oracle_verification(benchmark):
    """The same scenario with inline full-vector-clock verification."""
    session = benchmark(run_fig3, True)
    assert session.converged()
