"""FIG1: the star-like topology of Web-based REDUCE (paper Fig. 1).

Regenerates the figure as ASCII art and benchmarks star wiring against
mesh wiring, quantifying the structural point of Section 2.1: a star
over N clients needs 2N unidirectional channels while a mesh needs
N(N-1) -- the notifier maps N-way communication onto 2-way.
"""

from conftest import emit

from repro.net.process import SimProcess
from repro.net.simulator import Simulator
from repro.net.topology import MeshTopology, StarTopology
from repro.viz.spacetime import render_star_topology


class _Sink(SimProcess):
    def on_message(self, envelope):
        pass


def build_star(n_clients: int) -> StarTopology:
    sim = Simulator()
    procs = [_Sink(sim, i) for i in range(n_clients + 1)]
    return StarTopology(sim, procs)


def build_mesh(n_sites: int) -> MeshTopology:
    sim = Simulator()
    procs = [_Sink(sim, i) for i in range(n_sites)]
    return MeshTopology(sim, procs)


def test_fig1_star_wiring(benchmark):
    topo = benchmark(build_star, 32)
    assert topo.edge_count() == 2 * 32

    rows = ["clients |  star channels | mesh channels"]
    for n in (2, 4, 8, 16, 32, 64):
        star = build_star(n).edge_count()
        mesh = build_mesh(n + 1).edge_count()
        assert star == 2 * n
        assert mesh == (n + 1) * n
        rows.append(f"{n:>7} | {star:>14} | {mesh:>13}")
    emit("FIG1: star vs mesh channel count", "\n".join(rows))
    emit("FIG1: topology rendering (N=4)", render_star_topology(4))


def test_fig1_mesh_wiring_baseline(benchmark):
    topo = benchmark(build_mesh, 33)
    assert topo.edge_count() == 33 * 32
