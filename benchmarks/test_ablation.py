"""Ablation studies for the design choices DESIGN.md calls out.

ABL-1  Transformation at the notifier is what makes 2 elements enough.
       Paper Section 6: "If the notifier propagates operations as-is
       (i.e., without transformation), the causality relationships among
       these operations would still remain N-dimensional and have to be
       timestamped by N-element vector clocks."  We measure it: with
       transformation off, compressed verdicts (which treat relayed
       operations as site-0 operations) contradict the full-vector
       ground truth over the *original* operations; with transformation
       on, they never do.

ABL-2  History-buffer garbage collection: HB growth with and without
       the acknowledgement-horizon GC over a long session.

ABL-3  Batching: composing keystroke bursts into one component
       operation before propagation vs sending every keystroke.
"""

import random

from conftest import emit

from repro.analysis.causality import CausalityOracle
from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.ot.component import TextOperation
from repro.workloads.random_session import RandomSessionConfig, drive_star_session


def latencies(seed):
    def factory(src, dst):
        return UniformLatency(0.05, 1.2, random.Random(seed * 7 + src * 3 + dst))

    return factory


def original_id(op_id: str) -> str:
    return op_id.rstrip("'")


def count_verdict_mismatches(session: StarSession) -> tuple[int, int]:
    """Compare every client-side verdict against the ground truth over
    the ORIGINAL operations (what matters when operations are relayed
    as-is).  Returns (mismatches, total checks)."""
    oracle = CausalityOracle(session.event_log)
    mismatches = 0
    total = 0
    for record in session.all_checks():
        a = original_id(record.new_op_id)
        b = original_id(record.buffered_op_id)
        if a == b:
            continue
        total += 1
        if oracle.concurrent(a, b) != record.verdict:
            mismatches += 1
    return mismatches, total


def run_session(transform: bool, seed: int) -> StarSession:
    config = RandomSessionConfig(n_sites=4, ops_per_site=5, seed=seed)
    session = StarSession(
        4,
        initial_state=config.initial_document,
        latency_factory=latencies(seed),
        transform_enabled=transform,
        # with transformation ON, every verdict is checked inline against
        # full vector clocks over the REDEFINED operations -- any mismatch
        # raises ConsistencyError and fails this ablation
        verify_with_oracle=transform,
    )
    drive_star_session(session, config)
    session.run()
    return session


def test_abl1_transformation_collapses_causality(benchmark):
    """Without redefinition the 2-element verdicts are wrong; with it
    they are exact (for the redefined operations) and the system
    converges.  The causality relation itself is what transformation
    changes -- that is the paper's central observation."""

    def measure():
        rows = []
        for seed in range(6):
            with_t = run_session(True, seed)  # raises on any oracle mismatch
            without_t = run_session(False, seed)
            rows.append(
                (
                    seed,
                    count_verdict_mismatches(without_t),
                    with_t.converged(),
                    without_t.converged(),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "seed | as-is: wrong verdicts | transformed: wrong verdicts | converged on/off"
    ]
    total_off = 0
    for seed, (miss_off, tot_off), conv_on, conv_off in rows:
        lines.append(
            f"{seed:>4} | {miss_off:>9} / {tot_off:<9} | "
            f"{'0 (oracle-verified)':>27} | {conv_on} / {conv_off}"
        )
        total_off += miss_off
        assert conv_on
        assert not conv_off  # as-is relaying also diverges
    emit(
        "ABL-1: 2-element verdicts vs full-vector ground truth",
        "\n".join(
            lines
            + [
                "",
                "as-is: verdicts compared to causality among ORIGINAL operations",
                "transformed: verdicts verified inline against causality among",
                "REDEFINED operations (ConsistencyError on any mismatch).",
            ]
        ),
    )
    # as-is relaying produces genuinely wrong concurrency verdicts
    assert total_off > 0


def test_abl2_garbage_collection(benchmark):
    def run(gc: bool):
        config = RandomSessionConfig(n_sites=4, ops_per_site=25, seed=0)
        session = StarSession(
            4,
            initial_state=config.initial_document,
            latency_factory=latencies(0),
            record_events=False,
            record_checks=False,
        )
        drive_star_session(session, config)
        if gc:
            for t in range(2, 30, 2):
                session.sim.schedule(float(t), session.notifier.collect_garbage)
                for client in session.clients:
                    session.sim.schedule(float(t) + 0.1, client.collect_garbage)
        session.run()
        assert session.converged()
        peak_notifier = len(session.notifier.hb)
        peak_clients = max(len(c.hb) for c in session.clients)
        return peak_notifier, peak_clients

    with_gc = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    without_gc = run(False)
    emit(
        "ABL-2: history-buffer length at quiescence (notifier, max client)",
        f"with GC   : {with_gc}\nwithout GC: {without_gc}",
    )
    assert with_gc[0] < without_gc[0]
    assert with_gc[1] < without_gc[1]
    assert without_gc[0] == 100  # every op retained


def test_abl3_batching(benchmark):
    """Composing a burst client-side cuts messages by the burst length."""

    def run(batch: bool):
        session = StarSession(
            2,
            ot_type_name="text-component",
            initial_state="",
            record_events=False,
        )
        text = "hello world, this is a burst"
        client = session.client(1)

        def type_burst():
            if batch:
                op = TextOperation.noop(len(client.document))
                for i, ch in enumerate(text):
                    op = op.compose(
                        TextOperation()
                        .retain(len(client.document) + i)
                        .insert(ch)
                    )
                client.generate(op)
            else:
                for i, ch in enumerate(text):
                    client.generate(
                        TextOperation().retain(len(client.document)).insert(ch)
                    )

        session.sim.schedule(1.0, type_burst)
        session.run()
        assert session.converged()
        assert session.notifier.document == text
        return session.wire_stats()

    batched = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    unbatched = run(False)
    emit(
        "ABL-3: batching a 28-keystroke burst",
        f"batched  : {batched.messages} messages, {batched.total_bytes} bytes\n"
        f"unbatched: {unbatched.messages} messages, {unbatched.total_bytes} bytes",
    )
    assert batched.messages == 2  # one upload + one broadcast
    assert unbatched.messages == 2 * len("hello world, this is a burst")
    assert batched.total_bytes < unbatched.total_bytes
