"""Tracing overhead guard: the disabled path must be (nearly) free.

The observability layer's overhead contract (see DESIGN.md and
:mod:`repro.obs.tracer`): every hook site guards emission with a single
``if self.tracer is not None`` attribute check, so a session constructed
without a tracer -- the un-instrumented baseline -- pays one pointer
comparison per hook and nothing else.  A session holding a *muted*
tracer (``Tracer(enabled=False)``) additionally pays one early-returning
method call per hook.

This guard runs the same deterministic session in three configurations
and asserts the muted-tracer run stays within 5% of the baseline
(min-of-N timing, interleaved to decorrelate machine noise).  The
fully-enabled run is reported for context but not bounded -- recording
events is allowed to cost what it costs.

The phase profiler (:mod:`repro.obs.profiler`) makes the same promise
for its hook sites -- one module-attribute check when nothing is
installed, one extra ``enabled`` check when a muted profiler is -- and
gets the same guard below.
"""

import time

from conftest import emit

from repro.editor.star import StarSession
from repro.obs import PhaseProfiler, Tracer, install, uninstall
from repro.workloads.random_session import RandomSessionConfig, drive_star_session

N_SITES = 4
OPS_PER_SITE = 12
REPEATS = 9


def run_session(tracer):
    session = StarSession(N_SITES, tracer=tracer)
    drive_star_session(
        session,
        RandomSessionConfig(n_sites=N_SITES, ops_per_site=OPS_PER_SITE, seed=5),
    )
    session.run()
    assert session.converged()
    return session


def timed(tracer_factory) -> float:
    start = time.perf_counter()
    run_session(tracer_factory())
    return time.perf_counter() - start


def test_disabled_tracing_within_5_percent_of_baseline():
    variants = {
        "baseline (no tracer)": lambda: None,
        "muted (enabled=False)": lambda: Tracer(enabled=False),
        "enabled": lambda: Tracer(),
    }
    # Warm-up: import costs, allocator and OT caches out of the timings.
    for factory in variants.values():
        run_session(factory())
    best = {name: float("inf") for name in variants}
    for _ in range(REPEATS):  # interleaved so drift hits every variant alike
        for name, factory in variants.items():
            best[name] = min(best[name], timed(factory))
    baseline = best["baseline (no tracer)"]
    muted = best["muted (enabled=False)"]
    enabled = best["enabled"]
    emit(
        "Tracing overhead (same deterministic session, min of "
        f"{REPEATS} runs)",
        "\n".join(
            f"  {name:<22} {seconds * 1000:.2f} ms"
            f"  ({seconds / baseline:.3f}x baseline)"
            for name, seconds in best.items()
        ),
    )
    assert muted <= baseline * 1.05, (
        f"muted tracing cost {muted / baseline:.3f}x the un-instrumented "
        f"baseline ({muted * 1000:.2f} ms vs {baseline * 1000:.2f} ms); "
        "the disabled path must stay a no-op attribute check"
    )
    # Sanity: the enabled run really did record the session.
    session = run_session(Tracer())
    assert len(session.trace_events()) > 0
    del enabled


def test_disabled_profiler_within_5_percent_of_baseline():
    """A muted installed profiler must not slow the hot paths.

    With ``PhaseProfiler(enabled=False)`` installed, every ``profiled``
    hook runs its full disabled path -- read the module global, check
    ``enabled``, call through -- which is the worst case a session pays
    without opting into measurement.
    """

    def timed_with(profiler) -> float:
        if profiler is not None:
            install(profiler)
        try:
            start = time.perf_counter()
            run_session(None)
            return time.perf_counter() - start
        finally:
            if profiler is not None:
                uninstall()

    # Warm-up both variants.
    timed_with(None)
    timed_with(PhaseProfiler(enabled=False))
    baseline = float("inf")
    muted = float("inf")
    for _ in range(REPEATS):  # interleaved so drift hits both alike
        baseline = min(baseline, timed_with(None))
        muted = min(muted, timed_with(PhaseProfiler(enabled=False)))
    emit(
        f"Profiler overhead (same deterministic session, min of {REPEATS} runs)",
        f"  baseline (no profiler)  {baseline * 1000:.2f} ms\n"
        f"  muted (enabled=False)   {muted * 1000:.2f} ms"
        f"  ({muted / baseline:.3f}x baseline)",
    )
    assert muted <= baseline * 1.05, (
        f"muted profiling cost {muted / baseline:.3f}x the un-instrumented "
        f"baseline ({muted * 1000:.2f} ms vs {baseline * 1000:.2f} ms); "
        "the disabled path must stay a module-attribute check"
    )
    # Sanity: an *enabled* profiler on the same session does record phases.
    profiler = PhaseProfiler()
    install(profiler)
    try:
        run_session(None)
    finally:
        uninstall()
    calls = profiler.phase_calls()
    assert calls.get("ot.it", 0) >= 0 and calls  # some phases recorded
    assert profiler.open_spans == 0
