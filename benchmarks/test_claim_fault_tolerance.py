"""CLAIM-FT: convergence survives a faulty network, oracle-verified.

The paper assumes reliable FIFO TCP channels; this experiment shows the
reproduction's reliability layer (sequence numbers, retransmission,
dedup, snapshot resync -- see DESIGN.md) re-establishes that assumption
over a network that drops up to 20% of messages, duplicates 5% and
crashes a client mid-session.  Every run keeps the full-vector-clock
oracle inline: a single wrong compressed concurrency verdict anywhere
would abort the run, so the table below doubles as evidence that
formulas (5) and (7) stay exact once the FIFO stream is reconstructed.

Shape assertions: all loss rates converge with a clean oracle; the
retransmission work grows with the loss rate; the zero-loss row does no
recovery work at all.
"""

import random

from conftest import emit

from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan
from repro.workloads.random_session import RandomSessionConfig, drive_star_session

N_SITES = 4
OPS_PER_SITE = 8
DROP_RATES = (0.0, 0.05, 0.1, 0.2)


def latencies(seed):
    def factory(src, dst):
        return UniformLatency(0.02, 0.2, random.Random(seed * 13 + src * 5 + dst))

    return factory


def run_faulty(drop_p, dup_p=0.05, crash=True, seed=7):
    crashes = (ClientCrash(site=2, at=3.0, restart_at=5.0),) if crash else ()
    plan = FaultPlan(
        seed=seed,
        default=ChannelFaults(drop_p=drop_p, dup_p=dup_p),
        crashes=crashes,
    )
    session = StarSession(
        N_SITES,
        latency_factory=latencies(seed),
        verify_with_oracle=True,  # every verdict checked against full VCs
        fault_plan=plan,
    )
    config = RandomSessionConfig(n_sites=N_SITES, ops_per_site=OPS_PER_SITE, seed=3)
    drive_star_session(session, config)
    session.run()
    assert session.converged(), session.documents()
    assert session.topology.fifo_respected()
    assert session.reliable_delivery_in_order()
    return session


def test_recovery_at_twenty_percent_loss(benchmark):
    session = benchmark.pedantic(
        lambda: run_faulty(0.2), rounds=1, iterations=1
    )
    report = session.fault_report()
    assert report.lost > 0
    assert report.retransmits > 0
    assert report.duplicates_discarded > 0
    assert report.recoveries >= 1  # the client's completed restart
    assert report.resyncs_served >= 1  # the notifier-served resync


def test_loss_rate_sweep_table(benchmark):
    def sweep():
        return [(drop, run_faulty(drop).fault_report()) for drop in DROP_RATES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "drop_p | lost | acks_lost | dup'd | retransmits | dedup | held | recoveries | converged",
    ]
    for drop, report in rows:
        lines.append(
            f"{drop:>6.2f} | {report.lost:>4} | {report.lost_acks:>9} | "
            f"{report.duplicated:>5} | "
            f"{report.retransmits:>11} | {report.duplicates_discarded:>5} | "
            f"{report.out_of_order_held:>4} | {report.recoveries:>10} | yes+oracle"
        )
    emit(
        "CLAIM-FT: star session under loss/duplication/crash (oracle inline)",
        "\n".join(lines),
    )

    reports = dict(rows)
    # recovery work scales with hostility: the 20% row retransmits more
    # than the 5% row, and losses really occurred at every nonzero rate
    for drop in DROP_RATES[1:]:
        assert reports[drop].lost > 0
        assert reports[drop].retransmits > 0
    assert reports[0.2].retransmits > reports[0.05].retransmits
    assert reports[0.2].lost > reports[0.05].lost


def test_zero_fault_plan_does_no_recovery_work(benchmark):
    session = benchmark.pedantic(
        lambda: run_faulty(0.0, dup_p=0.0, crash=False), rounds=1, iterations=1
    )
    report = session.fault_report()
    assert report.lost == 0
    assert report.lost_acks == 0
    assert report.retransmits == 0
    assert report.duplicates_discarded == 0
    assert report.recoveries == 0
    assert report.resyncs_served == 0
