"""CLAIM-CHECK: concurrency-check cost.

Formulas (5) and (7) reduce each check to one or two integer
comparisons regardless of N, whereas a full vector-clock comparison is
O(N).  Benchmarks a realistic check workload -- a new operation arriving
at a site with an H-entry history -- for both schemes across N, plus the
numpy-vectorised bulk variant to give the full-vector baseline its best
implementation.
"""

import random

import pytest
from conftest import emit

from repro.clocks.vector import VectorClock, bulk_concurrent, concurrent
from repro.core.concurrency import client_concurrent, notifier_concurrent
from repro.core.timestamp import CompressedTimestamp, FullTimestamp, OriginKind

HB_LEN = 200


def make_compressed_history(rng):
    kinds = [OriginKind.LOCAL, OriginKind.FROM_CENTER]
    return [
        (CompressedTimestamp(rng.randrange(50), rng.randrange(50)), rng.choice(kinds))
        for _ in range(HB_LEN)
    ]


def make_full_history(rng, n):
    return [
        FullTimestamp(tuple(rng.randrange(20) for _ in range(n))) for _ in range(HB_LEN)
    ]


def make_vc_history(rng, n):
    return [
        VectorClock.of(tuple(rng.randrange(20) for _ in range(n))) for _ in range(HB_LEN)
    ]


def test_client_check_compressed(benchmark):
    rng = random.Random(0)
    history = make_compressed_history(rng)
    new_ts = CompressedTimestamp(25, 25)

    def sweep():
        return sum(
            client_concurrent(new_ts, ts, kind) for ts, kind in history
        )

    benchmark(sweep)


@pytest.mark.parametrize("n", [4, 64, 1024])
def test_notifier_check_compressed(benchmark, n):
    """Formula (7): one sum over the buffered full vector (O(N) at the
    notifier only -- the clients stay O(1))."""
    rng = random.Random(1)
    history = make_full_history(rng, n)
    new_ts = CompressedTimestamp(40, 3)

    def sweep():
        return sum(notifier_concurrent(new_ts, 1, ts, 2) for ts in history)

    benchmark(sweep)


@pytest.mark.parametrize("n", [4, 64, 1024])
def test_full_vector_check(benchmark, n):
    """The baseline: comparing two N-element vectors per history entry."""
    rng = random.Random(2)
    history = make_vc_history(rng, n)
    new_vc = VectorClock.of(tuple(rng.randrange(20) for _ in range(n)))

    def sweep():
        return sum(concurrent(new_vc, vc) for vc in history)

    benchmark(sweep)


@pytest.mark.parametrize("n", [64, 1024])
def test_full_vector_check_numpy(benchmark, n):
    rng = random.Random(3)
    history = make_vc_history(rng, n)
    new_vc = VectorClock.of(tuple(rng.randrange(20) for _ in range(n)))
    repeated = [new_vc] * len(history)

    benchmark(lambda: bulk_concurrent(repeated, history).sum())


def test_check_shape_summary(benchmark):
    """Shape claim: client checks are O(1) in N by construction (they
    never look at an N-sized object); benchmark one single check."""
    ts_small = CompressedTimestamp(3, 1)
    ts_buf = CompressedTimestamp(1, 2)
    assert benchmark(client_concurrent, ts_small, ts_buf, OriginKind.LOCAL)
    emit(
        "CLAIM-CHECK: structural summary",
        "client check reads 2 ints (O(1) in N); notifier check sums one\n"
        "buffered N-vector (O(N) at the single notifier); full-VC check\n"
        "compares two N-vectors at EVERY site.",
    )
