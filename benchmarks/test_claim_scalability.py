"""CLAIM-SCALE: "allows an arbitrary number of users to participate".

Benchmarks the star editor's end-to-end throughput as the number of
collaborating sites grows, and the notifier's per-operation processing
pipeline (concurrency pass + transformation + timestamp compression +
broadcast) in isolation.  The claim's shape: per-operation notifier cost
grows only with the broadcast fan-out (linear, dominated by message
creation), never with an N-sized timestamp on the wire.
"""

import random

import pytest
from conftest import emit

from repro.editor.star import StarSession
from repro.net.channel import FixedLatency
from repro.workloads.random_session import RandomSessionConfig, drive_star_session


def run_session(n_sites, ops_per_site=3, seed=7):
    config = RandomSessionConfig(n_sites=n_sites, ops_per_site=ops_per_site, seed=seed)
    session = StarSession(
        n_sites,
        initial_state=config.initial_document,
        latency_factory=lambda s, d: FixedLatency(0.05),
        record_events=False,
        record_checks=False,
    )
    drive_star_session(session, config)
    session.run()
    assert session.converged()
    return session


@pytest.mark.parametrize("n_sites", [4, 16, 64])
def test_session_throughput(benchmark, n_sites):
    session = benchmark(run_session, n_sites)
    stats = session.wire_stats()
    # constant timestamps at any scale
    assert stats.timestamp_bytes == 8 * stats.messages


def test_notifier_pipeline(benchmark):
    """Per-op notifier cost with a warm 64-client session."""
    from repro.core.timestamp import CompressedTimestamp
    from repro.editor.star import OpMessage
    from repro.net.transport import Envelope
    from repro.ot.operations import Insert

    session = run_session(64, ops_per_site=2)
    notifier = session.notifier
    client = session.client(1)
    seq = [client.sv.generated_locally]

    def one_op():
        seq[0] += 1
        message = OpMessage(
            op=Insert("x", 0),
            timestamp=CompressedTimestamp(client.sv.received_from_center, seq[0]),
            origin_site=1,
            op_id=f"bench_{seq[0]}",
        )
        notifier.on_message(Envelope(source=1, dest=0, payload=message))

    benchmark(one_op)
    emit(
        "CLAIM-SCALE: notifier pipeline",
        f"history length {len(notifier.hb)}, 64 clients, constant 8-byte "
        "timestamps on every broadcast",
    )
