"""Shared helpers for the benchmark suite.

Every file regenerates one experiment from DESIGN.md's index (FIG1-3,
CLAIM-*).  Benchmarks both *measure* (pytest-benchmark timings) and
*assert the paper's shape claims* (who wins, by what factor), and print
the regenerated table/figure so ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's evaluation artefacts on the terminal.
"""

import sys


def emit(title: str, body: str) -> None:
    """Print a regenerated table/figure block (visible with -s)."""
    bar = "=" * len(title)
    sys.stdout.write(f"\n{title}\n{bar}\n{body}\n")
