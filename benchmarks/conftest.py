"""Shared helpers for the benchmark suite.

Every file regenerates one experiment from DESIGN.md's index (FIG1-3,
CLAIM-*).  Benchmarks both *measure* (pytest-benchmark timings) and
*assert the paper's shape claims* (who wins, by what factor), and print
the regenerated table/figure so ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's evaluation artefacts on the terminal.

Every emitted block is additionally appended to the machine-readable
bench artifact (``REPRO_BENCH_JSON``, default ``BENCH_pytest.json``) at
session end, so ``pytest benchmarks/`` and ``python -m repro bench``
share one output path -- one JSON file carries both the scenario matrix
and the regenerated paper tables.
"""

import os
import sys

_BLOCKS: list = []


def emit(title: str, body: str) -> None:
    """Print a regenerated table/figure block (visible with -s)."""
    bar = "=" * len(title)
    sys.stdout.write(f"\n{title}\n{bar}\n{body}\n")
    _BLOCKS.append((title, body))


def pytest_sessionfinish(session, exitstatus):
    """Fold every emitted block into the shared bench artifact."""
    del session, exitstatus
    if not _BLOCKS:
        return
    from repro.obs.bench import merge_table_blocks

    merge_table_blocks(os.environ.get("REPRO_BENCH_JSON", "BENCH_pytest.json"), _BLOCKS)
