"""CLAIM-E2E: the star/CVC architecture vs the mesh/full-VC baseline.

Runs the *same* per-site editing workload through both architectures and
compares total wire traffic, timestamp traffic and convergence.  This is
the deployment decision the paper's Web-based REDUCE embodies: the star
pays an extra network hop and broadcast fan-out at one server, but every
message carries a constant 8-byte timestamp, while the mesh pays
``4 * N`` timestamp bytes on each of its ``N - 1`` per-op unicasts.

Shape assertions: identical workloads converge on both; mesh timestamp
bytes grow ~linearly with N while star timestamp bytes stay constant per
message; per-op timestamp traffic crosses over in the star's favour.
"""

import random

from conftest import emit

from repro.editor.mesh import MeshSession
from repro.editor.star import StarSession
from repro.net.channel import UniformLatency
from repro.workloads.random_session import (
    RandomSessionConfig,
    drive_mesh_session,
    drive_star_session,
)

OPS_PER_SITE = 4


def latencies(seed):
    def factory(src, dst):
        return UniformLatency(0.02, 0.6, random.Random(seed * 13 + src * 5 + dst))

    return factory


def run_star(n_sites, seed=0):
    config = RandomSessionConfig(n_sites=n_sites, ops_per_site=OPS_PER_SITE, seed=seed)
    session = StarSession(
        n_sites,
        initial_state=config.initial_document,
        latency_factory=latencies(seed),
        record_events=False,
        record_checks=False,
    )
    drive_star_session(session, config)
    session.run()
    assert session.converged()
    return session


def run_mesh(n_sites, seed=0):
    config = RandomSessionConfig(n_sites=n_sites, ops_per_site=OPS_PER_SITE, seed=seed)
    session = MeshSession(
        n_sites,
        initial_document=config.initial_document,
        latency_factory=latencies(seed),
    )
    drive_mesh_session(session, config)
    session.run()
    assert session.converged()
    return session


def test_star_session_end_to_end(benchmark):
    session = benchmark(run_star, 8)
    stats = session.wire_stats()
    assert stats.timestamp_bytes == 8 * stats.messages


def test_mesh_session_end_to_end(benchmark):
    session = benchmark(run_mesh, 8)
    stats = session.wire_stats()
    assert stats.timestamp_bytes == 8 * 4 * stats.messages  # 4B * N=8


def test_architecture_comparison_table(benchmark):
    def sweep():
        rows = []
        for n in (2, 4, 8, 12):
            star = run_star(n).wire_stats()
            mesh = run_mesh(n).wire_stats()
            rows.append((n, star, mesh))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    total_ops = OPS_PER_SITE
    lines = [
        "     N | arch | messages | ts bytes | ts B/op | total bytes",
    ]
    for n, star, mesh in rows:
        ops = n * total_ops
        lines.append(
            f"{n:>6} | star | {star.messages:>8} | {star.timestamp_bytes:>8} | "
            f"{star.timestamp_bytes / ops:>7.1f} | {star.total_bytes:>11}"
        )
        lines.append(
            f"{n:>6} | mesh | {mesh.messages:>8} | {mesh.timestamp_bytes:>8} | "
            f"{mesh.timestamp_bytes / ops:>7.1f} | {mesh.total_bytes:>11}"
        )
    emit("CLAIM-E2E: star+CVC vs mesh+fullVC, same workload", "\n".join(lines))

    for n, star, mesh in rows:
        ops = n * total_ops
        # star: each op crosses the wire n times (1 up + n-1 down), mesh n-1
        assert star.messages == ops * n
        assert mesh.messages == ops * (n - 1)
        # per-message timestamp: constant vs linear in N
        assert star.timestamp_bytes / star.messages == 8
        assert mesh.timestamp_bytes / mesh.messages == 4 * n
    # crossover: despite the extra hop, star timestamp traffic per op is
    # 8*n vs mesh 4*n*(n-1); star wins for all n >= 3
    for n, star, mesh in rows:
        if n >= 3:
            assert star.timestamp_bytes < mesh.timestamp_bytes
