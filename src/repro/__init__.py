"""repro: compressed vector clocks for real-time group editors.

A production-quality reproduction of Sun & Cai, "Capturing Causality by
Compressed Vector Clock in Real-time Group Editors" (IPPS 2002).

Quickstart::

    from repro import StarSession, Insert, Delete

    session = StarSession(n_sites=2, initial_state="ABCDE")
    session.generate_at(1, Insert("12", 1), at=1.0)
    session.generate_at(2, Delete(3, 2), at=1.0)
    session.run()
    assert session.converged()

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` -- compressed state vectors, timestamps, the
  concurrency formulas (3)-(7), history buffers;
* :mod:`repro.ot` -- operational transformation (positional and
  component text operations, IT/ET, generic OT types);
* :mod:`repro.clocks` -- full vector clocks, Lamport clocks, and the
  Singhal-Kshemkalyani / Fowler-Zwaenepoel baselines;
* :mod:`repro.net` -- deterministic discrete-event simulation with FIFO
  channels (the paper's TCP/star substrate);
* :mod:`repro.editor` -- the star-topology editor (the paper's system)
  and the fully-distributed mesh baseline;
* :mod:`repro.analysis` -- causality ground-truth oracle and
  consistency checkers;
* :mod:`repro.workloads` -- scripted paper scenarios and random
  workloads;
* :mod:`repro.metrics` -- timestamp/memory overhead accounting;
* :mod:`repro.viz` -- ASCII renderings of the paper's figures.
"""

from repro.core import (
    ClientStateVector,
    CompressedTimestamp,
    FullTimestamp,
    HistoryBuffer,
    NotifierStateVector,
    OriginKind,
    client_concurrent,
    notifier_concurrent,
)
from repro.ot import Delete, Insert, TextOperation, transform_pair
from repro.clocks import LamportClock, VectorClock
from repro.editor import MeshSession, StarSession
from repro.analysis import CausalityOracle, check_divergence

__version__ = "1.0.0"

__all__ = [
    "ClientStateVector",
    "NotifierStateVector",
    "CompressedTimestamp",
    "FullTimestamp",
    "OriginKind",
    "HistoryBuffer",
    "client_concurrent",
    "notifier_concurrent",
    "Insert",
    "Delete",
    "TextOperation",
    "transform_pair",
    "VectorClock",
    "LamportClock",
    "StarSession",
    "MeshSession",
    "CausalityOracle",
    "check_divergence",
    "__version__",
]
