"""``python -m repro monitor``: aggregate live telemetry across processes.

Cluster processes append :class:`~repro.obs.telemetry.TelemetryFrame`
and :class:`~repro.obs.telemetry.HealthEvent` records to per-site
``telemetry_<site>.jsonl`` streams (crash-safe, one flushed line per
record -- see :class:`repro.obs.tracer.JsonlWriter`).  The monitor
tails those files in the artifact directory, merges per-site state into
one cross-process view (counters summed and histograms concatenated via
:meth:`~repro.obs.tracer.MetricsRegistry.merge`), and renders one line
per interval:

    t=2.10s sites=4/4 exec=9/9/9/9 gen=9 hold=0(hw 2) infl=0 rtx=0 \
store=11 q=3 epoch=0 digests=ok

Tailing is incremental: a :class:`TelemetryTailer` keeps a byte cursor
per stream file and each interval parses only the lines appended since
the previous poll -- every record is parsed exactly once over the
monitor's lifetime, however long the run (re-reading whole files each
interval would make the monitor quadratic in run length).

Two more arrival paths feed the same deduplication:

* TELEMETRY frames gossiped over TCP land in the notifier's stream file
  (nothing special to do -- they are just lines);
* the optional **UDP sideband** (:mod:`repro.net.beacon`): with
  ``--beacon-port`` the monitor binds a datagram socket and every
  cluster process fires its frames straight at it, so frames keep
  arriving while the TCP gossip hub is dead mid-failover.

Frames are deduplicated by ``(site, seq)`` regardless of arrival path,
so a frame seen on disk, via gossip, and via UDP still counts once.

``--follow`` turns the interval lines into a live per-site dashboard
with unicode sparklines (ops/sec, hold-back depth, in-flight window,
end-to-end latency) when stdout is a TTY, and degrades to the plain
deterministic line output when piped.

On exit (or with ``--once``, immediately) it writes a final
``monitor.jsonl`` artifact: the aggregation header, every interval
snapshot, and every health event observed -- the machine-readable
record of what the live view showed.

Reading is deliberately lenient: a process killed mid-write leaves at
most one torn trailing line, and the monitor's whole purpose is to work
*during* failures, so undecodable trailing records are skipped rather
than fatal.
"""

from __future__ import annotations

import json
import sys
import time as _time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    TELEMETRY_SCHEMA_VERSION,
    HealthEvent,
    TelemetryFrame,
)
from repro.obs.tracer import Histogram, JsonlWriter, MetricsRegistry

MONITOR_FORMAT = "repro-obs-monitor-v1"
MONITOR_SCHEMA_VERSION = 1


# -- reading the streams -------------------------------------------------------


def read_telemetry(
    path: Union[str, Path]
) -> tuple[dict[str, Any], list[TelemetryFrame], list[HealthEvent]]:
    """Read one process's telemetry stream, tolerating a torn tail.

    Returns ``(header, frames, health_events)``.  Lines that fail to
    parse are skipped: the stream is written crash-safely, so damage is
    confined to the final line of a killed process -- and a monitor
    that dies on exactly the failure it exists to observe is useless.
    """
    header: dict[str, Any] = {}
    frames: list[TelemetryFrame] = []
    health: list[HealthEvent] = []
    text = Path(path).read_text(encoding="utf-8")
    for index, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except ValueError:
            continue  # torn line from a killed writer
        if index == 0 and data.get("format") == TELEMETRY_FORMAT:
            header = data
            continue
        rec = data.get("rec")
        try:
            if rec == "frame":
                frames.append(TelemetryFrame.from_json(line))
            elif rec == "health":
                health.append(HealthEvent.from_json(line))
        except (ValueError, KeyError, TypeError):
            continue
    return header, frames, health


class TelemetryTailer:
    """Incremental, deduplicating reader of a directory's telemetry.

    Keeps one byte cursor per ``telemetry_*.jsonl`` file; each
    :meth:`poll` seeks to the cursor, consumes only the *complete* lines
    appended since (a partial line that a writer is mid-flush on stays
    unconsumed until its newline lands), and advances the cursor -- so a
    record is parsed exactly once over the tailer's lifetime, no matter
    how many times the monitor polls.  :attr:`records_parsed` counts
    those parses, which is what the exactly-once unit test pins.

    Deduplication state lives here too: frames are keyed by
    ``(site, seq)`` and health events by full identity, across *all*
    arrival paths -- stream files via :meth:`poll`, and the UDP sideband
    via :meth:`ingest`.  A frame seen on disk, via gossip (the
    notifier's file), and via datagram counts once.
    """

    def __init__(self, out_dir: Union[str, Path]) -> None:
        self.out_dir = Path(out_dir)
        self._offsets: dict[Path, int] = {}
        self._seen_frames: set[tuple[int, int]] = set()
        self._seen_health: set[HealthEvent] = set()
        #: Stream records (frames + health) parsed from files, pre-dedup.
        self.records_parsed = 0
        #: Frames accepted (post-dedup) from stream files.
        self.frames_from_files = 0
        #: Frames accepted (post-dedup) through :meth:`ingest` (UDP).
        self.frames_from_ingest = 0

    def poll(self) -> tuple[dict[int, list[TelemetryFrame]], list[HealthEvent]]:
        """New records since the last poll: ``(frames by site, health)``."""
        by_site: dict[int, list[TelemetryFrame]] = {}
        health: list[HealthEvent] = []
        for path in sorted(self.out_dir.glob("telemetry_*.jsonl")):
            for record in self._read_new(path):
                if isinstance(record, TelemetryFrame):
                    key = (record.site, record.seq)
                    if key in self._seen_frames:
                        continue
                    self._seen_frames.add(key)
                    self.frames_from_files += 1
                    by_site.setdefault(record.site, []).append(record)
                else:
                    if record in self._seen_health:
                        continue
                    self._seen_health.add(record)
                    health.append(record)
        for frames_list in by_site.values():
            frames_list.sort(key=lambda f: f.seq)
        health.sort(key=lambda e: (e.time, e.site, e.kind))
        return by_site, health

    def ingest(self, frame: TelemetryFrame) -> bool:
        """Offer a frame that arrived outside the files (UDP sideband).

        Returns True iff the frame was new -- i.e. not already seen on
        any path.  Rejected duplicates are the common case while both
        the files and the sideband are healthy; that is the design, not
        a problem.
        """
        key = (frame.site, frame.seq)
        if key in self._seen_frames:
            return False
        self._seen_frames.add(key)
        self.frames_from_ingest += 1
        return True

    def _read_new(
        self, path: Path
    ) -> Iterator[Union[TelemetryFrame, HealthEvent]]:
        offset = self._offsets.get(path, 0)
        try:
            size = path.stat().st_size
            if size < offset:
                offset = 0  # truncated/rewritten file: start over
            if size == offset:
                return
            with path.open("rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
        except OSError:
            return  # vanished mid-poll; next poll sees the final state
        end = chunk.rfind(b"\n")
        if end < 0:
            return  # no complete line yet: leave the cursor put
        self._offsets[path] = offset + end + 1
        for raw in chunk[:end].split(b"\n"):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn line from a killed writer
            if data.get("format") == TELEMETRY_FORMAT:
                continue  # the stream header
            rec = data.get("rec")
            try:
                if rec == "frame":
                    self.records_parsed += 1
                    yield TelemetryFrame.from_json(line)
                elif rec == "health":
                    self.records_parsed += 1
                    yield HealthEvent.from_json(line)
            except (ValueError, KeyError, TypeError):
                continue


def scan_dir(
    out_dir: Union[str, Path]
) -> tuple[dict[int, list[TelemetryFrame]], list[HealthEvent]]:
    """Read every ``telemetry_*.jsonl`` in ``out_dir``, deduplicated.

    One-shot form of :class:`TelemetryTailer` (a fresh tailer's first
    poll is the whole directory): frames keyed by ``(site, seq)`` --
    a client frame gossiped to the notifier appears in two files but
    counts once -- and health events deduplicated by full identity.
    """
    return TelemetryTailer(out_dir).poll()


# -- aggregation ---------------------------------------------------------------


def site_registry(frames: Sequence[TelemetryFrame]) -> MetricsRegistry:
    """One site's frames as a registry: final counters, gauge histograms.

    Counters carry the *latest* cumulative values (they are already
    monotone totals in the frames); histograms record every sampled
    gauge value, so a percentile over the merged registry answers "how
    deep did hold-back get across the whole cluster".
    """
    registry = MetricsRegistry()
    if not frames:
        return registry
    last = max(frames, key=lambda f: f.seq)
    registry.inc("telemetry.ops_generated", last.ops_generated)
    registry.inc("telemetry.ops_executed", last.ops_executed)
    registry.inc("telemetry.retransmits", last.retransmits)
    registry.inc("telemetry.storage_ints", last.storage_ints)
    registry.inc("telemetry.elected", last.elected)
    registry.inc("telemetry.promoted", last.promoted)
    registry.inc("telemetry.resynced", last.resynced)
    registry.inc("telemetry.degraded_queued", last.degraded_queued)
    registry.inc("telemetry.frames", len(frames))
    for frame in frames:
        registry.observe("telemetry.holdback_depth", frame.holdback_depth)
        registry.observe("telemetry.inflight", frame.inflight)
        registry.observe("telemetry.queue_depth", frame.queue_depth)
        if frame.e2e_p95_ms is not None:
            registry.observe("telemetry.e2e_p95_ms", frame.e2e_p95_ms)
    return registry


def merged_registry(by_site: dict[int, list[TelemetryFrame]]) -> MetricsRegistry:
    """The cross-process registry: every site merged into one."""
    merged = MetricsRegistry()
    for site in sorted(by_site):
        merged.merge(site_registry(by_site[site]))
    return merged


@dataclass
class MonitorSnapshot:
    """One aggregated interval: the latest frame per site, summed."""

    time: float
    latest: dict[int, TelemetryFrame] = field(default_factory=dict)
    health: list[HealthEvent] = field(default_factory=list)

    @property
    def sites(self) -> list[int]:
        return sorted(self.latest)

    @property
    def ops_executed(self) -> dict[int, int]:
        return {site: self.latest[site].ops_executed for site in self.sites}

    @property
    def ops_generated(self) -> int:
        return sum(f.ops_generated for f in self.latest.values())

    @property
    def holdback_depth(self) -> int:
        return sum(f.holdback_depth for f in self.latest.values())

    @property
    def holdback_high_water(self) -> int:
        return max((f.holdback_high_water for f in self.latest.values()),
                   default=0)

    @property
    def inflight(self) -> int:
        return sum(f.inflight for f in self.latest.values())

    @property
    def retransmits(self) -> int:
        return sum(f.retransmits for f in self.latest.values())

    @property
    def storage_ints(self) -> int:
        return sum(f.storage_ints for f in self.latest.values())

    @property
    def queue_depth(self) -> int:
        return sum(f.queue_depth for f in self.latest.values())

    @property
    def epoch(self) -> int:
        return max((f.epoch for f in self.latest.values()), default=0)

    @property
    def elected(self) -> int:
        return sum(f.elected for f in self.latest.values())

    @property
    def promoted(self) -> int:
        return sum(f.promoted for f in self.latest.values())

    @property
    def resynced(self) -> int:
        return sum(f.resynced for f in self.latest.values())

    @property
    def degraded_queued(self) -> int:
        return sum(f.degraded_queued for f in self.latest.values())

    @property
    def e2e_p95_ms(self) -> Optional[float]:
        """Worst per-site end-to-end latency p95, or ``None`` if no site
        reports the gauge (span instrumentation off or nothing remote
        executed yet).  The maximum -- not an average of percentiles,
        which would be meaningless -- so the line shows the site a human
        would look at first."""
        values = [
            f.e2e_p95_ms for f in self.latest.values()
            if f.e2e_p95_ms is not None
        ]
        return max(values) if values else None

    @property
    def digests_agree(self) -> bool:
        """True unless two *complete-looking* replicas disagree.

        Mid-run digests legitimately differ, so disagreement is only
        meaningful among sites at the maximum executed count.
        """
        if not self.latest:
            return True
        top = max(f.ops_executed for f in self.latest.values())
        digests = {
            f.digest for f in self.latest.values()
            if f.ops_executed == top and f.digest
        }
        return len(digests) <= 1

    def line(self, expected_sites: Optional[int] = None) -> str:
        """The live one-line-per-interval rendering."""
        count = len(self.latest)
        sites = f"{count}/{expected_sites}" if expected_sites else str(count)
        executed = "/".join(
            str(self.latest[s].ops_executed) for s in self.sites
        ) or "-"
        digests = "ok" if self.digests_agree else "DIVERGED"
        text = (
            f"t={self.time:8.2f}s sites={sites} exec={executed} "
            f"gen={self.ops_generated} hold={self.holdback_depth}"
            f"(hw {self.holdback_high_water}) infl={self.inflight} "
            f"rtx={self.retransmits} store={self.storage_ints} "
            f"q={self.queue_depth} epoch={self.epoch} digests={digests}"
        )
        if self.e2e_p95_ms is not None:
            text += f" e2e={self.e2e_p95_ms:.1f}ms"
        if self.elected or self.promoted or self.resynced or self.degraded_queued:
            # The epoch transition, live: elections opened, promotions
            # completed, members resynced under the new centre, edits
            # queued while leaderless.
            text += (
                f" failover={self.elected}e/{self.promoted}p/"
                f"{self.resynced}r dq={self.degraded_queued}"
            )
        for event in self.health:
            text += (
                f"\n  health: [{event.verdict}] site {event.site} "
                f"{event.kind}"
                + (f" (peer {event.peer})" if event.peer is not None else "")
                + (f": {event.detail}" if event.detail else "")
            )
        return text

    def to_json(self) -> str:
        data: dict[str, Any] = {
            "rec": "interval",
            "time": self.time,
            "sites": self.sites,
            "ops_executed": {str(s): n for s, n in self.ops_executed.items()},
            "ops_generated": self.ops_generated,
            "holdback_depth": self.holdback_depth,
            "holdback_high_water": self.holdback_high_water,
            "inflight": self.inflight,
            "retransmits": self.retransmits,
            "storage_ints": self.storage_ints,
            "queue_depth": self.queue_depth,
            "epoch": self.epoch,
            "elected": self.elected,
            "promoted": self.promoted,
            "resynced": self.resynced,
            "degraded_queued": self.degraded_queued,
            "digests_agree": self.digests_agree,
            "health": [json.loads(e.to_json()) for e in self.health],
        }
        if self.e2e_p95_ms is not None:
            data["e2e_p95_ms"] = self.e2e_p95_ms
        return json.dumps(data)


def aggregate(
    by_site: dict[int, list[TelemetryFrame]],
    health: Sequence[HealthEvent] = (),
) -> MonitorSnapshot:
    """Fold per-site frame lists into one snapshot (latest per site)."""
    latest: dict[int, TelemetryFrame] = {}
    newest = 0.0
    for site, frames in by_site.items():
        if not frames:
            continue
        last = max(frames, key=lambda f: f.seq)
        latest[site] = last
        newest = max(newest, last.time)
    return MonitorSnapshot(time=newest, latest=latest, health=list(health))


# -- the follow view -----------------------------------------------------------


#: Eight block heights, the classic terminal sparkline alphabet.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 12) -> str:
    """The last ``width`` values as unicode block heights.

    Scaled against the window maximum (an all-zero window renders as a
    flat floor), so the shape shows *relative* movement -- which is what
    a human scans a dashboard for.
    """
    tail = [max(0.0, float(v)) for v in list(values)[-width:]]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK_BLOCKS[0] * len(tail)
    steps = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[min(steps, round(v / top * steps))] for v in tail
    )


class FollowView:
    """Per-site gauge history and rendering for ``monitor --follow``.

    Each :meth:`update` appends one interval's gauges per site; on a TTY
    :meth:`render` redraws a whole-screen dashboard (ANSI home + clear,
    one row per site with sparklines for ops/sec, hold-back depth,
    in-flight window and end-to-end latency, plus failover/degraded
    markers); piped, it falls back to the deterministic one-line
    rendering -- same information, diffable in CI logs.
    """

    #: Sparkline window (intervals) kept per gauge.
    WINDOW = 24

    def __init__(self, expect_sites: Optional[int] = None) -> None:
        self.expect_sites = expect_sites
        self.intervals = 0
        self._history: dict[int, dict[str, deque[float]]] = {}
        self._prev: dict[int, TelemetryFrame] = {}
        self._recent_health: deque[HealthEvent] = deque(maxlen=6)

    def _site_history(self, site: int) -> dict[str, deque[float]]:
        hist = self._history.get(site)
        if hist is None:
            hist = {
                name: deque(maxlen=self.WINDOW)
                for name in ("rate", "hold", "inflight", "e2e")
            }
            self._history[site] = hist
        return hist

    def update(self, snapshot: MonitorSnapshot) -> None:
        self.intervals += 1
        self._recent_health.extend(snapshot.health)
        for site, frame in snapshot.latest.items():
            hist = self._site_history(site)
            prev = self._prev.get(site)
            rate = 0.0
            if prev is not None and frame.time > prev.time:
                rate = max(0, frame.ops_executed - prev.ops_executed) / (
                    frame.time - prev.time
                )
            hist["rate"].append(rate)
            hist["hold"].append(float(frame.holdback_depth))
            hist["inflight"].append(float(frame.inflight))
            hist["e2e"].append(
                frame.e2e_p95_ms if frame.e2e_p95_ms is not None else 0.0
            )
            self._prev[site] = frame

    def _markers(self, site: int, frame: TelemetryFrame) -> str:
        flags = []
        if frame.promoted:
            flags.append("PROMOTED")
        elif frame.resynced:
            flags.append("REHOMED")
        elif frame.elected:
            flags.append("ELECTED")
        if frame.degraded_queued:
            flags.append(f"DEGRADED({frame.degraded_queued})")
        return f" [{' '.join(flags)}]" if flags else ""

    def render(self, snapshot: MonitorSnapshot, *, tty: bool) -> str:
        if not tty:
            return snapshot.line(self.expect_sites)
        count = len(snapshot.latest)
        sites = (f"{count}/{self.expect_sites}" if self.expect_sites
                 else str(count))
        digests = "ok" if snapshot.digests_agree else "DIVERGED"
        lines = [
            f"repro monitor --follow   t={snapshot.time:.2f}s  "
            f"sites={sites}  epoch={snapshot.epoch}  digests={digests}  "
            f"interval #{self.intervals}",
            "",
        ]
        for site in sorted(self._history):
            frame = self._prev[site]
            hist = self._history[site]
            rate = hist["rate"][-1] if hist["rate"] else 0.0
            e2e = frame.e2e_p95_ms
            e2e_text = f"{e2e:6.1f}ms" if e2e is not None else "      --"
            stale = "" if site in snapshot.latest else " (stale)"
            lines.append(
                f"site {site} {frame.role:<8} exec {frame.ops_executed:>4} "
                f"| ops/s {rate:6.1f} {sparkline(hist['rate']):<12} "
                f"| hold {frame.holdback_depth:>3} "
                f"{sparkline(hist['hold']):<12} "
                f"| infl {frame.inflight:>3} "
                f"{sparkline(hist['inflight']):<12} "
                f"| e2e {e2e_text} {sparkline(hist['e2e']):<12}"
                f"{self._markers(site, frame)}{stale}"
            )
        if self._recent_health:
            lines.append("")
            lines.extend(
                f"  health: [{e.verdict}] site {e.site} {e.kind}"
                + (f" (peer {e.peer})" if e.peer is not None else "")
                + (f": {e.detail}" if e.detail else "")
                for e in self._recent_health
            )
        # Home the cursor and clear to end of screen: a flicker-free
        # redraw without pulling in any terminal library.
        return "\x1b[H\x1b[J" + "\n".join(lines)


# -- the live loop -------------------------------------------------------------


def run_monitor(
    out_dir: Union[str, Path],
    *,
    interval_s: float = 1.0,
    duration_s: Optional[float] = None,
    once: bool = False,
    expect_sites: Optional[int] = None,
    artifact: Optional[Union[str, Path]] = None,
    follow: bool = False,
    max_intervals: Optional[int] = None,
    beacon_port: Optional[int] = None,
    beacon: Optional[Any] = None,
    tty: Optional[bool] = None,
    emit: Callable[[str], None] = print,
    clock: Callable[[], float] = _time.monotonic,
    sleep: Callable[[float], None] = _time.sleep,
) -> int:
    """Tail ``out_dir``'s telemetry, print interval lines, write the artifact.

    With ``once``, aggregates whatever is on disk right now, prints a
    single line, writes the artifact, and returns -- the CI probe mode.
    Otherwise loops every ``interval_s`` until ``duration_s`` elapses or
    ``max_intervals`` rounds have run (or forever when neither is set;
    the live loop also stops once every expected site has gone quiet
    for a few intervals).  All reading goes through one
    :class:`TelemetryTailer`, so each interval parses only the newly
    appended records.

    ``beacon_port`` binds the UDP telemetry sideband
    (:class:`repro.net.beacon.BeaconReceiver`) and folds arriving
    datagrams through the same ``(site, seq)`` dedup as the files --
    the monitor keeps rendering fresh frames while the TCP gossip hub
    is dead.  ``follow`` renders the sparkline dashboard on a TTY
    (``tty=None`` autodetects stdout) and plain lines otherwise.

    Returns 0 if any telemetry was seen and no ``fail`` health verdict
    surfaced, 2 on a ``fail`` verdict, 1 if no telemetry ever appeared.
    """
    out_path = Path(out_dir)
    artifact_path = Path(artifact) if artifact else out_path / "monitor.jsonl"
    started = clock()
    tailer = TelemetryTailer(out_path)
    # ``beacon`` injects an already-bound receiver (tests); the caller
    # keeps ownership.  ``beacon_port`` binds one here and closes it.
    receiver = beacon
    owns_receiver = False
    if receiver is None and beacon_port is not None:
        from repro.net.beacon import BeaconReceiver

        receiver = BeaconReceiver(port=beacon_port)
        owns_receiver = True
    view = FollowView(expect_sites) if follow else None
    if tty is None:
        tty = bool(getattr(sys.stdout, "isatty", lambda: False)())
    by_site: dict[int, list[TelemetryFrame]] = {}
    snapshots: list[MonitorSnapshot] = []
    all_health: list[HealthEvent] = []
    seen_any = False
    idle_rounds = 0
    rounds = 0
    last_fingerprint: Optional[tuple[tuple[int, int], ...]] = None

    try:
        while True:
            fresh_by_site, fresh = tailer.poll()
            for site, frames in fresh_by_site.items():
                by_site.setdefault(site, []).extend(frames)
            if receiver is not None:
                for tframe in receiver.drain():
                    if tailer.ingest(tframe):
                        by_site.setdefault(tframe.site, []).append(tframe)
            all_health.extend(fresh)
            snapshot = aggregate(by_site, fresh)
            if snapshot.latest:
                seen_any = True
                snapshots.append(snapshot)
                if view is not None:
                    view.update(snapshot)
                    emit(view.render(snapshot, tty=tty))
                else:
                    emit(snapshot.line(expect_sites))
            fingerprint = tuple(
                (site, max(f.seq for f in frames))
                for site, frames in sorted(by_site.items())
            )
            rounds += 1
            if once:
                break
            if max_intervals is not None and rounds >= max_intervals:
                break
            idle_rounds = (idle_rounds + 1
                           if fingerprint == last_fingerprint else 0)
            last_fingerprint = fingerprint
            if duration_s is not None and clock() - started >= duration_s:
                break
            if seen_any and idle_rounds >= 3:
                break  # every stream has gone quiet: the run is over
            sleep(interval_s)
    finally:
        if receiver is not None and owns_receiver:
            receiver.close()

    registry = merged_registry(by_site)
    registry.inc("monitor.records_parsed", tailer.records_parsed)
    registry.inc("monitor.frames_from_files", tailer.frames_from_files)
    registry.inc("monitor.frames_from_udp", tailer.frames_from_ingest)
    if receiver is not None:
        registry.inc("monitor.udp_datagrams", receiver.received)
    _write_artifact(artifact_path, snapshots, all_health, registry)
    if any(e.verdict == "fail" for e in all_health):
        return 2
    return 0 if seen_any else 1


def _write_artifact(
    path: Path,
    snapshots: Sequence[MonitorSnapshot],
    health: Sequence[HealthEvent],
    registry: MetricsRegistry,
) -> None:
    """The final JSONL artifact: header, intervals, health, merged metrics."""
    header = {
        "format": MONITOR_FORMAT,
        "schema_version": MONITOR_SCHEMA_VERSION,
        "telemetry_schema_version": TELEMETRY_SCHEMA_VERSION,
        "intervals": len(snapshots),
        "health_events": len(health),
    }
    with JsonlWriter(path, header) as writer:
        for snapshot in snapshots:
            writer.write_line(snapshot.to_json())
        for event in health:
            writer.write_line(event.to_json())
        writer.write_line(json.dumps({
            "rec": "metrics",
            "counters": registry.counters(),
            "histograms": {
                name: _histogram_summary(hist)
                for name, hist in registry.histograms().items()
            },
        }))


def _histogram_summary(hist: Histogram) -> dict[str, Any]:
    return {
        "count": hist.count,
        "min": hist.minimum,
        "p50": hist.percentile(50),
        "p95": hist.percentile(95),
        "max": hist.maximum,
        "mean": hist.mean,
    }


__all__ = [
    "MONITOR_FORMAT",
    "MONITOR_SCHEMA_VERSION",
    "MonitorSnapshot",
    "aggregate",
    "merged_registry",
    "read_telemetry",
    "run_monitor",
    "scan_dir",
    "site_registry",
]
