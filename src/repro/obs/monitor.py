"""``python -m repro monitor``: aggregate live telemetry across processes.

Cluster processes append :class:`~repro.obs.telemetry.TelemetryFrame`
and :class:`~repro.obs.telemetry.HealthEvent` records to per-site
``telemetry_<site>.jsonl`` streams (crash-safe, one flushed line per
record -- see :class:`repro.obs.tracer.JsonlWriter`).  The monitor
tails those files in the artifact directory, merges per-site state into
one cross-process view (counters summed and histograms concatenated via
:meth:`~repro.obs.tracer.MetricsRegistry.merge`), and renders one line
per interval:

    t=2.10s sites=4/4 exec=9/9/9/9 gen=9 hold=0(hw 2) infl=0 rtx=0 \
store=11 q=3 epoch=0 digests=ok

On exit (or with ``--once``, immediately) it writes a final
``monitor.jsonl`` artifact: the aggregation header, every interval
snapshot, and every health event observed -- the machine-readable
record of what the live view showed.

Reading is deliberately lenient: a process killed mid-write leaves at
most one torn trailing line, and the monitor's whole purpose is to work
*during* failures, so undecodable trailing records are skipped rather
than fatal.  Frames are deduplicated by ``(site, seq)`` because a
client's frame can appear twice -- once in its own stream and once
gossiped into the notifier's.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    TELEMETRY_SCHEMA_VERSION,
    HealthEvent,
    TelemetryFrame,
)
from repro.obs.tracer import Histogram, JsonlWriter, MetricsRegistry

MONITOR_FORMAT = "repro-obs-monitor-v1"
MONITOR_SCHEMA_VERSION = 1


# -- reading the streams -------------------------------------------------------


def read_telemetry(
    path: Union[str, Path]
) -> tuple[dict[str, Any], list[TelemetryFrame], list[HealthEvent]]:
    """Read one process's telemetry stream, tolerating a torn tail.

    Returns ``(header, frames, health_events)``.  Lines that fail to
    parse are skipped: the stream is written crash-safely, so damage is
    confined to the final line of a killed process -- and a monitor
    that dies on exactly the failure it exists to observe is useless.
    """
    header: dict[str, Any] = {}
    frames: list[TelemetryFrame] = []
    health: list[HealthEvent] = []
    text = Path(path).read_text(encoding="utf-8")
    for index, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except ValueError:
            continue  # torn line from a killed writer
        if index == 0 and data.get("format") == TELEMETRY_FORMAT:
            header = data
            continue
        rec = data.get("rec")
        try:
            if rec == "frame":
                frames.append(TelemetryFrame.from_json(line))
            elif rec == "health":
                health.append(HealthEvent.from_json(line))
        except (ValueError, KeyError, TypeError):
            continue
    return header, frames, health


def scan_dir(
    out_dir: Union[str, Path]
) -> tuple[dict[int, list[TelemetryFrame]], list[HealthEvent]]:
    """Read every ``telemetry_*.jsonl`` in ``out_dir``, deduplicated.

    Frames are keyed by ``(site, seq)``: a client frame gossiped to the
    notifier appears in two files but counts once.  Health events are
    deduplicated by their full identity for the same reason.
    """
    by_site: dict[int, list[TelemetryFrame]] = {}
    seen_frames: set[tuple[int, int]] = set()
    health: list[HealthEvent] = []
    seen_health: set[HealthEvent] = set()
    for path in sorted(Path(out_dir).glob("telemetry_*.jsonl")):
        _header, frames, events = read_telemetry(path)
        for frame in frames:
            key = (frame.site, frame.seq)
            if key in seen_frames:
                continue
            seen_frames.add(key)
            by_site.setdefault(frame.site, []).append(frame)
        for event in events:
            if event in seen_health:
                continue
            seen_health.add(event)
            health.append(event)
    for frames_list in by_site.values():
        frames_list.sort(key=lambda f: f.seq)
    health.sort(key=lambda e: (e.time, e.site, e.kind))
    return by_site, health


# -- aggregation ---------------------------------------------------------------


def site_registry(frames: Sequence[TelemetryFrame]) -> MetricsRegistry:
    """One site's frames as a registry: final counters, gauge histograms.

    Counters carry the *latest* cumulative values (they are already
    monotone totals in the frames); histograms record every sampled
    gauge value, so a percentile over the merged registry answers "how
    deep did hold-back get across the whole cluster".
    """
    registry = MetricsRegistry()
    if not frames:
        return registry
    last = max(frames, key=lambda f: f.seq)
    registry.inc("telemetry.ops_generated", last.ops_generated)
    registry.inc("telemetry.ops_executed", last.ops_executed)
    registry.inc("telemetry.retransmits", last.retransmits)
    registry.inc("telemetry.storage_ints", last.storage_ints)
    registry.inc("telemetry.elected", last.elected)
    registry.inc("telemetry.promoted", last.promoted)
    registry.inc("telemetry.resynced", last.resynced)
    registry.inc("telemetry.degraded_queued", last.degraded_queued)
    registry.inc("telemetry.frames", len(frames))
    for frame in frames:
        registry.observe("telemetry.holdback_depth", frame.holdback_depth)
        registry.observe("telemetry.inflight", frame.inflight)
        registry.observe("telemetry.queue_depth", frame.queue_depth)
    return registry


def merged_registry(by_site: dict[int, list[TelemetryFrame]]) -> MetricsRegistry:
    """The cross-process registry: every site merged into one."""
    merged = MetricsRegistry()
    for site in sorted(by_site):
        merged.merge(site_registry(by_site[site]))
    return merged


@dataclass
class MonitorSnapshot:
    """One aggregated interval: the latest frame per site, summed."""

    time: float
    latest: dict[int, TelemetryFrame] = field(default_factory=dict)
    health: list[HealthEvent] = field(default_factory=list)

    @property
    def sites(self) -> list[int]:
        return sorted(self.latest)

    @property
    def ops_executed(self) -> dict[int, int]:
        return {site: self.latest[site].ops_executed for site in self.sites}

    @property
    def ops_generated(self) -> int:
        return sum(f.ops_generated for f in self.latest.values())

    @property
    def holdback_depth(self) -> int:
        return sum(f.holdback_depth for f in self.latest.values())

    @property
    def holdback_high_water(self) -> int:
        return max((f.holdback_high_water for f in self.latest.values()),
                   default=0)

    @property
    def inflight(self) -> int:
        return sum(f.inflight for f in self.latest.values())

    @property
    def retransmits(self) -> int:
        return sum(f.retransmits for f in self.latest.values())

    @property
    def storage_ints(self) -> int:
        return sum(f.storage_ints for f in self.latest.values())

    @property
    def queue_depth(self) -> int:
        return sum(f.queue_depth for f in self.latest.values())

    @property
    def epoch(self) -> int:
        return max((f.epoch for f in self.latest.values()), default=0)

    @property
    def elected(self) -> int:
        return sum(f.elected for f in self.latest.values())

    @property
    def promoted(self) -> int:
        return sum(f.promoted for f in self.latest.values())

    @property
    def resynced(self) -> int:
        return sum(f.resynced for f in self.latest.values())

    @property
    def degraded_queued(self) -> int:
        return sum(f.degraded_queued for f in self.latest.values())

    @property
    def digests_agree(self) -> bool:
        """True unless two *complete-looking* replicas disagree.

        Mid-run digests legitimately differ, so disagreement is only
        meaningful among sites at the maximum executed count.
        """
        if not self.latest:
            return True
        top = max(f.ops_executed for f in self.latest.values())
        digests = {
            f.digest for f in self.latest.values()
            if f.ops_executed == top and f.digest
        }
        return len(digests) <= 1

    def line(self, expected_sites: Optional[int] = None) -> str:
        """The live one-line-per-interval rendering."""
        count = len(self.latest)
        sites = f"{count}/{expected_sites}" if expected_sites else str(count)
        executed = "/".join(
            str(self.latest[s].ops_executed) for s in self.sites
        ) or "-"
        digests = "ok" if self.digests_agree else "DIVERGED"
        text = (
            f"t={self.time:8.2f}s sites={sites} exec={executed} "
            f"gen={self.ops_generated} hold={self.holdback_depth}"
            f"(hw {self.holdback_high_water}) infl={self.inflight} "
            f"rtx={self.retransmits} store={self.storage_ints} "
            f"q={self.queue_depth} epoch={self.epoch} digests={digests}"
        )
        if self.elected or self.promoted or self.resynced or self.degraded_queued:
            # The epoch transition, live: elections opened, promotions
            # completed, members resynced under the new centre, edits
            # queued while leaderless.
            text += (
                f" failover={self.elected}e/{self.promoted}p/"
                f"{self.resynced}r dq={self.degraded_queued}"
            )
        for event in self.health:
            text += (
                f"\n  health: [{event.verdict}] site {event.site} "
                f"{event.kind}"
                + (f" (peer {event.peer})" if event.peer is not None else "")
                + (f": {event.detail}" if event.detail else "")
            )
        return text

    def to_json(self) -> str:
        data: dict[str, Any] = {
            "rec": "interval",
            "time": self.time,
            "sites": self.sites,
            "ops_executed": {str(s): n for s, n in self.ops_executed.items()},
            "ops_generated": self.ops_generated,
            "holdback_depth": self.holdback_depth,
            "holdback_high_water": self.holdback_high_water,
            "inflight": self.inflight,
            "retransmits": self.retransmits,
            "storage_ints": self.storage_ints,
            "queue_depth": self.queue_depth,
            "epoch": self.epoch,
            "elected": self.elected,
            "promoted": self.promoted,
            "resynced": self.resynced,
            "degraded_queued": self.degraded_queued,
            "digests_agree": self.digests_agree,
            "health": [json.loads(e.to_json()) for e in self.health],
        }
        return json.dumps(data)


def aggregate(
    by_site: dict[int, list[TelemetryFrame]],
    health: Sequence[HealthEvent] = (),
) -> MonitorSnapshot:
    """Fold per-site frame lists into one snapshot (latest per site)."""
    latest: dict[int, TelemetryFrame] = {}
    newest = 0.0
    for site, frames in by_site.items():
        if not frames:
            continue
        last = max(frames, key=lambda f: f.seq)
        latest[site] = last
        newest = max(newest, last.time)
    return MonitorSnapshot(time=newest, latest=latest, health=list(health))


# -- the live loop -------------------------------------------------------------


def run_monitor(
    out_dir: Union[str, Path],
    *,
    interval_s: float = 1.0,
    duration_s: Optional[float] = None,
    once: bool = False,
    expect_sites: Optional[int] = None,
    artifact: Optional[Union[str, Path]] = None,
    emit: Callable[[str], None] = print,
    clock: Callable[[], float] = _time.monotonic,
    sleep: Callable[[float], None] = _time.sleep,
) -> int:
    """Tail ``out_dir``'s telemetry, print interval lines, write the artifact.

    With ``once``, aggregates whatever is on disk right now, prints a
    single line, writes the artifact, and returns -- the CI probe mode.
    Otherwise loops every ``interval_s`` until ``duration_s`` elapses
    (or forever when ``None``; the live loop also stops once every
    expected site has gone quiet for a few intervals).  Returns 0 if
    any telemetry was seen and no ``fail`` health verdict surfaced,
    2 on a ``fail`` verdict, 1 if no telemetry ever appeared.
    """
    out_path = Path(out_dir)
    artifact_path = Path(artifact) if artifact else out_path / "monitor.jsonl"
    started = clock()
    reported_health: set[HealthEvent] = set()
    snapshots: list[MonitorSnapshot] = []
    all_health: list[HealthEvent] = []
    seen_any = False
    idle_rounds = 0
    last_fingerprint: Optional[tuple[tuple[int, int], ...]] = None

    while True:
        by_site, health = scan_dir(out_path)
        fresh = [e for e in health if e not in reported_health]
        reported_health.update(fresh)
        all_health.extend(fresh)
        snapshot = aggregate(by_site, fresh)
        if snapshot.latest:
            seen_any = True
            snapshots.append(snapshot)
            emit(snapshot.line(expect_sites))
        fingerprint = tuple(
            (site, max(f.seq for f in frames))
            for site, frames in sorted(by_site.items())
        )
        if once:
            break
        idle_rounds = idle_rounds + 1 if fingerprint == last_fingerprint else 0
        last_fingerprint = fingerprint
        if duration_s is not None and clock() - started >= duration_s:
            break
        if seen_any and idle_rounds >= 3:
            break  # every stream has gone quiet: the run is over
        sleep(interval_s)

    registry = merged_registry(scan_dir(out_path)[0])
    _write_artifact(artifact_path, snapshots, all_health, registry)
    if any(e.verdict == "fail" for e in all_health):
        return 2
    return 0 if seen_any else 1


def _write_artifact(
    path: Path,
    snapshots: Sequence[MonitorSnapshot],
    health: Sequence[HealthEvent],
    registry: MetricsRegistry,
) -> None:
    """The final JSONL artifact: header, intervals, health, merged metrics."""
    header = {
        "format": MONITOR_FORMAT,
        "schema_version": MONITOR_SCHEMA_VERSION,
        "telemetry_schema_version": TELEMETRY_SCHEMA_VERSION,
        "intervals": len(snapshots),
        "health_events": len(health),
    }
    with JsonlWriter(path, header) as writer:
        for snapshot in snapshots:
            writer.write_line(snapshot.to_json())
        for event in health:
            writer.write_line(event.to_json())
        writer.write_line(json.dumps({
            "rec": "metrics",
            "counters": registry.counters(),
            "histograms": {
                name: _histogram_summary(hist)
                for name, hist in registry.histograms().items()
            },
        }))


def _histogram_summary(hist: Histogram) -> dict[str, Any]:
    return {
        "count": hist.count,
        "min": hist.minimum,
        "p50": hist.percentile(50),
        "p95": hist.percentile(95),
        "max": hist.maximum,
        "mean": hist.mean,
    }


__all__ = [
    "MONITOR_FORMAT",
    "MONITOR_SCHEMA_VERSION",
    "MonitorSnapshot",
    "aggregate",
    "merged_registry",
    "read_telemetry",
    "run_monitor",
    "scan_dir",
    "site_registry",
]
