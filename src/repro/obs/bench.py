"""The machine-readable benchmark trajectory and its regression gate.

``python -m repro bench`` runs a declared scenario matrix -- editing
sessions (clock family x topology x N sites x fault plan) plus
per-family clock microbenches -- and writes one versioned
``BENCH_<label>.json`` artifact per invocation.  Each scenario record
carries throughput (ops/sec, wall time), generation-to-execution
latency percentiles in *virtual* time, the per-phase profiler breakdown
from :mod:`repro.obs.profiler`, the hold-back queue high-water mark,
clock storage in integers, and the measured tracing overhead.

Two artifacts diff with :func:`compare_artifacts`, which is the CI
regression gate: past a configurable threshold the comparison exits
non-zero.  The gate's soundness rests on a split:

* **deterministic** metrics -- message counts, phase call counts,
  virtual-time latency percentiles, hold-back high-water, storage ints,
  convergence -- are properties of the seeded simulation and must be
  *identical* between runs of the same code.  Any drift means the
  protocol's behaviour changed, so these are gated by default on every
  machine, including CI.
* **wall-clock** metrics (ops/sec) vary with the host; they are
  recorded in every artifact for trend analysis but only gated when
  ``gate_wall`` is requested (e.g. on a dedicated perf box).

Layering: this module sits in ``repro.obs`` but orchestrates whole
sessions, so -- like :mod:`repro.obs.analysis` -- every upward import
(editor, net, workloads, clocks) happens lazily inside functions; the
module surface itself needs only the stdlib and its obs siblings.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.profiler import PhaseProfiler, activated
from repro.obs.tracer import Histogram, Tracer

BENCH_FORMAT = "repro-bench-v1"
BENCH_SCHEMA_VERSION = 1

#: Default regression thresholds (relative deltas).
DEFAULT_WARN_PCT = 0.10
DEFAULT_FAIL_PCT = 0.25


# -- the scenario matrix -----------------------------------------------------------


@dataclass(frozen=True)
class BenchScenario:
    """One declared benchmark scenario.

    ``kind`` selects the harness: ``"session"`` runs a full seeded
    editing session over ``topology``; ``"clocks"`` microbenches one
    clock family's primitives through
    :class:`repro.clocks.base.ProfiledClock`; ``"wire"`` runs a real
    multi-process TCP cluster (:mod:`repro.cluster`) -- wall-clock
    only, so its record is informational and never gated.  ``faults``
    names a canned fault plan (``none`` / ``lossy`` / ``crash``) --
    sessions only, and star only (the mesh has no reliability layer to
    absorb them).
    """

    id: str
    kind: str = "session"  # "session" | "clocks" | "wire"
    topology: str = "star"  # "star" | "mesh" (session kind only)
    clock_family: str = "compressed"
    n_sites: int = 4
    ops_per_site: int = 8
    seed: int = 0
    faults: str = "none"  # "none" | "lossy" | "crash"

    def __post_init__(self) -> None:
        if self.kind not in ("session", "clocks", "wire"):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if self.topology not in ("star", "mesh"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.faults not in ("none", "lossy", "crash"):
            raise ValueError(f"unknown fault plan {self.faults!r}")
        if self.faults != "none" and (self.kind != "session" or self.topology != "star"):
            raise ValueError("fault plans apply to star sessions only")
        if self.n_sites < 1 or self.ops_per_site < 1:
            raise ValueError("need n_sites >= 1 and ops_per_site >= 1")

    def config_dict(self) -> dict[str, Any]:
        """The scenario's declared parameters, canonical key order."""
        return {
            "id": self.id,
            "kind": self.kind,
            "topology": self.topology,
            "clock_family": self.clock_family,
            "n_sites": self.n_sites,
            "ops_per_site": self.ops_per_site,
            "seed": self.seed,
            "faults": self.faults,
        }


#: The quick matrix: small enough for CI, wide enough to cover every
#: axis (both topologies, a lossy and a crashy star, three structurally
#: different clock families).
QUICK_MATRIX: tuple[BenchScenario, ...] = (
    BenchScenario(id="star-4x8-clean", n_sites=4, ops_per_site=8),
    BenchScenario(id="star-8x6-clean", n_sites=8, ops_per_site=6),
    BenchScenario(id="star-4x8-lossy", n_sites=4, ops_per_site=8, faults="lossy"),
    BenchScenario(id="star-4x8-crash", n_sites=4, ops_per_site=8, faults="crash"),
    BenchScenario(
        id="mesh-4x6-clean", topology="mesh", clock_family="vector", n_sites=4, ops_per_site=6
    ),
    BenchScenario(id="clocks-vector", kind="clocks", clock_family="vector", n_sites=8, ops_per_site=50),
    BenchScenario(id="clocks-sk", kind="clocks", clock_family="sk", n_sites=8, ops_per_site=50),
    BenchScenario(
        id="clocks-compressed", kind="clocks", clock_family="compressed", n_sites=8, ops_per_site=50
    ),
    BenchScenario(id="wire-star-3x4", kind="wire", n_sites=3, ops_per_site=4),
)

#: The full matrix: the quick one plus bigger sessions and the
#: remaining clock families.
FULL_MATRIX: tuple[BenchScenario, ...] = QUICK_MATRIX + (
    BenchScenario(id="star-16x4-clean", n_sites=16, ops_per_site=4),
    BenchScenario(id="star-8x6-lossy", n_sites=8, ops_per_site=6, faults="lossy"),
    BenchScenario(
        id="mesh-8x4-clean", topology="mesh", clock_family="vector", n_sites=8, ops_per_site=4
    ),
    BenchScenario(id="clocks-matrix", kind="clocks", clock_family="matrix", n_sites=8, ops_per_site=50),
    BenchScenario(id="clocks-fz", kind="clocks", clock_family="fz", n_sites=8, ops_per_site=50),
    BenchScenario(id="clocks-lamport", kind="clocks", clock_family="lamport", n_sites=8, ops_per_site=50),
    BenchScenario(
        id="clocks-dimension", kind="clocks", clock_family="dimension", n_sites=8, ops_per_site=50
    ),
)


def matrix(full: bool = False) -> tuple[BenchScenario, ...]:
    return FULL_MATRIX if full else QUICK_MATRIX


# -- session harness ---------------------------------------------------------------


def _fault_plan(scenario: BenchScenario) -> Optional[Any]:
    from repro.net.faults import ChannelFaults, ClientCrash, FaultPlan

    if scenario.faults == "lossy":
        return FaultPlan(
            seed=scenario.seed,
            default=ChannelFaults(drop_p=0.05, dup_p=0.02),
        )
    if scenario.faults == "crash":
        return FaultPlan(
            seed=scenario.seed,
            default=ChannelFaults(drop_p=0.03),
            crashes=(ClientCrash(site=1, at=2.0, restart_at=4.0),),
        )
    return None


def _latency_factory(seed: int) -> Callable[[int, int], Any]:
    # The same jittered-latency draw the ``session``/``trace`` commands
    # use, so bench scenarios exercise the CLI-visible configuration.
    from repro.net.channel import JitterLatency

    def factory(src: int, dst: int) -> Any:
        return JitterLatency(0.08, 0.6, random.Random(seed * 97 + src * 11 + dst))

    return factory


def _build_session(scenario: BenchScenario, tracer: Optional[Tracer]) -> Any:
    from repro.editor import MeshSession, StarSession
    from repro.workloads.random_session import (
        RandomSessionConfig,
        drive_mesh_session,
        drive_star_session,
    )

    config = RandomSessionConfig(
        n_sites=scenario.n_sites,
        ops_per_site=scenario.ops_per_site,
        seed=scenario.seed,
    )
    if scenario.topology == "star":
        session: Any = StarSession(
            scenario.n_sites,
            initial_state=config.initial_document,
            latency_factory=_latency_factory(scenario.seed),
            fault_plan=_fault_plan(scenario),
            tracer=tracer,
        )
        drive_star_session(session, config)
    else:
        session = MeshSession(
            scenario.n_sites,
            initial_document=config.initial_document,
            latency_factory=_latency_factory(scenario.seed),
            tracer=tracer,
        )
        drive_mesh_session(session, config)
    return session


def _holdback_high_water(session: Any) -> int:
    """Peak reorder-buffer occupancy over every endpoint.

    Star endpoints bury the queue in their reliability transport (absent
    entirely on a perfect network); mesh sites expose ``hold_back``
    directly.  The high-water mark is the *max* across endpoints -- the
    worst single buffer, which is what a capacity bound must cover.
    """
    peak = 0
    for endpoint in session.participants():
        queue = getattr(endpoint, "hold_back", None)
        if queue is None:
            queue = getattr(getattr(endpoint, "transport", None), "_holdback", None)
        if queue is not None:
            peak = max(peak, int(queue.max_held))
    return peak


def _merged_latency(tracer: Tracer) -> Histogram:
    from repro.obs.analysis import latency_histograms

    merged = Histogram()
    for hist in latency_histograms(tracer.events).values():
        for value in hist.values:
            merged.observe(value)
    return merged


def _run_session_scenario(scenario: BenchScenario, cprofile_top: int) -> dict[str, Any]:
    ops = scenario.n_sites * scenario.ops_per_site

    # Pass 1: the plain run -- no tracer, no profiler -- is the
    # throughput measurement (and the overhead baseline).
    t0 = time.perf_counter()
    plain = _build_session(scenario, tracer=None)
    plain.run()
    plain_wall = time.perf_counter() - t0

    # Pass 2: the instrumented run yields everything else.  Virtual-time
    # results are identical between the passes by construction (the
    # simulation is seeded and tracing never perturbs it).
    tracer = Tracer()
    profiler = PhaseProfiler(cprofile_top=cprofile_top)
    t0 = time.perf_counter()
    with activated(profiler):
        session = _build_session(scenario, tracer=tracer)
        session.run()
    traced_wall = time.perf_counter() - t0

    # Pass 3: the same run with an armed telemetry sampler (and nothing
    # else), so the artifact tracks what *live gauges* cost separately
    # from what full tracing costs.  A separate pass keeps the
    # deterministic metrics above byte-identical to pass 1/2.
    t0 = time.perf_counter()
    telem_session = _build_session(scenario, tracer=None)
    telem_session.attach_telemetry(interval=1.0, max_samples=64)
    telem_session.run()
    telem_wall = time.perf_counter() - t0

    latency = _merged_latency(tracer)
    overhead_pct = (
        (traced_wall - plain_wall) / plain_wall * 100.0 if plain_wall > 0 else None
    )
    telem_overhead_pct = (
        (telem_wall - plain_wall) / plain_wall * 100.0 if plain_wall > 0 else None
    )
    record = scenario.config_dict()
    record.update(
        {
            "ops": ops,
            "wall_s": plain_wall,
            "ops_per_sec": ops / plain_wall if plain_wall > 0 else None,
            "converged": bool(session.converged()),
            "messages": int(session.wire_stats().messages),
            "storage_ints": sum(
                int(endpoint.clock_storage_ints()) for endpoint in session.endpoints()
            ),
            "holdback_high_water": _holdback_high_water(session),
            "latency": {
                "p50": latency.percentile(50),
                "p95": latency.percentile(95),
                "p99": latency.percentile(99),
            },
            "trace_overhead_pct": overhead_pct,
            "telemetry_overhead_pct": telem_overhead_pct,
            "phase_calls": profiler.phase_calls(),
            "profile": profiler.as_dict(),
        }
    )
    return record


# -- clock microbench harness ------------------------------------------------------


def _run_clocks_scenario(scenario: BenchScenario, cprofile_top: int) -> dict[str, Any]:
    from repro.clocks.base import CLOCK_FAMILIES, ProfiledClock

    family = next(
        (f for f in CLOCK_FAMILIES if f.name == scenario.clock_family), None
    )
    if family is None:
        raise ValueError(f"unknown clock family {scenario.clock_family!r}")
    n = scenario.n_sites
    rounds = scenario.ops_per_site
    clocks = [ProfiledClock(family.factory(pid, n), family.name) for pid in range(n)]
    rng = random.Random(scenario.seed)

    profiler = PhaseProfiler(cprofile_top=cprofile_top)
    snapshots: list[Any] = []
    t0 = time.perf_counter()
    with activated(profiler):
        # Each round: every site ticks, stamps a message for a random
        # peer, and the peer merges it -- the tick/timestamp/merge mix a
        # session imposes, minus the editor above it.
        for _ in range(rounds):
            for pid, clock in enumerate(clocks):
                clock.tick()
                dest = rng.randrange(n - 1)
                if dest >= pid:
                    dest += 1
                wire = clock.timestamp(dest)
                clocks[dest].merge(pid, wire)
                snapshots.append(clock.snapshot())
        # The compare pass: adjacent snapshot pairs through the family's
        # own judge (offline families answer None; the call cost is
        # still the point).
        judge = clocks[0]
        for a, b in zip(snapshots, snapshots[1:]):
            judge.compare(a, b)
    wall = time.perf_counter() - t0

    ops = rounds * n
    record = scenario.config_dict()
    record.update(
        {
            "ops": ops,
            "wall_s": wall,
            "ops_per_sec": ops / wall if wall > 0 else None,
            "converged": True,
            "messages": ops,
            "storage_ints": sum(int(clock.storage_ints()) for clock in clocks),
            "holdback_high_water": 0,
            "latency": {"p50": None, "p95": None, "p99": None},
            "trace_overhead_pct": None,
            "telemetry_overhead_pct": None,
            "phase_calls": profiler.phase_calls(),
            "profile": profiler.as_dict(),
        }
    )
    return record


# -- wire cluster harness ----------------------------------------------------------


def _run_wire_scenario(scenario: BenchScenario) -> dict[str, Any]:
    """One real TCP cluster run (notifier + N client subprocesses).

    Everything here is wall clock -- subprocess spawns, socket round
    trips, OS scheduling -- so the record carries no deterministic
    metrics and :func:`compare_artifacts` never gates it; the ``wire``
    sub-document is the trend-analysis payload.
    """
    from repro.cluster import ClusterConfig, run_cluster

    config = ClusterConfig(
        clients=scenario.n_sites,
        ops_per_client=scenario.ops_per_site,
        seed=scenario.seed,
        timeout_s=60.0,
    )
    report = run_cluster(config)
    ops = config.total_ops
    record = scenario.config_dict()
    record.update(
        {
            "ops": ops,
            "wall_s": report.wall_s,
            "ops_per_sec": ops / report.wall_s if report.wall_s > 0 else None,
            "converged": bool(report.ok),
            "latency": {
                "p50": report.latency_p50_s,
                "p95": report.latency_p95_s,
                "p99": None,
            },
            "wire": {
                "processes": len(report.documents),
                "trace_events": report.trace_events,
                "latency_p50_s": report.latency_p50_s,
                "latency_p95_s": report.latency_p95_s,
                "wall_s": report.wall_s,
                # Skew-corrected wall-clock end-to-end latency from the
                # span pipeline (repro.obs.spans); trend-only like the
                # rest of the wire sub-document.
                "e2e": report.spans.to_dict() if report.spans else None,
            },
            "phase_calls": {},
            "profile": {},
        }
    )
    return record


def run_scenario(scenario: BenchScenario, *, cprofile_top: int = 0) -> dict[str, Any]:
    """Run one scenario; returns its artifact record."""
    if scenario.kind == "clocks":
        return _run_clocks_scenario(scenario, cprofile_top)
    if scenario.kind == "wire":
        return _run_wire_scenario(scenario)
    return _run_session_scenario(scenario, cprofile_top)


def run_matrix(
    scenarios: tuple[BenchScenario, ...],
    *,
    label: str,
    quick: bool,
    cprofile_top: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """Run every scenario and assemble the artifact document."""
    records: list[dict[str, Any]] = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"running {scenario.id} ...")
        records.append(run_scenario(scenario, cprofile_top=cprofile_top))
    return {
        "format": BENCH_FORMAT,
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "git_rev": detect_git_rev(),
        "quick": quick,
        "scenarios": records,
    }


# -- artifacts ---------------------------------------------------------------------


def detect_git_rev() -> str:
    """The short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def validate_artifact(doc: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a readable bench artifact."""
    if doc.get("format") != BENCH_FORMAT:
        raise ValueError(f"unknown bench format {doc.get('format')!r}")
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad schema_version {version!r}")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list):
        raise ValueError("artifact has no scenario list")
    for record in scenarios:
        if not isinstance(record, dict) or "id" not in record:
            raise ValueError(f"malformed scenario record: {record!r}")


def write_artifact(path: str, doc: dict[str, Any]) -> None:
    """Write ``doc`` to ``path``, preserving any existing table blocks.

    ``pytest benchmarks/`` and ``python -m repro bench`` share one
    output file: whichever runs second must not clobber the other's
    contribution, so regenerated ``tables`` already present in the file
    are carried over unless ``doc`` replaces them by title.
    """
    if os.path.exists(path):
        try:
            existing = read_artifact(path)
        except (ValueError, OSError, json.JSONDecodeError):
            existing = None
        if existing is not None:
            tables = dict(existing.get("tables") or {})
            tables.update(doc.get("tables") or {})
            if tables:
                doc = dict(doc)
                doc["tables"] = tables
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def read_artifact(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a bench artifact")
    validate_artifact(doc)
    return doc


def merge_table_blocks(path: str, blocks: list[tuple[str, str]]) -> None:
    """Merge regenerated table blocks into the artifact at ``path``.

    Creates a minimal artifact skeleton when the file does not exist
    (the pytest benchmarks can run before any ``bench`` invocation).
    Blocks replace same-titled predecessors.
    """
    doc: dict[str, Any]
    if os.path.exists(path):
        try:
            doc = read_artifact(path)
        except (ValueError, json.JSONDecodeError):
            doc = {}
    else:
        doc = {}
    if not doc:
        doc = {
            "format": BENCH_FORMAT,
            "schema_version": BENCH_SCHEMA_VERSION,
            "label": "pytest",
            "git_rev": detect_git_rev(),
            "quick": True,
            "scenarios": [],
        }
    tables = dict(doc.get("tables") or {})
    for title, body in blocks:
        tables[title] = body
    doc["tables"] = tables
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


# -- the regression gate -----------------------------------------------------------

#: Scenario metrics that must be identical between runs of the same
#: code: pure functions of (code, seed) via the virtual-time simulation.
DETERMINISTIC_METRICS: tuple[str, ...] = (
    "ops",
    "messages",
    "storage_ints",
    "holdback_high_water",
    "latency.p50",
    "latency.p95",
    "latency.p99",
)

#: Wall-clock metrics: machine-dependent, gated only on request.
WALL_METRICS: tuple[str, ...] = ("ops_per_sec",)


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric of one scenario."""

    scenario: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    delta_pct: Optional[float]  # relative delta; None when undefined
    severity: str  # "ok" | "warn" | "fail" | "info"

    def describe(self) -> str:
        delta = "" if self.delta_pct is None else f" ({self.delta_pct * 100:+.1f}%)"
        return (
            f"[{self.severity:>4}] {self.scenario}: {self.metric} "
            f"{self.baseline!r} -> {self.current!r}{delta}"
        )


@dataclass
class ComparisonReport:
    """The outcome of diffing two bench artifacts."""

    baseline_label: str
    current_label: str
    entries: list[MetricDelta] = field(default_factory=list)
    warn_pct: float = DEFAULT_WARN_PCT
    fail_pct: float = DEFAULT_FAIL_PCT

    @property
    def status(self) -> str:
        severities = {entry.severity for entry in self.entries}
        if "fail" in severities:
            return "fail"
        if "warn" in severities:
            return "warn"
        return "pass"

    @property
    def exit_code(self) -> int:
        return {"pass": 0, "warn": 2, "fail": 1}[self.status]

    def problems(self) -> list[MetricDelta]:
        return [e for e in self.entries if e.severity in ("warn", "fail")]

    def summary(self) -> str:
        lines = [
            f"bench comparison: {self.baseline_label} -> {self.current_label} "
            f"(warn > {self.warn_pct * 100:.0f}%, fail > {self.fail_pct * 100:.0f}%)"
        ]
        problems = self.problems()
        infos = [e for e in self.entries if e.severity == "info"]
        for entry in problems + infos:
            lines.append("  " + entry.describe())
        checked = len(self.entries) - len(infos)
        lines.append(
            f"  {checked} metrics compared, {len(problems)} regressed -> {self.status.upper()}"
        )
        return "\n".join(lines)


def _metric_value(record: dict[str, Any], metric: str) -> Optional[float]:
    node: Any = record
    for part in metric.split("."):
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    if node is None:
        return None
    if isinstance(node, bool):
        return 1.0 if node else 0.0
    if isinstance(node, (int, float)):
        return float(node)
    return None


def _classify(delta: Optional[float], warn_pct: float, fail_pct: float) -> str:
    if delta is None:
        return "fail"  # a metric appeared or vanished: shape change
    if delta > fail_pct:
        return "fail"
    if delta > warn_pct:
        return "warn"
    return "ok"


def _compare_metric(
    scenario: str,
    metric: str,
    base: Optional[float],
    cur: Optional[float],
    warn_pct: float,
    fail_pct: float,
    *,
    drop_only: bool = False,
) -> MetricDelta:
    if base is None and cur is None:
        return MetricDelta(scenario, metric, None, None, None, "ok")
    if base is None or cur is None:
        return MetricDelta(scenario, metric, base, cur, None, "fail")
    if base == cur:
        return MetricDelta(scenario, metric, base, cur, 0.0, "ok")
    if base == 0:
        delta = float("inf") if cur > 0 else float("-inf")
    else:
        delta = (cur - base) / abs(base)
    if drop_only:
        # Throughput: only a drop is a regression; gains are just news.
        magnitude = max(0.0, -delta)
    else:
        magnitude = abs(delta)
    return MetricDelta(
        scenario, metric, base, cur, delta, _classify(magnitude, warn_pct, fail_pct)
    )


def compare_artifacts(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    warn_pct: float = DEFAULT_WARN_PCT,
    fail_pct: float = DEFAULT_FAIL_PCT,
    gate_wall: bool = False,
) -> ComparisonReport:
    """Diff two artifacts; the report's ``exit_code`` is the gate.

    Every scenario present in ``baseline`` must appear in ``current``
    (a vanished scenario is a hard failure -- the matrix shrank);
    scenarios only in ``current`` are reported as ``info``.  Within a
    scenario, the deterministic metrics, ``converged``, and every
    baseline phase call counter are gated; wall-clock throughput only
    under ``gate_wall``.
    """
    validate_artifact(baseline)
    validate_artifact(current)
    report = ComparisonReport(
        baseline_label=str(baseline.get("label", "?")),
        current_label=str(current.get("label", "?")),
        warn_pct=warn_pct,
        fail_pct=fail_pct,
    )
    base_by_id = {r["id"]: r for r in baseline["scenarios"]}
    cur_by_id = {r["id"]: r for r in current["scenarios"]}

    for scenario_id, base_record in base_by_id.items():
        cur_record = cur_by_id.get(scenario_id)
        if cur_record is None:
            report.entries.append(
                MetricDelta(scenario_id, "scenario", 1.0, None, None, "fail")
            )
            continue
        if base_record.get("kind") == "wire" or cur_record.get("kind") == "wire":
            # Wire-cluster scenarios are wall-clock end to end (process
            # spawns, sockets): nothing about them is deterministic, so
            # they are recorded for trends but never gated.
            report.entries.append(
                MetricDelta(scenario_id, "wire scenario (not gated)",
                            None, None, None, "info")
            )
            continue
        # Convergence is pass/fail, not a percentage.
        base_conv = _metric_value(base_record, "converged")
        cur_conv = _metric_value(cur_record, "converged")
        report.entries.append(
            MetricDelta(
                scenario_id,
                "converged",
                base_conv,
                cur_conv,
                None if base_conv != cur_conv else 0.0,
                "ok" if base_conv == cur_conv else "fail",
            )
        )
        for metric in DETERMINISTIC_METRICS:
            report.entries.append(
                _compare_metric(
                    scenario_id,
                    metric,
                    _metric_value(base_record, metric),
                    _metric_value(cur_record, metric),
                    warn_pct,
                    fail_pct,
                )
            )
        # Phase names themselves contain dots ("ot.it"), so they are
        # looked up directly rather than through the dotted-path helper.
        base_calls = base_record.get("phase_calls") or {}
        cur_calls = cur_record.get("phase_calls") or {}
        for phase in sorted(base_calls):
            base_count = base_calls.get(phase)
            cur_count = cur_calls.get(phase)
            report.entries.append(
                _compare_metric(
                    scenario_id,
                    f"phase_calls.{phase}",
                    float(base_count) if base_count is not None else None,
                    float(cur_count) if cur_count is not None else None,
                    warn_pct,
                    fail_pct,
                )
            )
        if gate_wall:
            for metric in WALL_METRICS:
                report.entries.append(
                    _compare_metric(
                        scenario_id,
                        metric,
                        _metric_value(base_record, metric),
                        _metric_value(cur_record, metric),
                        warn_pct,
                        fail_pct,
                        drop_only=True,
                    )
                )

    for scenario_id in cur_by_id:
        if scenario_id not in base_by_id:
            report.entries.append(
                MetricDelta(scenario_id, "scenario", None, 1.0, None, "info")
            )
    return report
