"""Live runtime telemetry: gauges, samplers, watchdogs, flight recorder.

The tracer (:mod:`repro.obs.tracer`) records what *happened* to each
operation; this module records what the system *looks like* while it
runs.  A :class:`TelemetrySampler`, driven by any
:class:`~repro.net.scheduler.Scheduler`, periodically snapshots an
endpoint's runtime gauges -- operations generated/executed, hold-back
depth and high-water, the reliability layer's in-flight window and
retransmit count, resident clock-storage integers, scheduler queue
depth, the current notifier epoch, and a short document digest -- into a
versioned :class:`TelemetryFrame`.

Frames are consumed three ways:

* **locally**, appended to a crash-safe per-process JSONL stream that
  ``python -m repro monitor`` (:mod:`repro.obs.monitor`) tails and
  aggregates across processes;
* **over the wire**, as TELEMETRY frames (:mod:`repro.net.wire`) that
  cluster clients gossip to the notifier, giving one process a live
  cross-site view (which is what makes the divergence sentinel
  possible before any post-hoc oracle runs);
* **by watchdogs**, stateful verdict machines that turn the gauge
  stream into structured :class:`HealthEvent` records: retransmit-storm
  detection, causal-stall detection (held-back operations with no
  execution progress), cross-site digest divergence, and peer silence.

The module is stdlib-only, like the tracer it sits beside: gauge
collection duck-types the endpoint/transport surfaces (``getattr`` with
defaults), so it never imports upward and any layer can hold a sampler
without cycles.  The byte-exact wire codec for frames lives in
:mod:`repro.net.wire` next to the other frame codecs.

The :class:`FlightRecorder` completes the post-mortem story: it wraps a
tracer (typically one in ``mode="ring"``) and dumps the bounded tail of
recent events to a trace-format JSONL file on crash, peer-death, or the
driver's kill-switch -- so a run that never finished still leaves
evidence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Optional, Protocol, Sequence, Union

from repro.obs.tracer import JsonlWriter, TraceEvent, Tracer, trace_header

TELEMETRY_FORMAT = "repro-obs-telemetry-v1"

#: Bumped whenever the frame schema changes shape.  The wire codec
#: carries it in every frame, so readers can reject frames from a
#: future schema instead of misparsing them.  v2 added the failover
#: gauges (elected / promoted / resynced / degraded_queued); v3 added
#: the optional end-to-end latency gauge (``e2e_p95_ms``).
TELEMETRY_SCHEMA_VERSION = 3


def document_digest(document: Any) -> str:
    """A short stable digest of replica state, cheap enough to gossip.

    12 hex chars of SHA-256 over the ``repr``: collisions are
    astronomically unlikely at the scale of a divergence check, and the
    digest is comparable across processes because every replica holds
    the same concrete type (text documents, for everything that crosses
    the cluster wire).
    """
    return hashlib.sha256(repr(document).encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class TelemetryFrame:
    """One versioned snapshot of a process's runtime gauges.

    ``seq`` is the per-process sample index (monotone within one
    emitter), so consumers can keep "the latest frame per site" by max
    ``seq`` even when the same frame arrives twice (once from the local
    stream, once gossiped over the wire).
    """

    site: int
    role: str  # "notifier" | "client" | "session"
    seq: int
    time: float
    epoch: int = 0
    ops_generated: int = 0
    ops_executed: int = 0
    holdback_depth: int = 0
    holdback_high_water: int = 0
    inflight: int = 0  # reliability send-window: unacked packets
    retransmits: int = 0
    storage_ints: int = 0  # resident clock-state integers (CLAIM-MEM)
    queue_depth: int = 0  # scheduler pending events
    elected: int = 0  # elections this endpoint has opened or joined
    promoted: int = 0  # in-process promotions to notifier (successor only)
    resynced: int = 0  # failover handoffs completed (snapshot installed)
    degraded_queued: int = 0  # local edits queued while leaderless
    digest: str = ""  # document_digest() of the replica
    #: p95 over the endpoint's rolling window of *uncorrected*
    #: end-to-end latencies (milliseconds; origin wall-clock stamp to
    #: local execution).  ``None`` when span instrumentation is
    #: disabled or nothing remote has executed yet -- the common case
    #: for simulator sessions, hence last and optional.
    e2e_p95_ms: Optional[float] = None

    def to_json(self) -> str:
        """One compact JSON object, fields in declaration order.

        Leads with ``rec: "frame"`` so frames and health events share
        one JSONL stream and readers can dispatch per line.
        """
        data: dict[str, Any] = {"rec": "frame"}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is None:
                continue  # optional gauges absent: keep old shape
            data[spec.name] = value
        return json.dumps(data)

    @classmethod
    def from_json(cls, line: str) -> "TelemetryFrame":
        data = json.loads(line)
        if data.get("rec", "frame") != "frame":
            raise ValueError(f"not a telemetry frame record: {line!r}")
        kwargs = {
            spec.name: data[spec.name] for spec in fields(cls) if spec.name in data
        }
        return cls(**kwargs)


@dataclass(frozen=True)
class HealthEvent:
    """A watchdog verdict about one site, derived from the gauge stream.

    ``site`` is the site the verdict is *about*; ``peer`` (when set) is
    the other party -- a client flagging its dead notifier emits
    ``site=<client>, peer=0, kind="peer_dead"``.  ``verdict`` grades
    severity: ``"warn"`` for pressure (storms, stalls), ``"fail"`` for
    broken invariants (divergence, death).
    """

    time: float
    site: int
    kind: str  # "retransmit_storm" | "causal_stall" | "divergence" | ...
    verdict: str  # "warn" | "fail"
    peer: Optional[int] = None
    detail: str = ""

    def to_json(self) -> str:
        data: dict[str, Any] = {
            "rec": "health",
            "time": self.time,
            "site": self.site,
            "kind": self.kind,
            "verdict": self.verdict,
        }
        if self.peer is not None:
            data["peer"] = self.peer
        if self.detail:
            data["detail"] = self.detail
        return json.dumps(data)

    @classmethod
    def from_json(cls, line: str) -> "HealthEvent":
        data = json.loads(line)
        if data.get("rec") != "health":
            raise ValueError(f"not a health record: {line!r}")
        return cls(
            time=float(data["time"]),
            site=int(data["site"]),
            kind=str(data["kind"]),
            verdict=str(data["verdict"]),
            peer=data.get("peer"),
            detail=data.get("detail", ""),
        )


# -- gauge collection ----------------------------------------------------------


def snapshot_endpoint(
    endpoint: Any,
    *,
    sched: Any,
    seq: int,
    role: Optional[str] = None,
    time: Optional[float] = None,
) -> TelemetryFrame:
    """Snapshot one editor endpoint's gauges into a frame.

    Duck-typed against the endpoint/transport surfaces so one collector
    serves star clients, the star notifier, and mesh sites alike; a
    gauge the endpoint cannot answer reads as zero rather than failing
    the sample (telemetry must never take the protocol down with it).
    Hold-back depth sums the transport's reorder buffer and any
    editor-level causal buffer (the mesh's), because both are "arrivals
    waiting for causality".
    """
    transport = getattr(endpoint, "transport", None)
    stats = getattr(transport, "stats", None)
    depth = _call_int(transport, "holdback_depth")
    high = _call_int(transport, "holdback_high_water")
    editor_buffer = getattr(endpoint, "hold_back", None)
    if editor_buffer is not None:
        depth += len(editor_buffer)
        high += int(getattr(editor_buffer, "max_held", 0))
    site = int(getattr(endpoint, "pid", 0))
    if role is None:
        role = "notifier" if site == 0 else "client"
    e2e_p95_ms: Optional[float] = None
    window = getattr(endpoint, "e2e_window", None)
    if window:
        ordered = sorted(float(v) for v in window)
        e2e_p95_ms = ordered[min(len(ordered) - 1,
                                 int(len(ordered) * 0.95))] * 1e3
    return TelemetryFrame(
        site=site,
        role=role,
        seq=seq,
        time=float(sched.now) if time is None else time,
        epoch=int(getattr(endpoint, "notifier_epoch", 0)),
        ops_generated=_call_int(endpoint, "local_ops_generated"),
        ops_executed=len(getattr(endpoint, "executed_op_ids", ())),
        holdback_depth=depth,
        holdback_high_water=high,
        inflight=_call_int(transport, "inflight"),
        retransmits=int(getattr(stats, "retransmits", 0)),
        storage_ints=_call_int(endpoint, "clock_storage_ints"),
        queue_depth=int(getattr(sched, "pending_events", 0)),
        elected=int(getattr(stats, "elections", 0)),
        promoted=int(getattr(stats, "promotions", 0)),
        resynced=int(getattr(stats, "handoffs", 0)),
        degraded_queued=int(getattr(stats, "degraded_queued", 0)),
        digest=document_digest(getattr(endpoint, "document", "")),
        e2e_p95_ms=e2e_p95_ms,
    )


def _call_int(obj: Any, method: str) -> int:
    fn = getattr(obj, method, None)
    if fn is None:
        return 0
    return int(fn())


# -- watchdogs -----------------------------------------------------------------


class Watchdog(Protocol):
    """A stateful verdict machine over the frame stream.

    ``observe`` sees every frame (local and gossiped); ``check`` is
    called with the current time after each local sample, for verdicts
    about *absence* of frames (silence) that no single frame can carry.
    """

    def observe(self, frame: TelemetryFrame) -> list[HealthEvent]: ...

    def check(self, now: float) -> list[HealthEvent]: ...


class RetransmitStormWatchdog:
    """Fires when retransmits *burst*: a large delta between samples.

    A steady trickle of retransmits is the reliability protocol doing
    its job over a lossy link; ``threshold`` or more new retransmits
    within one sampling interval means the link is in a storm (a dead
    or wedged peer with a full send window).  Re-arms per site once the
    delta falls back under the threshold, so a run reports each storm
    once rather than every interval it persists.
    """

    def __init__(self, threshold: int = 10) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self._last: dict[int, int] = {}
        self._storming: set[int] = set()

    def observe(self, frame: TelemetryFrame) -> list[HealthEvent]:
        last = self._last.get(frame.site)
        self._last[frame.site] = frame.retransmits
        if last is None:
            return []
        delta = frame.retransmits - last
        if delta < self.threshold:
            self._storming.discard(frame.site)
            return []
        if frame.site in self._storming:
            return []
        self._storming.add(frame.site)
        return [HealthEvent(
            time=frame.time, site=frame.site, kind="retransmit_storm",
            verdict="warn",
            detail=f"{delta} retransmits in one interval (>= {self.threshold})",
        )]

    def check(self, now: float) -> list[HealthEvent]:
        return []


class CausalStallWatchdog:
    """Fires when a site holds operations back but executes nothing.

    A non-empty hold-back buffer is normal for an interval or two (the
    gap is in flight); a buffer that stays non-empty for longer than
    ``stall_after`` with zero execution progress means the gap-filling
    operation is not coming -- a lost op that retransmission is not
    recovering, or a causally stranded stream.  Re-arms on progress.
    """

    def __init__(self, stall_after: float = 2.0) -> None:
        if stall_after <= 0:
            raise ValueError(f"stall_after must be positive, got {stall_after}")
        self.stall_after = stall_after
        self._progress: dict[int, tuple[int, float]] = {}  # site -> (executed, at)
        self._stalled: set[int] = set()

    def observe(self, frame: TelemetryFrame) -> list[HealthEvent]:
        executed, since = self._progress.get(frame.site, (-1, frame.time))
        if frame.ops_executed > executed:
            self._progress[frame.site] = (frame.ops_executed, frame.time)
            self._stalled.discard(frame.site)
            return []
        if frame.holdback_depth <= 0:
            return []
        waited = frame.time - since
        if waited < self.stall_after or frame.site in self._stalled:
            return []
        self._stalled.add(frame.site)
        return [HealthEvent(
            time=frame.time, site=frame.site, kind="causal_stall",
            verdict="warn",
            detail=(f"{frame.holdback_depth} op(s) held back for "
                    f"{waited:.2f}s with no execution progress"),
        )]

    def check(self, now: float) -> list[HealthEvent]:
        return []


class DivergenceSentinel:
    """Flags replica divergence from gossiped digests, live.

    Two replicas may legitimately differ mid-run (operations execute in
    different orders before transformation closes the gap), so digests
    are only comparable once a replica reports having executed every
    expected operation.  The sentinel keeps the digest of each site's
    first *complete* frame and fires when two complete sites disagree --
    before the run ends and long before the post-hoc oracle replays the
    merged trace.
    """

    def __init__(self, expected_ops: int) -> None:
        if expected_ops < 1:
            raise ValueError(f"expected_ops must be positive, got {expected_ops}")
        self.expected_ops = expected_ops
        self._complete: dict[int, str] = {}  # site -> digest at completion
        self._flagged: set[tuple[int, int]] = set()

    def observe(self, frame: TelemetryFrame) -> list[HealthEvent]:
        if frame.ops_executed < self.expected_ops or not frame.digest:
            return []
        self._complete[frame.site] = frame.digest
        events: list[HealthEvent] = []
        for other, digest in sorted(self._complete.items()):
            if other == frame.site:
                continue
            pair = (min(other, frame.site), max(other, frame.site))
            if digest == frame.digest or pair in self._flagged:
                continue
            self._flagged.add(pair)
            events.append(HealthEvent(
                time=frame.time, site=frame.site, kind="divergence",
                verdict="fail", peer=other,
                detail=(f"digest {frame.digest} != {digest} at site {other} "
                        f"after {self.expected_ops} ops"),
            ))
        return events

    def check(self, now: float) -> list[HealthEvent]:
        return []


class SilenceWatchdog:
    """Flags sites whose frames stopped arriving: the dead-peer signal.

    ``observe`` records each site's latest frame time; ``check(now)``
    fires for any known site not heard from within ``max_silence``.
    Distinct from the reliability layer's probe-based death detection:
    this works on the gossip stream alone, so the notifier (or the
    monitor) can flag a silent peer even over the raw transport, where
    no protocol-level liveness probe exists.  Fires once per site per
    silence; a site that resumes gossiping re-arms.

    ``clock`` (when given) stamps *arrival* times instead of trusting
    ``frame.time``: gossiped frames carry the emitter's own scheduler
    epoch, so comparing them against the local ``now`` would fold
    cross-process clock-domain skew into the silence verdict.
    """

    def __init__(self, max_silence: float,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if max_silence <= 0:
            raise ValueError(f"max_silence must be positive, got {max_silence}")
        self.max_silence = max_silence
        self.clock = clock
        self._last_heard: dict[int, float] = {}
        self._silent: set[int] = set()

    def observe(self, frame: TelemetryFrame) -> list[HealthEvent]:
        heard = frame.time if self.clock is None else float(self.clock())
        self._last_heard[frame.site] = heard
        self._silent.discard(frame.site)
        return []

    def check(self, now: float) -> list[HealthEvent]:
        events: list[HealthEvent] = []
        for site, heard in sorted(self._last_heard.items()):
            silent_for = now - heard
            if silent_for < self.max_silence or site in self._silent:
                continue
            self._silent.add(site)
            events.append(HealthEvent(
                time=now, site=site, kind="peer_silent", verdict="fail",
                detail=f"no telemetry for {silent_for:.2f}s "
                       f"(threshold {self.max_silence:.2f}s)",
            ))
        return events


def default_watchdogs(
    *,
    expected_ops: int,
    stall_after: float = 2.0,
    storm_threshold: int = 10,
    max_silence: Optional[float] = None,
) -> list[Watchdog]:
    """The standard watchdog set a cluster process arms."""
    watchdogs: list[Watchdog] = [
        RetransmitStormWatchdog(threshold=storm_threshold),
        CausalStallWatchdog(stall_after=stall_after),
        DivergenceSentinel(expected_ops=expected_ops),
    ]
    if max_silence is not None:
        watchdogs.append(SilenceWatchdog(max_silence=max_silence))
    return watchdogs


# -- the sampler ---------------------------------------------------------------


Probe = Callable[[int], Sequence[TelemetryFrame]]


class TelemetrySampler:
    """Periodic gauge snapshots on any :class:`Scheduler`.

    ``probe(seq)`` returns the frames of one sample (one frame per
    endpoint this process hosts -- a cluster process has one, an
    in-process session has all of them).  Each frame flows through the
    watchdogs, then ``on_frame``; verdicts flow through ``on_health``.
    Both callbacks also see *fed* frames (:meth:`feed`), so a notifier
    pushes gossiped client frames through the same watchdog state that
    judges its own.

    ``start`` arms a repeating timer on the scheduler.  Under the
    wall-clock scheduler it repeats until :meth:`stop`; under the
    deterministic simulator pass ``max_samples`` or ``until`` so the
    run still quiesces (a perpetual timer never would), and the seeded
    event stream stays identical -- sampling only *reads* state.
    """

    def __init__(
        self,
        sched: Any,
        probe: Probe,
        *,
        interval: float,
        on_frame: Optional[Callable[[TelemetryFrame], None]] = None,
        watchdogs: Sequence[Watchdog] = (),
        on_health: Optional[Callable[[HealthEvent], None]] = None,
        keep: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sched = sched
        self.interval = interval
        self.watchdogs = list(watchdogs)
        self.frames: list[TelemetryFrame] = []
        self.health: list[HealthEvent] = []
        self._probe = probe
        self._on_frame = on_frame
        self._on_health = on_health
        self._keep = keep
        self._seq = 0
        self._timer: Any = None
        self._samples_left: Optional[int] = None
        self._until: Optional[float] = None

    @property
    def samples_taken(self) -> int:
        return self._seq

    @property
    def running(self) -> bool:
        return self._timer is not None

    def sample(self) -> list[TelemetryFrame]:
        """Take one snapshot now; returns its frames."""
        frames = list(self._probe(self._seq))
        self._seq += 1
        for frame in frames:
            self._ingest(frame)
        now = float(self.sched.now)
        for watchdog in self.watchdogs:
            self._emit_health(watchdog.check(now))
        return frames

    def feed(self, frame: TelemetryFrame) -> None:
        """Ingest a frame sampled elsewhere (gossiped over the wire)."""
        self._ingest(frame)

    def _ingest(self, frame: TelemetryFrame) -> None:
        if self._keep:
            self.frames.append(frame)
        for watchdog in self.watchdogs:
            self._emit_health(watchdog.observe(frame))
        if self._on_frame is not None:
            self._on_frame(frame)

    def _emit_health(self, events: Sequence[HealthEvent]) -> None:
        for event in events:
            self.health.append(event)
            if self._on_health is not None:
                self._on_health(event)

    def start(self, *, max_samples: Optional[int] = None,
              until: Optional[float] = None) -> None:
        """Arm the repeating sample timer (idempotent while running)."""
        if self._timer is not None:
            return
        self._samples_left = max_samples
        self._until = until
        self._arm()

    def stop(self) -> None:
        """Cancel the timer; :meth:`sample` still works on demand."""
        if self._timer is not None:
            self.sched.cancel(self._timer)
            self._timer = None

    def _arm(self) -> None:
        if self._samples_left is not None and self._samples_left <= 0:
            self._timer = None
            return
        next_time = float(self.sched.now) + self.interval
        if self._until is not None and next_time > self._until:
            self._timer = None
            return
        self._timer = self.sched.schedule_after(self.interval, self._tick)

    def _tick(self) -> None:
        self._timer = None
        if self._samples_left is not None:
            self._samples_left -= 1
        self.sample()
        self._arm()


# -- the flight recorder -------------------------------------------------------


class FlightRecorder:
    """Dump the tail of a tracer's events for post-mortems.

    Wraps any tracer -- a ``mode="ring"`` tracer for processes that
    cannot afford a full trace, or a full tracer whose tail is taken at
    dump time -- and writes the most recent ``capacity`` events as a
    standard trace-format JSONL file (readable by
    :func:`repro.obs.tracer.read_jsonl`) with the dump reason in the
    header.  ``dump`` is once-only per recorder: the *first* trigger
    (crash, peer-death, kill-switch) is the interesting state, and
    later triggers on the way down must not overwrite it.
    """

    def __init__(self, tracer: Tracer, *, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.tracer = tracer
        self.capacity = capacity
        self.dumped: Optional[str] = None  # the reason of the first dump

    def tail(self) -> list[TraceEvent]:
        """The most recent events, bounded by ``capacity``."""
        events = list(self.tracer.events)
        return events[-self.capacity:]

    def dump(self, path: Union[str, Path], *, reason: str, site: int,
             role: str) -> bool:
        """Write the tail to ``path``; False if already dumped."""
        if self.dumped is not None:
            return False
        self.dumped = reason
        events = self.tail()
        header = trace_header({
            "site": site,
            "role": role,
            "reason": reason,
            "flight_recorder": True,
            "emitted": self.tracer.emitted,
            "capacity": self.capacity,
        })
        with JsonlWriter(path, header) as writer:
            for event in events:
                writer.write_event(event)
        return True


__all__ = [
    "TELEMETRY_FORMAT",
    "TELEMETRY_SCHEMA_VERSION",
    "CausalStallWatchdog",
    "DivergenceSentinel",
    "FlightRecorder",
    "HealthEvent",
    "RetransmitStormWatchdog",
    "SilenceWatchdog",
    "TelemetryFrame",
    "TelemetrySampler",
    "Watchdog",
    "default_watchdogs",
    "document_digest",
    "snapshot_endpoint",
]
