"""Cross-process causal spans: clock-skew estimation and end-to-end latency.

Cluster processes with an armed ``span_clock`` stamp every generated
operation with the origin site's wall-clock time (``origin_wall``,
carried on the wire in the versioned op-message trailer) and emit
``span`` trace events at each stage the operation passes through:
``generate`` at the origin, ``ingest`` and ``broadcast`` at the centre,
``hold``/``release`` in the transport, and ``execute`` wherever the
operation lands.  Because the origin stamp travels *with* the op, every
receive-side span records a one-way delay sample -- receiver clock minus
sender clock -- and those samples are exactly what an NTP-style offset
estimator needs.

Skew model
----------
Each site ``s`` has an unknown clock offset ``theta_s``.  A one-way
sample from ``a`` to ``b`` measures ``d + (theta_b - theta_a)`` for some
true (non-negative) delay ``d``.  Taking the minimum over many samples
in each direction of a link::

    m_ab = d_ab_min + delta        m_ba = d_ba_min - delta

where ``delta = theta_b - theta_a``.  The classic estimator is

    delta_hat = (m_ab - m_ba) / 2

whose error is ``|delta_hat - delta| = |d_ab_min - d_ba_min| / 2``,
bounded by the observable quantity

    error_bound = (m_ab + m_ba) / 2   (= RTT_min / 2)

i.e. the estimate is exact for symmetric minimum delays and degrades by
at most half the asymmetry.  Offsets compose along paths (the star
routes everything through the centre, so client pairs compose through
it): ``delta_AB = delta_AC + delta_CB``, with error bounds adding.

A site pair with samples in only one direction (or none) is
**uncorrectable**: the estimator refuses to guess, the pair is flagged
in the report, and its latencies are published raw-only rather than
silently absorbed into the corrected percentiles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.tracer import Histogram, TraceEvent, TraceEventKind

#: The span stages in pipeline order (``via`` values of span events).
SPAN_STAGES = ("generate", "ingest", "broadcast", "hold", "release", "execute")


class SkewEstimator:
    """Pairwise clock-offset estimation from one-way delay samples.

    Feed directed samples with :meth:`add_sample`; query a single link
    with :meth:`edge_offset` / :meth:`edge_error`, or any site pair --
    composed through intermediate links where needed -- with
    :meth:`pair_offset`.  All times are seconds.
    """

    def __init__(self) -> None:
        # Minimum observed one-way sample and sample count per directed edge.
        self._minimum: dict[tuple[int, int], float] = {}
        self._count: dict[tuple[int, int], int] = {}

    def add_sample(self, src: int, dst: int, delay_s: float) -> None:
        """Record one ``src -> dst`` sample (receiver minus sender clock)."""
        if src == dst:
            return
        key = (src, dst)
        best = self._minimum.get(key)
        if best is None or delay_s < best:
            self._minimum[key] = delay_s
        self._count[key] = self._count.get(key, 0) + 1

    def sample_count(self, src: int, dst: int) -> int:
        return self._count.get((src, dst), 0)

    def sites(self) -> list[int]:
        """Every site that appears in at least one sample, sorted."""
        seen = {s for pair in self._minimum for s in pair}
        return sorted(seen)

    def edge_offset(self, a: int, b: int) -> Optional[float]:
        """``theta_b - theta_a`` from this link alone; ``None`` if the
        link lacks samples in either direction."""
        if a == b:
            return 0.0
        m_ab = self._minimum.get((a, b))
        m_ba = self._minimum.get((b, a))
        if m_ab is None or m_ba is None:
            return None
        return (m_ab - m_ba) / 2.0

    def edge_error(self, a: int, b: int) -> Optional[float]:
        """The documented bound ``RTT_min / 2`` for this link."""
        if a == b:
            return 0.0
        m_ab = self._minimum.get((a, b))
        m_ba = self._minimum.get((b, a))
        if m_ab is None or m_ba is None:
            return None
        return (m_ab + m_ba) / 2.0

    def _bidirectional_neighbours(self, site: int) -> list[int]:
        return [
            other
            for other in self.sites()
            if other != site
            and (site, other) in self._minimum
            and (other, site) in self._minimum
        ]

    def pair_offset(self, a: int, b: int) -> Optional[tuple[float, float]]:
        """``(theta_b - theta_a, error_bound)``, composing links if needed.

        Breadth-first over links with samples in *both* directions, so
        the composition path is the fewest-hops one; per-link error
        bounds add along the path.  Returns ``None`` when no such path
        exists -- the pair is uncorrectable.
        """
        if a == b:
            return (0.0, 0.0)
        # BFS from a; accumulated (offset theta_x - theta_a, error).
        frontier: deque[int] = deque([a])
        reached: dict[int, tuple[float, float]] = {a: (0.0, 0.0)}
        while frontier:
            here = frontier.popleft()
            if here == b:
                break
            base_offset, base_error = reached[here]
            for nxt in self._bidirectional_neighbours(here):
                if nxt in reached:
                    continue
                step_offset = self.edge_offset(here, nxt)
                step_error = self.edge_error(here, nxt)
                assert step_offset is not None and step_error is not None
                reached[nxt] = (base_offset + step_offset,
                                base_error + step_error)
                frontier.append(nxt)
        return reached.get(b)


@dataclass
class PairLatency:
    """End-to-end latency of one (origin site, executing site) pair."""

    origin: int
    executor: int
    #: Uncorrected latencies: executor clock minus origin stamp, seconds.
    raw: Histogram = field(default_factory=Histogram)
    #: Skew-corrected latencies, or ``None`` for an uncorrectable pair.
    corrected: Optional[Histogram] = None
    #: The applied offset ``theta_executor - theta_origin`` (seconds).
    offset_s: Optional[float] = None
    #: The composed ``RTT_min / 2`` error bound of that offset.
    error_bound_s: Optional[float] = None

    @property
    def correctable(self) -> bool:
        return self.corrected is not None

    def row(self) -> str:
        """One human-readable summary line (milliseconds)."""
        label = f"{self.origin}->{self.executor}"
        hist = self.corrected if self.corrected is not None else self.raw
        p50 = hist.percentile(50)
        p95 = hist.percentile(95)
        p99 = hist.percentile(99)
        assert p50 is not None and p95 is not None and p99 is not None
        body = (
            f"p50 {p50 * 1e3:.1f} ms, p95 {p95 * 1e3:.1f} ms, "
            f"p99 {p99 * 1e3:.1f} ms (n={hist.count}"
        )
        if self.corrected is not None:
            assert self.offset_s is not None and self.error_bound_s is not None
            body += (
                f", skew {self.offset_s * 1e3:+.2f} ms "
                f"+/- {self.error_bound_s * 1e3:.2f} ms)"
            )
        else:
            body += ", UNCORRECTABLE skew: raw)"
        return f"{label}: {body}"


@dataclass
class SpanReport:
    """Everything the span pipeline derived from one merged trace."""

    span_events: int = 0
    stage_counts: dict[str, int] = field(default_factory=dict)
    pairs: dict[tuple[int, int], PairLatency] = field(default_factory=dict)

    @property
    def uncorrectable_pairs(self) -> list[tuple[int, int]]:
        return sorted(k for k, p in self.pairs.items() if not p.correctable)

    def all_corrected(self) -> Histogram:
        """Union histogram over every correctable pair's latencies."""
        out = Histogram()
        for pair in self.pairs.values():
            if pair.corrected is not None:
                out.values.extend(pair.corrected.values)
        return out

    def summary_lines(self) -> list[str]:
        if not self.span_events:
            return []
        stages = " ".join(
            f"{stage}={self.stage_counts.get(stage, 0)}" for stage in SPAN_STAGES
        )
        lines = [f"e2e spans: {self.span_events} events ({stages})"]
        lines.extend(
            f"  {self.pairs[key].row()}" for key in sorted(self.pairs)
        )
        if self.uncorrectable_pairs:
            flagged = ", ".join(f"{a}->{b}" for a, b in self.uncorrectable_pairs)
            lines.append(f"  uncorrectable skew (raw latencies only): {flagged}")
        return lines

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form for the bench artifact and cluster report."""

        def _ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else value * 1e3

        pairs = []
        for (origin, executor) in sorted(self.pairs):
            pair = self.pairs[(origin, executor)]
            hist = pair.corrected if pair.corrected is not None else pair.raw
            pairs.append(
                {
                    "origin": origin,
                    "executor": executor,
                    "n": hist.count,
                    "corrected": pair.correctable,
                    "offset_ms": _ms(pair.offset_s),
                    "error_bound_ms": _ms(pair.error_bound_s),
                    "p50_ms": _ms(hist.percentile(50)),
                    "p95_ms": _ms(hist.percentile(95)),
                    "p99_ms": _ms(hist.percentile(99)),
                }
            )
        merged = self.all_corrected()
        return {
            "span_events": self.span_events,
            "stage_counts": dict(sorted(self.stage_counts.items())),
            "pairs": pairs,
            "e2e_p50_ms": _ms(merged.percentile(50)),
            "e2e_p95_ms": _ms(merged.percentile(95)),
            "e2e_p99_ms": _ms(merged.percentile(99)),
            "uncorrectable_pairs": [list(p) for p in self.uncorrectable_pairs],
        }


def assemble_spans(events: Sequence[TraceEvent]) -> SpanReport:
    """Assemble per-pair end-to-end latency from span events.

    Pipeline: a first pass collects skew samples -- ``ingest`` spans are
    forward samples from the origin to the centre (the origin stamp
    rides on the event), ``execute`` spans whose op has a recorded
    ``broadcast`` span are backward samples from the centre to the
    executor -- plus the raw end-to-end observations (``execute`` time
    minus origin stamp).  A second pass corrects each pair's raw
    latencies by the composed pairwise offset, leaving uncorrectable
    pairs flagged and raw.

    Works on a single process's trace or on the merged cluster stream;
    span events never enter the causal DAG, so running this beside the
    happens-before cross-checks changes none of their verdicts.
    """
    report = SpanReport()
    skew = SkewEstimator()
    broadcast_at: dict[str, tuple[int, float]] = {}
    raw_samples: list[tuple[int, int, float]] = []
    for event in events:
        if event.kind is not TraceEventKind.SPAN:
            continue
        report.span_events += 1
        stage = event.via or "?"
        report.stage_counts[stage] = report.stage_counts.get(stage, 0) + 1
        origin_time = event.origin_time
        if origin_time is None:
            continue
        if stage == "ingest" and event.peer is not None:
            skew.add_sample(event.peer, event.site, event.time - origin_time)
        elif stage == "broadcast" and event.op_id is not None:
            broadcast_at[event.op_id] = (event.site, event.time)
        elif stage == "execute" and event.peer is not None:
            if event.op_id is not None and event.op_id in broadcast_at:
                centre, sent_at = broadcast_at[event.op_id]
                skew.add_sample(centre, event.site, event.time - sent_at)
            if event.peer != event.site:
                raw_samples.append(
                    (event.peer, event.site, event.time - origin_time)
                )
    for origin, executor, raw in raw_samples:
        key = (origin, executor)
        pair = report.pairs.get(key)
        if pair is None:
            pair = PairLatency(origin=origin, executor=executor)
            report.pairs[key] = pair
        pair.raw.observe(raw)
    for pair in report.pairs.values():
        composed = skew.pair_offset(pair.origin, pair.executor)
        if composed is None:
            continue
        pair.offset_s, pair.error_bound_s = composed
        corrected = Histogram()
        for raw in pair.raw.values:
            corrected.observe(raw - pair.offset_s)
        pair.corrected = corrected
    return report
