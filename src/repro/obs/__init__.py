"""The observability layer: causal tracing and metrics for the stack.

Cross-cutting and strictly below every other ``repro`` package: the
tracer core (:mod:`repro.obs.tracer`) is stdlib-only so any layer can
import it without cycles, and the analysis side
(:mod:`repro.obs.analysis`) reaches upward to the ground-truth oracle
only lazily, inside functions.  The pieces:

* :class:`Tracer` / :class:`TraceEvent` -- structured protocol events
  (generated / sent / retransmitted / held back / released /
  transformed / executed / snapshot / crashed / recovered), emitted by
  every layer boundary through an optional hook whose disabled path is
  a single attribute check;
* :class:`MetricsRegistry` / :class:`Histogram` -- named counters and
  value histograms;
* :class:`TraceCausality` -- happens-before reconstructed from a
  recorded trace, cross-checked against the ground-truth oracle by
  :func:`cross_check_causality`;
* :func:`latency_histograms` -- per-site generation-to-execution
  latency from the same trace;
* :class:`PhaseProfiler` / :func:`profiled` -- the hot-path phase
  profiler (:mod:`repro.obs.profiler`): where a session's time goes,
  per phase, behind the same single-attribute-check disabled path;
* :mod:`repro.obs.bench` -- the benchmark scenario matrix, its
  versioned ``BENCH_<label>.json`` artifacts, and the
  :func:`compare_artifacts` regression gate;
* :class:`TelemetryFrame` / :class:`TelemetrySampler` / the watchdogs /
  :class:`FlightRecorder` (:mod:`repro.obs.telemetry`) -- live runtime
  gauges sampled on any scheduler, health verdicts over the gauge
  stream, and the crash-time trace-tail dump;
* :mod:`repro.obs.monitor` -- the cross-process aggregator behind
  ``python -m repro monitor``: incremental stream tailing
  (:class:`TelemetryTailer`), the UDP sideband fan-in, and the
  ``--follow`` sparkline dashboard;
* :mod:`repro.obs.spans` -- the end-to-end latency observatory:
  cross-process causal spans assembled into per-site-pair
  skew-corrected latency percentiles (:func:`assemble_spans`,
  :class:`SkewEstimator`, :class:`SpanReport`);
* JSONL and Chrome ``trace_event`` serialisation, including the
  crash-safe :class:`JsonlWriter` the telemetry streams ride on.
"""

from repro.obs.analysis import (
    CrossCheckReport,
    TraceAnalysisError,
    TraceCausality,
    cross_check_causality,
    latency_histograms,
    released_without_cause,
    verify_check_records,
)
from repro.obs.bench import (
    BENCH_FORMAT,
    BENCH_SCHEMA_VERSION,
    BenchScenario,
    ComparisonReport,
    compare_artifacts,
    read_artifact,
    run_scenario,
    write_artifact,
)
from repro.obs.profiler import (
    PhaseProfiler,
    PhaseStats,
    activated,
    install,
    profiled,
    uninstall,
)
from repro.obs.monitor import (
    MONITOR_FORMAT,
    MONITOR_SCHEMA_VERSION,
    FollowView,
    MonitorSnapshot,
    TelemetryTailer,
    aggregate,
    merged_registry,
    run_monitor,
    scan_dir,
    site_registry,
    sparkline,
)
from repro.obs.spans import (
    PairLatency,
    SkewEstimator,
    SpanReport,
    assemble_spans,
)
from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    TELEMETRY_SCHEMA_VERSION,
    CausalStallWatchdog,
    DivergenceSentinel,
    FlightRecorder,
    HealthEvent,
    RetransmitStormWatchdog,
    SilenceWatchdog,
    TelemetryFrame,
    TelemetrySampler,
    Watchdog,
    default_watchdogs,
    document_digest,
    snapshot_endpoint,
)
from repro.obs.tracer import (
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    Histogram,
    JsonlWriter,
    MetricsRegistry,
    TraceEvent,
    TraceEventKind,
    Tracer,
    read_jsonl,
    trace_header,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "BENCH_FORMAT",
    "BENCH_SCHEMA_VERSION",
    "MONITOR_FORMAT",
    "MONITOR_SCHEMA_VERSION",
    "TELEMETRY_FORMAT",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "BenchScenario",
    "CausalStallWatchdog",
    "ComparisonReport",
    "CrossCheckReport",
    "DivergenceSentinel",
    "FlightRecorder",
    "FollowView",
    "HealthEvent",
    "Histogram",
    "JsonlWriter",
    "MetricsRegistry",
    "MonitorSnapshot",
    "PairLatency",
    "PhaseProfiler",
    "PhaseStats",
    "RetransmitStormWatchdog",
    "SilenceWatchdog",
    "SkewEstimator",
    "SpanReport",
    "TelemetryFrame",
    "TelemetrySampler",
    "TelemetryTailer",
    "TraceAnalysisError",
    "TraceCausality",
    "TraceEvent",
    "TraceEventKind",
    "Tracer",
    "Watchdog",
    "activated",
    "aggregate",
    "assemble_spans",
    "compare_artifacts",
    "cross_check_causality",
    "default_watchdogs",
    "document_digest",
    "install",
    "latency_histograms",
    "merged_registry",
    "profiled",
    "read_artifact",
    "read_jsonl",
    "released_without_cause",
    "run_monitor",
    "run_scenario",
    "scan_dir",
    "site_registry",
    "snapshot_endpoint",
    "sparkline",
    "trace_header",
    "uninstall",
    "verify_check_records",
    "write_artifact",
    "write_chrome_trace",
    "write_jsonl",
]
