"""The observability layer: causal tracing and metrics for the stack.

Cross-cutting and strictly below every other ``repro`` package: the
tracer core (:mod:`repro.obs.tracer`) is stdlib-only so any layer can
import it without cycles, and the analysis side
(:mod:`repro.obs.analysis`) reaches upward to the ground-truth oracle
only lazily, inside functions.  The pieces:

* :class:`Tracer` / :class:`TraceEvent` -- structured protocol events
  (generated / sent / retransmitted / held back / released /
  transformed / executed / snapshot / crashed / recovered), emitted by
  every layer boundary through an optional hook whose disabled path is
  a single attribute check;
* :class:`MetricsRegistry` / :class:`Histogram` -- named counters and
  value histograms;
* :class:`TraceCausality` -- happens-before reconstructed from a
  recorded trace, cross-checked against the ground-truth oracle by
  :func:`cross_check_causality`;
* :func:`latency_histograms` -- per-site generation-to-execution
  latency from the same trace;
* JSONL and Chrome ``trace_event`` serialisation.
"""

from repro.obs.analysis import (
    CrossCheckReport,
    TraceAnalysisError,
    TraceCausality,
    cross_check_causality,
    latency_histograms,
    released_without_cause,
    verify_check_records,
)
from repro.obs.tracer import (
    TRACE_FORMAT,
    Histogram,
    MetricsRegistry,
    TraceEvent,
    TraceEventKind,
    Tracer,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "TRACE_FORMAT",
    "CrossCheckReport",
    "Histogram",
    "MetricsRegistry",
    "TraceAnalysisError",
    "TraceCausality",
    "TraceEvent",
    "TraceEventKind",
    "Tracer",
    "cross_check_causality",
    "latency_histograms",
    "read_jsonl",
    "released_without_cause",
    "verify_check_records",
    "write_chrome_trace",
    "write_jsonl",
]
