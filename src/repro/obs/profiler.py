"""The hot-path phase profiler: where does a session's time actually go?

The tracer (:mod:`repro.obs.tracer`) records *what happened* to every
operation; this module records *what it cost*.  A
:class:`PhaseProfiler` aggregates named **phases** -- OT transformation,
hold-back bookkeeping, reliability send/retransmit, codec encode/decode,
clock primitives, notifier propagation -- into per-phase call counts,
wall time, CPU time, and child-exclusive self time.  Phases nest: a
``notifier.broadcast`` span naturally contains ``ot.transform_pair``
and ``net.send`` spans, and the parent's *self* time excludes them.

Like the tracer, the module is deliberately zero-dependency (stdlib
only) and sits below every other ``repro`` package, so any layer may
hook itself without creating an import cycle.

Activation model
----------------
Hot paths cannot thread a profiler object through every call signature
(``inclusion_transform`` is a free function three layers below the
session), so activation is **module-global**: :func:`install` publishes
a profiler as :data:`ACTIVE`, :func:`uninstall` retracts it, and
:func:`activated` scopes the pair.  Every hook site guards on that one
module attribute:

* the :func:`profiled` decorator -- ``if ACTIVE is None: call through``
  -- used by the function-shaped hot paths (OT transform, codec,
  hold-back, reliability, notifier);
* :class:`repro.clocks.base.ProfiledClock` -- the same guard around
  every :class:`~repro.clocks.base.ClockProtocol` primitive, for all
  seven clock families.

Overhead contract
-----------------
Profiling is **opt-in**, mirroring the tracer's contract: with no
profiler installed the per-hook cost is one module-attribute check (for
decorated functions, plus the wrapper call python charges for any
decorator), and ``benchmarks/test_trace_overhead.py`` guards a muted
profiler (``PhaseProfiler(enabled=False)``) within 5% of the
uninstrumented baseline.  An *enabled* profiler pays two clock reads
per span and is allowed to cost what it costs.

Determinism
-----------
Both clocks are injectable (``wall_clock``/``cpu_clock``), so tests
drive spans with counters and assert exact arithmetic; all reports and
dict exports are emitted in sorted phase order, so two identical runs
produce byte-identical artifacts (modulo the timings themselves).

Optional deep capture: ``cprofile_top=N`` additionally runs a
:mod:`cProfile` profile between :meth:`PhaseProfiler.start` and
:meth:`PhaseProfiler.stop` and exposes the top ``N`` functions by
cumulative time -- the "why is this phase slow" drill-down.
"""

from __future__ import annotations

import cProfile
import functools
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Callable, Iterator, Optional, TypeVar, cast

PROFILE_SCHEMA_VERSION = 1

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass
class PhaseStats:
    """Aggregated cost of one named phase.

    ``wall``/``cpu`` are *cumulative* (outermost activations only, so
    recursive re-entry never double-counts); ``self_wall`` is wall time
    net of nested child phases, summed over every activation.
    """

    name: str
    calls: int = 0
    wall: float = 0.0
    cpu: float = 0.0
    self_wall: float = 0.0

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready mapping, keys in canonical order."""
        return {
            "name": self.name,
            "calls": self.calls,
            "wall_s": self.wall,
            "cpu_s": self.cpu,
            "self_wall_s": self.self_wall,
        }


class _Frame:
    """One open span on the profiler's stack."""

    __slots__ = ("name", "wall_start", "cpu_start", "child_wall")

    def __init__(self, name: str, wall_start: float, cpu_start: float) -> None:
        self.name = name
        self.wall_start = wall_start
        self.cpu_start = cpu_start
        self.child_wall = 0.0


class _Span:
    """Context manager binding one ``with profiler.phase(name):`` block."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._profiler.push(self._name)
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._profiler.pop()


class _NullSpan:
    """The shared no-op span a muted profiler hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class PhaseProfiler:
    """Aggregates nested phase spans into per-phase statistics.

    ``enabled=False`` mutes the instance: :meth:`phase` returns a shared
    no-op span and :meth:`push`/:meth:`pop` return immediately, for call
    sites that hold a profiler object but want it silent.  The clocks
    default to :func:`time.perf_counter` (wall) and
    :func:`time.process_time` (CPU) and are injectable for deterministic
    tests.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        wall_clock: Optional[Callable[[], float]] = None,
        cpu_clock: Optional[Callable[[], float]] = None,
        cprofile_top: int = 0,
    ) -> None:
        if cprofile_top < 0:
            raise ValueError(f"cprofile_top must be >= 0, got {cprofile_top}")
        self.enabled = enabled
        self.cprofile_top = cprofile_top
        self._wall = wall_clock if wall_clock is not None else time.perf_counter
        self._cpu = cpu_clock if cpu_clock is not None else time.process_time
        self._phases: dict[str, PhaseStats] = {}
        self._stack: list[_Frame] = []
        self._depth: dict[str, int] = {}
        self._cprofile: Optional[cProfile.Profile] = None

    # -- spans -------------------------------------------------------------------

    def phase(self, name: str) -> "_Span | _NullSpan":
        """A context manager timing one activation of ``name``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def push(self, name: str) -> None:
        """Open a span (prefer :meth:`phase`; this is the raw primitive)."""
        if not self.enabled:
            return
        self._stack.append(_Frame(name, self._wall(), self._cpu()))
        self._depth[name] = self._depth.get(name, 0) + 1

    def pop(self) -> None:
        """Close the innermost open span and absorb its timings."""
        if not self.enabled:
            return
        if not self._stack:
            raise RuntimeError("pop() without a matching push()")
        frame = self._stack.pop()
        wall = self._wall() - frame.wall_start
        cpu = self._cpu() - frame.cpu_start
        stats = self._phases.get(frame.name)
        if stats is None:
            stats = PhaseStats(frame.name)
            self._phases[frame.name] = stats
        stats.calls += 1
        depth = self._depth[frame.name] - 1
        self._depth[frame.name] = depth
        if depth == 0:
            # Outermost activation: cumulative time counted exactly once
            # even when the phase recursed into itself.
            stats.wall += wall
            stats.cpu += cpu
        stats.self_wall += wall - frame.child_wall
        if self._stack:
            self._stack[-1].child_wall += wall

    @property
    def open_spans(self) -> int:
        """How many spans are currently open (0 when balanced)."""
        return len(self._stack)

    # -- cProfile capture --------------------------------------------------------

    def start(self) -> None:
        """Begin the optional cProfile capture (no-op unless configured)."""
        if self.enabled and self.cprofile_top > 0 and self._cprofile is None:
            self._cprofile = cProfile.Profile()
            self._cprofile.enable()

    def stop(self) -> None:
        """End the cProfile capture (idempotent)."""
        if self._cprofile is not None:
            self._cprofile.disable()

    def top_functions(self) -> list[dict[str, object]]:
        """The ``cprofile_top`` hottest functions by cumulative time."""
        if self._cprofile is None or self.cprofile_top == 0:
            return []
        self._cprofile.disable()
        stats: Any = pstats.Stats(self._cprofile)
        rows: list[dict[str, object]] = []
        for (filename, lineno, func), row in stats.stats.items():
            cc, nc, tt, ct = row[0], row[1], row[2], row[3]
            del cc
            rows.append(
                {
                    "function": f"{filename}:{lineno}({func})",
                    "calls": int(nc),
                    "tottime_s": float(tt),
                    "cumtime_s": float(ct),
                }
            )
        rows.sort(key=lambda r: (-cast(float, r["cumtime_s"]), cast(str, r["function"])))
        return rows[: self.cprofile_top]

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict[str, PhaseStats]:
        """Per-phase statistics, sorted by phase name."""
        return dict(sorted(self._phases.items()))

    def phase_calls(self) -> dict[str, int]:
        """Just the (deterministic) call counters, sorted by phase name."""
        return {name: stats.calls for name, stats in self.stats().items()}

    def as_dict(self) -> dict[str, object]:
        """JSON-ready export (sorted, so identical runs serialise alike)."""
        out: dict[str, object] = {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "phases": [stats.as_dict() for stats in self.stats().values()],
        }
        top = self.top_functions()
        if top:
            out["top_functions"] = top
        return out

    def report(self) -> str:
        """A human-readable table, hottest (by wall time) first."""
        if not self._phases:
            return "  (no phases recorded)"
        ordered = sorted(
            self._phases.values(), key=lambda s: (-s.wall, s.name)
        )
        lines = [
            f"  {'phase':<28} {'calls':>8} {'wall ms':>10} {'self ms':>10} {'cpu ms':>10}"
        ]
        lines.extend(
            f"  {stats.name:<28} {stats.calls:>8} {stats.wall * 1000:>10.3f} "
            f"{stats.self_wall * 1000:>10.3f} {stats.cpu * 1000:>10.3f}"
            for stats in ordered
        )
        return "\n".join(lines)


# -- module-global activation ------------------------------------------------------

#: The profiler hot paths report to, or ``None`` (the fast path).
ACTIVE: Optional[PhaseProfiler] = None


def install(profiler: PhaseProfiler) -> None:
    """Publish ``profiler`` as :data:`ACTIVE` and start its capture."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a profiler is already installed")
    ACTIVE = profiler
    profiler.start()


def uninstall() -> Optional[PhaseProfiler]:
    """Retract the active profiler (stopping its capture); returns it."""
    global ACTIVE
    profiler = ACTIVE
    ACTIVE = None
    if profiler is not None:
        profiler.stop()
    return profiler


@contextmanager
def activated(profiler: PhaseProfiler) -> Iterator[PhaseProfiler]:
    """Scope an :func:`install`/:func:`uninstall` pair."""
    install(profiler)
    try:
        yield profiler
    finally:
        uninstall()


def profiled(name: str) -> Callable[[_F], _F]:
    """Route every call of the decorated function through phase ``name``.

    The disabled path -- no profiler installed, or a muted one -- is a
    single module-attribute check before calling straight through.
    """

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            profiler = ACTIVE
            if profiler is None or not profiler.enabled:
                return fn(*args, **kwargs)
            profiler.push(name)
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.pop()

        return cast(_F, wrapper)

    return decorate
