"""Trace analysis: happens-before reconstruction and latency metrics.

A recorded trace (:mod:`repro.obs.tracer`) contains enough structure to
rebuild the happened-before relation of the paper's Definition 1 without
any access to the live session: generations and executions give the
event set, emission order gives each site's program order, and
snapshot/recovery pairs give the causal edge a state transfer creates.
:class:`TraceCausality` performs that reconstruction, and
:func:`cross_check_causality` verifies it -- pair by pair -- against the
ground-truth oracle in :mod:`repro.analysis.causality`, the same way
model-checking work validates replication algorithms against recorded
executions.

:func:`verify_check_records` closes the loop on formulas (5) and (7):
every concurrency verdict the compressed scheme produced during the run
must equal what the reconstructed happens-before relation says.

:func:`latency_histograms` computes per-site generation-to-execution
latency distributions from the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.obs.tracer import Histogram, MetricsRegistry, TraceEvent, TraceEventKind

if TYPE_CHECKING:
    from repro.clocks.events import EventLog
    from repro.session.base import CheckRecord

# Event kinds that are *causally meaningful*: they enter the DAG as
# nodes.  Transport bookkeeping (sent / retransmitted / held back /
# released) moves payloads around but creates no happened-before edge of
# its own -- causality is carried entirely by generations, executions and
# state transfers.
_DAG_KINDS = frozenset(
    {
        TraceEventKind.GENERATED,
        TraceEventKind.TRANSFORMED,
        TraceEventKind.EXECUTED,
        TraceEventKind.SNAPSHOT,
        TraceEventKind.CRASHED,
        TraceEventKind.RECOVERED,
        # Failover milestones are program-order-only nodes: they order a
        # site's own timeline (a successor's post-promotion generations
        # follow its election) but add no cross-site edge of their own --
        # causality crosses sites only through the failover SNAPSHOT ->
        # RECOVERED transfer, mirroring the ground-truth clock merge.
        TraceEventKind.ELECTED,
        TraceEventKind.PROMOTED,
        TraceEventKind.HANDOFF,
    }
)


def _transfer_category(via: Optional[str]) -> str:
    """Snapshot/recovery matching category.

    Failover re-admission and crash resync both use epoch-numbered
    snapshots, and a client's crash epochs are numbered independently of
    the notifier epochs -- ``(peer, 1)`` alone would collide when site 3
    both restarts (crash epoch 1) and survives a failover (notifier
    epoch 1).  The ``via`` tag separates the two keyspaces; historic
    traces without the tag fall into the resync category.
    """
    return "failover" if via == "failover" else "resync"


class TraceAnalysisError(ValueError):
    """Raised on a structurally malformed trace."""


class TraceCausality:
    """The happened-before relation reconstructed from a recorded trace.

    Construction mirrors :class:`repro.analysis.causality.CausalityOracle`
    but reads *trace events* instead of the live event log:

    * one DAG node per causally meaningful trace event;
    * program-order edges within each site (emission order restricted to
      one site is that site's local order);
    * an edge from each operation's generation event -- its first
      ``GENERATED`` or ``TRANSFORMED`` event; the notifier's transformed
      output counts as a fresh operation generated at site 0, exactly as
      in the paper's Section 3.1 -- to every execution of the operation;
    * an edge from each ``SNAPSHOT`` event to the matching *resync* or
      *failover* ``RECOVERED`` event (matched on destination site,
      epoch, and transfer category -- crash epochs and notifier epochs
      are numbered independently): a state transfer delivers the
      sender's entire causal history in bulk.  Join snapshots create
      **no** edge -- the
      ground-truth event log does not absorb the notifier's clock on a
      join, so a joiner's first operations are concurrent with the
      pre-join history, and the trace relation mirrors that.

    Emission order is a topological order of this DAG (every edge points
    forward in the trace), so reachability is one reverse sweep with
    bitset accumulation.
    """

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events = list(events)
        nodes = [e for e in self.events if e.kind in _DAG_KINDS]
        self._generation: dict[str, TraceEvent] = {}
        self.transform_source: dict[str, str] = {}
        for event in nodes:
            if event.kind in (TraceEventKind.GENERATED, TraceEventKind.TRANSFORMED):
                if event.op_id is None:
                    raise TraceAnalysisError(f"generation event without op id: {event}")
                self._generation.setdefault(event.op_id, event)
                if (
                    event.kind is TraceEventKind.TRANSFORMED
                    and event.source_op_id is not None
                    and event.source_op_id != event.op_id
                ):
                    self.transform_source.setdefault(event.op_id, event.source_op_id)
        # Adjacency over positions in ``nodes`` (trace order, hence
        # topological order); bitset reachability over the same indexing.
        position = {event.index: pos for pos, event in enumerate(nodes)}
        successors: list[list[int]] = [[] for _ in nodes]
        last_at_site: dict[int, int] = {}
        pending_snapshots: dict[tuple[int, int, str], int] = {}
        for pos, event in enumerate(nodes):
            previous = last_at_site.get(event.site)
            if previous is not None:
                successors[previous].append(pos)
            last_at_site[event.site] = pos
            if event.kind is TraceEventKind.EXECUTED:
                if event.op_id is None:
                    raise TraceAnalysisError(f"execution event without op id: {event}")
                generation = self._generation.get(event.op_id)
                if generation is None:
                    raise TraceAnalysisError(
                        f"operation {event.op_id!r} executed at site {event.site} "
                        "before any generation event"
                    )
                successors[position[generation.index]].append(pos)
            elif event.kind is TraceEventKind.SNAPSHOT:
                if event.peer is not None:
                    key = (event.peer, event.epoch or 0, _transfer_category(event.via))
                    pending_snapshots[key] = pos
            elif event.kind is TraceEventKind.RECOVERED and event.via != "join":
                sender = pending_snapshots.pop(
                    (event.site, event.epoch or 0, _transfer_category(event.via)), None
                )
                if sender is not None:
                    successors[sender].append(pos)
        reach = [0] * len(nodes)
        for pos in range(len(nodes) - 1, -1, -1):
            mask = 0
            for succ in successors[pos]:
                mask |= (1 << succ) | reach[succ]
            reach[pos] = mask
        self._position = position
        self._reach = reach

    # -- queries over operations ----------------------------------------------

    def ops(self) -> list[str]:
        """All operation ids with a generation event, in trace order."""
        return list(self._generation)

    def happened_before(self, op_a: str, op_b: str) -> bool:
        """Definition 1 over the reconstructed DAG: ``O_a -> O_b``."""
        gen_a = self._generation[op_a]
        gen_b = self._generation[op_b]
        pos_b = self._position[gen_b.index]
        return bool(self._reach[self._position[gen_a.index]] >> pos_b & 1)

    def concurrent(self, op_a: str, op_b: str) -> bool:
        """Definition 2: neither happened before the other."""
        if op_a == op_b:
            return False
        return not self.happened_before(op_a, op_b) and not self.happened_before(
            op_b, op_a
        )

    def causal_pairs(self) -> set[tuple[str, str]]:
        """All ordered pairs ``(a, b)`` with ``a -> b``."""
        ops = self.ops()
        return {
            (a, b)
            for a in ops
            for b in ops
            if a != b and self.happened_before(a, b)
        }

    def concurrent_pairs(self) -> set[frozenset[str]]:
        """All unordered concurrent pairs."""
        ops = self.ops()
        out: set[frozenset[str]] = set()
        for i, a in enumerate(ops):
            for b in ops[i + 1 :]:
                if self.concurrent(a, b):
                    out.add(frozenset((a, b)))
        return out

    def original_op(self, op_id: str) -> str:
        """Map a transformed operation back to its original client op."""
        return self.transform_source.get(op_id, op_id)


@dataclass
class CrossCheckReport:
    """Pairwise comparison of trace-derived HB against the oracle."""

    mode: str  # "causality-oracle" (DAG + VC) or "vector-clock" (VC only)
    n_ops: int
    pairs_checked: int
    mismatches: list[tuple[str, str, bool, bool]] = field(default_factory=list)
    only_in_trace: list[str] = field(default_factory=list)
    only_in_log: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.mismatches or self.only_in_trace or self.only_in_log)

    def summary(self) -> str:
        verdict = "EXACT MATCH" if self.ok else "MISMATCH"
        lines = [
            f"happens-before cross-check [{self.mode}]: {verdict} "
            f"({self.n_ops} ops, {self.pairs_checked} ordered pairs)"
        ]
        for a, b, trace_hb, oracle_hb in self.mismatches[:10]:
            lines.append(
                f"  {a} -> {b}: trace says {trace_hb}, oracle says {oracle_hb}"
            )
        if self.only_in_trace:
            lines.append(f"  ops only in trace: {self.only_in_trace}")
        if self.only_in_log:
            lines.append(f"  ops only in event log: {self.only_in_log}")
        return "\n".join(lines)


def cross_check_causality(
    trace: "TraceCausality | Sequence[TraceEvent]", event_log: "EventLog"
) -> CrossCheckReport:
    """Compare trace-derived happens-before against the ground truth.

    Without recoveries in the trace, the ground truth is the full
    :class:`~repro.analysis.causality.CausalityOracle` (which itself
    cross-checks its DAG against vector clocks).  A crash recovery
    transfers causality through a snapshot rather than through logged
    events, which the oracle's event DAG does not model; the oracle's
    *vector-clock* half stays exact across state transfers (the event
    log absorbs the snapshot clock), so recovery traces are checked
    against that relation instead.
    """
    from repro.clocks.vector import Ordering, compare

    causality = trace if isinstance(trace, TraceCausality) else TraceCausality(trace)
    trace_ops = causality.ops()
    log_ops = event_log.op_ids()
    report = CrossCheckReport(
        mode="vector-clock",
        n_ops=len(trace_ops),
        pairs_checked=0,
        only_in_trace=sorted(set(trace_ops) - set(log_ops)),
        only_in_log=sorted(set(log_ops) - set(trace_ops)),
    )
    recovered = any(
        e.kind is TraceEventKind.RECOVERED and e.via != "join"
        for e in causality.events
    )
    if not recovered:
        from repro.analysis.causality import CausalityOracle

        report.mode = "causality-oracle"
        oracle = CausalityOracle(event_log)

        def ground_truth(a: str, b: str) -> bool:
            return oracle.happened_before(a, b)

    else:

        def ground_truth(a: str, b: str) -> bool:
            return (
                compare(event_log.generation_clock(a), event_log.generation_clock(b))
                is Ordering.BEFORE
            )

    shared = [op for op in trace_ops if op in set(log_ops)]
    for a in shared:
        for b in shared:
            if a == b:
                continue
            report.pairs_checked += 1
            trace_hb = causality.happened_before(a, b)
            oracle_hb = ground_truth(a, b)
            if trace_hb != oracle_hb:
                report.mismatches.append((a, b, trace_hb, oracle_hb))
    return report


def verify_check_records(
    causality: TraceCausality, checks: Sequence["CheckRecord"]
) -> list["CheckRecord"]:
    """Formulas (5)/(7) vs the trace: return the disagreeing checks.

    Every recorded concurrency verdict must equal trace-level
    concurrency.  The notifier's formula (7) is defined over operations
    "as originally generated" (paper Section 4.2), so site-0 checks
    compare the buffered entry's *source* operation; client-side
    formula (5) checks compare the ids as recorded.
    """
    known = set(causality.ops())
    disagreements: list["CheckRecord"] = []
    for record in checks:
        buffered = (
            causality.original_op(record.buffered_op_id)
            if record.site == 0
            else record.buffered_op_id
        )
        if record.new_op_id not in known or buffered not in known:
            continue  # ops outside the trace window (pre-attach history)
        if causality.concurrent(record.new_op_id, buffered) != record.verdict:
            disagreements.append(record)
    return disagreements


def latency_histograms(
    events: Sequence[TraceEvent],
    metrics: Optional[MetricsRegistry] = None,
    prefix: str = "latency.site_",
) -> dict[int, Histogram]:
    """Per-site generation-to-execution latency distributions.

    For every ``EXECUTED`` event, the latency is the virtual time since
    the *original* operation's generation (transformed notifier outputs
    are mapped back through their ``TRANSFORMED`` event).  Results are
    keyed by executing site; when ``metrics`` is given, each observation
    is also recorded under ``{prefix}{site}``.
    """
    generated_at: dict[str, float] = {}
    source: dict[str, str] = {}
    out: dict[int, Histogram] = {}
    for event in events:
        if event.kind is TraceEventKind.GENERATED and event.op_id is not None:
            generated_at.setdefault(event.op_id, event.time)
        elif (
            event.kind is TraceEventKind.TRANSFORMED
            and event.op_id is not None
            and event.source_op_id is not None
        ):
            source.setdefault(event.op_id, event.source_op_id)
        elif event.kind is TraceEventKind.EXECUTED and event.op_id is not None:
            original = source.get(event.op_id, event.op_id)
            start = generated_at.get(original)
            if start is None:
                continue  # op generated outside the trace window
            latency = event.time - start
            hist = out.get(event.site)
            if hist is None:
                hist = Histogram()
                out[event.site] = hist
            hist.observe(latency)
            if metrics is not None:
                metrics.observe(f"{prefix}{event.site}", latency)
    return out


def released_without_cause(events: Sequence[TraceEvent]) -> list[TraceEvent]:
    """Releases that neither arrived in order nor were ever held back.

    The delivery audit behind the trace property tests: every
    ``RELEASED`` event must be a direct in-order delivery
    (``via="direct"``) or must be preceded by a matching ``HELD_BACK``
    event for the same (site, peer, epoch, seq) slot.  Returns the
    offending releases (empty on a well-formed trace).
    """
    held: set[tuple[int, Optional[int], Optional[int], Optional[int]]] = set()
    bad: list[TraceEvent] = []
    for event in events:
        key = (event.site, event.peer, event.epoch, event.seq)
        if event.kind is TraceEventKind.HELD_BACK:
            held.add(key)
        elif event.kind is TraceEventKind.RELEASED:
            if event.via == "direct":
                continue
            if key not in held:
                bad.append(event)
    return bad
