"""The structured protocol tracer and the counters/histograms registry.

Every layer of the editor protocol stack (transport, causality,
integration, session -- see DESIGN.md "Architecture layers") accepts an
optional :class:`Tracer` and emits a :class:`TraceEvent` at each
protocol step an operation passes through: generation, transport send,
retransmission, hold-back, in-order release, transformation, execution,
crash and recovery.  Each event is stamped with the site, the virtual
time, and -- where the layer knows them -- the reliability epoch and
sequence number and the operation's compressed timestamp.

The module is deliberately zero-dependency (stdlib only) and sits below
every other ``repro`` package, so any layer may import it without
creating a cycle.

Overhead contract
-----------------
Tracing is **opt-in**.  The disabled path at every hook site is a single
attribute check (``if self.tracer is not None``) -- no event object is
built, no string is formatted, nothing is appended.  A session
constructed without a tracer therefore runs the exact same instruction
stream as before instrumentation, plus one pointer comparison per hook;
``benchmarks/test_trace_overhead.py`` guards this at <= 5%.  A
:class:`Tracer` constructed with ``enabled=False`` additionally makes
``emit`` itself a no-op, for call sites that hold a tracer object but
want to mute it.
"""

from __future__ import annotations

import enum
import json
import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, TextIO, Union

TRACE_FORMAT = "repro-obs-trace-v1"

#: Bumped whenever the JSONL schema changes shape.  Version 1 predates
#: the field (readers treat a missing value as 1); version 2 fixed the
#: event field order (canonical, not alphabetical) and added this
#: header field; version 3 added the ``span`` event kind and the
#: optional ``ot`` (origin wall-clock time) field -- readers of any
#: version tolerate both being absent.
TRACE_SCHEMA_VERSION = 3


class TraceEventKind(enum.Enum):
    """The event taxonomy: what can happen to an operation in flight."""

    GENERATED = "generated"  # a site generated (and locally executed) an op
    SENT = "sent"  # the transport put an application payload on the wire
    RETRANSMITTED = "retransmitted"  # the reliability protocol resent a packet
    HELD_BACK = "held_back"  # an arrival was buffered awaiting its turn
    RELEASED = "released"  # an arrival was handed up to the editor
    TRANSFORMED = "transformed"  # an op was transformed against concurrent ops
    EXECUTED = "executed"  # a site executed a remote operation
    SNAPSHOT = "snapshot"  # the notifier served a state snapshot
    CRASHED = "crashed"  # a client lost its volatile state
    RECOVERED = "recovered"  # a client installed a snapshot and went active
    ELECTED = "elected"  # a successor accepted a notifier election
    PROMOTED = "promoted"  # the successor assumed the notifier role
    HANDOFF = "handoff"  # a client switched its centre to the successor
    HOLDBACK_OVERFLOW = "holdback_overflow"  # the reorder buffer hit capacity
    SPAN = "span"  # a wall-clock latency stage marker (``via`` names it)


@dataclass(frozen=True)
class TraceEvent:
    """One structured protocol event.

    ``index`` is the global emission index (the trace is appended in
    simulation order, so it is also a topological order of the causal
    structure the events describe).  Optional fields are ``None`` when
    the emitting layer does not know them: transport events carry
    ``epoch``/``seq`` but no compressed timestamp, editor events the
    reverse.  ``via`` qualifies releases (``"direct"`` vs
    ``"holdback"``), snapshots and recoveries (``"join"`` /
    ``"resync"`` / ``"failover"``), and names the stage of ``span``
    events (``"generate"`` / ``"ingest"`` / ``"broadcast"`` /
    ``"hold"`` / ``"release"`` / ``"execute"``).  ``origin_time`` is
    the wall-clock instant the operation was generated, measured on the
    *origin site's* clock and carried with the op across processes --
    only ``span`` events set it.
    """

    index: int
    kind: TraceEventKind
    time: float
    site: int
    op_id: Optional[str] = None
    peer: Optional[int] = None
    epoch: Optional[int] = None
    seq: Optional[int] = None
    timestamp: Optional[tuple[int, ...]] = None
    source_op_id: Optional[str] = None
    via: Optional[str] = None
    origin_time: Optional[float] = None

    def to_json(self) -> str:
        """One compact JSON object; ``None`` fields are omitted.

        Fields are emitted in the canonical schema order (``i``,
        ``kind``, ``t``, ``site``, ``op``, ``peer``, ``epoch``, ``seq``,
        ``ts``, ``src``, ``via``, ``ot``) -- not alphabetically -- so
        exports are deterministic *and* diff cleanly between runs.
        """
        data: dict[str, Any] = {
            "i": self.index,
            "kind": self.kind.value,
            "t": self.time,
            "site": self.site,
        }
        if self.op_id is not None:
            data["op"] = self.op_id
        if self.peer is not None:
            data["peer"] = self.peer
        if self.epoch is not None:
            data["epoch"] = self.epoch
        if self.seq is not None:
            data["seq"] = self.seq
        if self.timestamp is not None:
            data["ts"] = list(self.timestamp)
        if self.source_op_id is not None:
            data["src"] = self.source_op_id
        if self.via is not None:
            data["via"] = self.via
        if self.origin_time is not None:
            data["ot"] = self.origin_time
        return json.dumps(data)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        timestamp = data.get("ts")
        return cls(
            index=int(data["i"]),
            kind=TraceEventKind(data["kind"]),
            time=float(data["t"]),
            site=int(data["site"]),
            op_id=data.get("op"),
            peer=data.get("peer"),
            epoch=data.get("epoch"),
            seq=data.get("seq"),
            timestamp=tuple(timestamp) if timestamp is not None else None,
            source_op_id=data.get("src"),
            via=data.get("via"),
            origin_time=data.get("ot"),
        )


class Histogram:
    """A plain value-recording histogram with summary statistics."""

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def minimum(self) -> Optional[float]:
        """Smallest observed value, or ``None`` on an empty histogram."""
        if not self.values:
            return None
        return min(self.values)

    @property
    def maximum(self) -> Optional[float]:
        """Largest observed value, or ``None`` on an empty histogram."""
        if not self.values:
            return None
        return max(self.values)

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean, or ``None`` on an empty histogram."""
        if not self.values:
            return None
        return sum(self.values) / len(self.values)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile, ``p`` in [0, 100].

        An empty histogram has no percentiles: returns ``None`` (callers
        such as the bench artifact writer serialise that as JSON
        ``null`` rather than crashing a whole report on one idle
        scenario).  A single-sample histogram returns that sample for
        every ``p``.  ``p`` outside [0, 100] is still a programming
        error and raises.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return None
        if len(self.values) == 1:
            return self.values[0]
        ordered = sorted(self.values)
        rank = max(1, -(-int(p * len(ordered)) // 100))  # ceil without floats
        rank = min(rank, len(ordered))
        if p == 0.0:
            rank = 1
        return ordered[rank - 1]

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram; returns self.

        Merging concatenates the raw samples, so every statistic of the
        merged histogram equals the statistic computed over the union of
        observations -- percentiles included, which per-bucket or
        per-summary merging cannot guarantee.  ``other`` is untouched.
        """
        self.values.extend(other.values)
        return self

    def summary(self) -> str:
        if not self.values:
            return "n=0"
        return (
            f"n={self.count} min={self.minimum:.4g} p50={self.percentile(50):.4g} "
            f"p95={self.percentile(95):.4g} max={self.maximum:.4g} "
            f"mean={self.mean:.4g}"
        )


class MetricsRegistry:
    """Named counters and histograms, created on first touch."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, by: int = 1) -> int:
        """Bump counter ``name`` by ``by``; returns the new value."""
        value = self._counters.get(name, 0) + by
        self._counters[name] = value
        return value

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    def histogram(self, name: str) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram()
            self._histograms[name] = hist
        return hist

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry; returns ``self``.

        Counters add; histograms concatenate their recorded values, so a
        percentile over the merged registry is the percentile over the
        union of observations (not an average of per-process
        percentiles, which would be statistically meaningless).  The
        cluster monitor uses this to aggregate per-process telemetry
        into one cross-process view.  ``other`` is left untouched.
        """
        for name, value in other._counters.items():
            self.inc(name, value)
        for name, hist in other._histograms.items():
            self.histogram(name).merge(hist)
        return self

    def counters(self) -> dict[str, int]:
        """A sorted snapshot of every counter."""
        return dict(sorted(self._counters.items()))

    def histograms(self) -> dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def summary(self) -> str:
        lines = [f"  {name} = {value}" for name, value in self.counters().items()]
        lines.extend(
            f"  {name}: {hist.summary()}"
            for name, hist in self.histograms().items()
        )
        return "\n".join(lines) if lines else "  (no metrics recorded)"


def _zero_clock() -> float:
    return 0.0


class Tracer:
    """Collects :class:`TraceEvent` records from every instrumented layer.

    A tracer is shared by all endpoints of a session; the session binds
    the simulator clock via :meth:`bind_clock` so events are stamped
    with virtual time.  ``emit`` also bumps a ``trace.<kind>`` counter
    in the bundled :class:`MetricsRegistry`.

    Ring mode (the flight recorder's substrate): constructed with
    ``mode="ring"``, the tracer keeps only the most recent
    ``ring_capacity`` events in a bounded deque and skips the per-event
    metrics counter -- near-zero cost and constant memory, for processes
    that want a post-mortem tail rather than a full trace.  ``index``
    stays the global emission index either way (``emitted`` counts every
    emission, evicted or not), so a dumped ring is still a causally
    ordered slice of the full trace.
    """

    #: Default bound of a ``mode="ring"`` tracer.
    DEFAULT_RING_CAPACITY = 256

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        mode: str = "full",
        ring_capacity: Optional[int] = None,
    ) -> None:
        if mode not in ("full", "ring"):
            raise ValueError(f"tracer mode must be 'full' or 'ring', got {mode!r}")
        if ring_capacity is not None and ring_capacity < 1:
            raise ValueError(f"ring_capacity must be positive, got {ring_capacity}")
        self.enabled = enabled
        self.mode = mode if ring_capacity is None else "ring"
        self.ring_capacity: Optional[int] = None
        if self.mode == "ring":
            self.ring_capacity = (
                ring_capacity if ring_capacity is not None
                else self.DEFAULT_RING_CAPACITY
            )
        self.events: "deque[TraceEvent] | list[TraceEvent]" = (
            deque(maxlen=self.ring_capacity) if self.mode == "ring" else []
        )
        self.emitted = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock: Callable[[], float] = clock if clock is not None else _zero_clock
        self._sink: Optional[Callable[["TraceEvent"], None]] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Stamp subsequent events with ``clock()`` (the session's sim)."""
        self._clock = clock

    def bind_sink(self, sink: Optional[Callable[["TraceEvent"], None]]) -> None:
        """Stream every subsequent event to ``sink`` as it is emitted.

        The sink sees the event *after* it is appended to the in-memory
        buffer.  This is what lets a cluster process persist its trace
        incrementally (crash-safe, flush-per-event) instead of only at
        orderly shutdown -- a process that dies by ``os._exit`` still
        leaves every emitted event on disk.
        """
        self._sink = sink

    def emit(
        self,
        kind: TraceEventKind,
        site: int,
        *,
        op_id: Optional[str] = None,
        peer: Optional[int] = None,
        epoch: Optional[int] = None,
        seq: Optional[int] = None,
        timestamp: Optional[tuple[int, ...]] = None,
        source_op_id: Optional[str] = None,
        via: Optional[str] = None,
        time: Optional[float] = None,
        origin_time: Optional[float] = None,
    ) -> Optional[TraceEvent]:
        """Append one event (returns it), or ``None`` when disabled."""
        if not self.enabled:
            return None
        event = TraceEvent(
            index=self.emitted,
            kind=kind,
            time=self._clock() if time is None else time,
            site=site,
            op_id=op_id,
            peer=peer,
            epoch=epoch,
            seq=seq,
            timestamp=timestamp,
            source_op_id=source_op_id,
            via=via,
            origin_time=origin_time,
        )
        self.events.append(event)
        self.emitted += 1
        if self.mode != "ring":  # ring mode skips the counter: cost contract
            self.metrics.inc(f"trace.{kind.value}")
        if self._sink is not None:
            self._sink(event)
        return event

    def by_kind(self, kind: TraceEventKind) -> list[TraceEvent]:
        return [event for event in self.events if event.kind is kind]

    def __len__(self) -> int:
        return len(self.events)


# -- serialisation ---------------------------------------------------------------


def trace_header(extra: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    """The canonical header object: format, schema, then sorted extras."""
    head: dict[str, Any] = {
        "format": TRACE_FORMAT,
        "schema_version": TRACE_SCHEMA_VERSION,
    }
    if extra:
        for key in sorted(extra):
            if key not in ("format", "schema_version"):
                head[key] = extra[key]
    return head


def write_jsonl(
    events: Iterable[TraceEvent], fh: TextIO, header: Optional[dict[str, Any]] = None
) -> int:
    """Write a header line plus one JSON line per event; returns lines.

    The header always leads with ``format`` then ``schema_version``;
    any caller-supplied extras follow in sorted key order.  Together
    with the canonical event field order in
    :meth:`TraceEvent.to_json` this makes exports byte-deterministic:
    two runs of the same seeded scenario produce identical files.

    The stream is flushed before returning, so a caller that crashes
    *after* this call still leaves a complete file behind.  For files
    that grow record-by-record over a process's lifetime (telemetry
    streams, flight-recorder dumps) use :class:`JsonlWriter`, which
    flushes after every record.
    """
    fh.write(json.dumps(trace_header(header)) + "\n")
    count = 1
    for event in events:
        fh.write(event.to_json() + "\n")
        count += 1
    fh.flush()
    return count


class JsonlWriter:
    """A crash-safe streaming JSONL writer: one flushed line per record.

    :func:`write_jsonl` writes a finished trace in one shot; this class
    is for streams that must survive the writer dying mid-run.  Every
    ``write_line`` is followed by a ``flush()``, so at any instant the
    file on disk is a complete prefix of whole records -- the only
    possible damage from a hard kill is a torn *final* line, which
    :func:`read_jsonl` in ``lenient`` mode drops instead of raising.
    Usable as a context manager; ``close()`` is idempotent and fsyncs
    best-effort so the bytes outlive the process.
    """

    def __init__(self, path: Union[str, Path],
                 header: Optional[dict[str, Any]] = None) -> None:
        self.path = Path(path)
        self.lines = 0
        self._fh: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        if header is not None:
            self.write_line(json.dumps(header))

    @property
    def closed(self) -> bool:
        return self._fh is None

    def write_line(self, text: str) -> None:
        """Append one record line and flush it to the OS immediately."""
        if self._fh is None:
            raise ValueError(f"writer for {self.path} is closed")
        self._fh.write(text + "\n")
        self._fh.flush()
        self.lines += 1

    def write_event(self, event: TraceEvent) -> None:
        self.write_line(event.to_json())

    def close(self) -> None:
        """Flush, fsync (best-effort), and close; safe to call twice."""
        fh = self._fh
        if fh is None:
            return
        self._fh = None
        fh.flush()
        try:
            os.fsync(fh.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(
    fh: TextIO, *, lenient: bool = False
) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Read a trace written by :func:`write_jsonl`; (header, events).

    ``lenient`` tolerates a torn final line (a process killed mid-write
    through :class:`JsonlWriter` can leave at most one): a trailing line
    that fails to parse is dropped instead of failing the whole read.
    A malformed line *before* the end is still an error -- that is
    corruption, not a crash artifact.
    """
    lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"unknown trace format {header.get('format')!r}")
    events: list[TraceEvent] = []
    for position, line in enumerate(lines[1:], start=2):
        try:
            events.append(TraceEvent.from_json(line))
        except (ValueError, KeyError, TypeError):
            if lenient and position == len(lines):
                break  # torn final record: the crash the writer allows
            raise
    return header, events


def write_chrome_trace(events: Iterable[TraceEvent], fh: TextIO) -> int:
    """Export in Chrome ``trace_event`` format (load in chrome://tracing).

    Each protocol event becomes an instant event on the emitting site's
    track (pid = site), and every operation additionally gets an async
    span from its generation to its last execution, so per-op
    end-to-end latency is visible as a bar.  Virtual time is mapped
    1 s -> 1 ms of trace time (the ``ts`` field is microseconds).
    Returns the number of trace records written.
    """
    records: list[dict[str, Any]] = []
    spans: dict[str, tuple[float, float]] = {}  # op -> (first gen, last exec)
    for event in events:
        args: dict[str, Any] = {"index": event.index}
        if event.op_id is not None:
            args["op"] = event.op_id
        if event.peer is not None:
            args["peer"] = event.peer
        if event.epoch is not None:
            args["epoch"] = event.epoch
        if event.seq is not None:
            args["seq"] = event.seq
        if event.timestamp is not None:
            args["timestamp"] = list(event.timestamp)
        if event.source_op_id is not None:
            args["source_op"] = event.source_op_id
        if event.via is not None:
            args["via"] = event.via
        records.append(
            {
                "name": event.kind.value,
                "cat": "protocol",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": event.time * 1000.0,
                "pid": event.site,
                "tid": 0,
                "args": args,
            }
        )
        if event.kind is TraceEventKind.GENERATED and event.op_id is not None:
            spans.setdefault(event.op_id, (event.time, event.time))
        if event.kind is TraceEventKind.EXECUTED and event.op_id is not None:
            key = event.op_id.rstrip("'")
            start, _ = spans.get(key, (event.time, event.time))
            spans[key] = (start, event.time)
    for op_id, (start, end) in sorted(spans.items()):
        for phase, ts in (("b", start), ("e", end)):
            records.append(
                {
                    "name": f"op {op_id}",
                    "cat": "op",
                    "ph": phase,
                    "id": op_id,
                    "ts": ts * 1000.0,
                    "pid": 0,
                    "tid": 0,
                }
            )
    json.dump({"traceEvents": records, "displayTimeUnit": "ms"}, fh)
    return len(records)
