"""The editor-process seam: a SimProcess that *owns* its transport.

:class:`EditorEndpoint` is the glue between the transport layer
(:mod:`repro.net.reliability`) and the integration layer (the star and
mesh editor classes).  It is a plain
:class:`~repro.net.process.SimProcess` -- so topologies wire it like any
other process -- that routes all traffic through a composed transport
object instead of implementing (or inheriting) delivery machinery:

* outgoing: ``self.send(...)`` -> ``self.transport.send(...)`` -> (raw
  pass-through, or sequencing + retransmission) -> the FIFO channel;
* incoming: channel -> ``self.on_message`` -> ``self.transport.on_wire``
  -> (immediately, or after in-order release) ->
  ``self._handle_app_message`` in the editor subclass.

No editor class inherits from a transport class; swapping transports is
a constructor argument.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.net.process import SimProcess
from repro.net.reliability import (
    AnyTransport,
    ReliabilityConfig,
    ReliabilityStats,
    build_transport,
)
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope
from repro.obs.tracer import Tracer


class EditorEndpoint(SimProcess):
    """A simulated process whose editor logic talks through a transport."""

    transport: AnyTransport

    def __init__(self, sim: Scheduler, pid: int,
                 reliability: Optional[ReliabilityConfig] = None,
                 tracer: Optional[Tracer] = None,
                 *, adopt_transport: Optional[AnyTransport] = None) -> None:
        super().__init__(sim, pid)
        self.tracer = tracer
        #: Wall-clock source for causal latency spans.  ``None`` (the
        #: default, and the only value simulator sessions ever see)
        #: disables span instrumentation entirely: no ``origin_wall``
        #: is stamped on outgoing messages and no ``span`` events are
        #: emitted, so deterministic traces and the paper's byte
        #: accounting are untouched.  Cluster processes arm it with
        #: ``time.time`` after construction.
        self.span_clock: Optional[Callable[[], float]] = None
        #: Rolling window of recent *uncorrected* end-to-end latencies
        #: (seconds; this site's clock minus the op's origin stamp),
        #: fed on every execution of a span-stamped arrival and
        #: published live through the telemetry sampler.  Empty unless
        #: ``span_clock`` is armed.
        self.e2e_window: deque[float] = deque(maxlen=64)
        if adopt_transport is not None:
            # Role transfer (notifier failover): the new endpoint takes
            # over an existing transport -- live links, sequence numbers,
            # stats and all -- and re-points its I/O hooks at itself.
            # The previous owner's incoming wire traffic now lands here.
            if adopt_transport.pid != pid:
                raise ValueError(
                    f"cannot adopt transport of pid {adopt_transport.pid} "
                    f"into endpoint {pid}"
                )
            self.transport = adopt_transport
            adopt_transport.wire_send = self._wire_send
            adopt_transport.deliver = self._handle_app_message
        else:
            self.transport = build_transport(
                sim,
                pid,
                reliability,
                wire_send=self._wire_send,
                deliver=self._handle_app_message,
                tracer=tracer,
            )

    # -- wiring ------------------------------------------------------------------

    def _wire_send(self, dest: int, payload: Any, timestamp_bytes: int = 0,
                   kind: str = "op") -> None:
        """Raw channel access, handed to the transport at construction."""
        SimProcess.send(self, dest, payload, timestamp_bytes, kind)

    def send(self, dest: int, payload: Any, timestamp_bytes: int = 0,
             kind: str = "op") -> None:
        """Application-level send: goes through the owned transport."""
        self.transport.send(dest, payload, timestamp_bytes, kind)

    def on_message(self, envelope: Envelope) -> None:
        """Network arrival: goes through the owned transport."""
        self.transport.on_wire(envelope)

    # -- editor hook -------------------------------------------------------------

    def _handle_app_message(self, envelope: Envelope) -> None:
        """Editor-level message handling; override in subclasses."""
        raise NotImplementedError

    # -- transport surface mirrored for the session layer ------------------------

    @property
    def rel_stats(self) -> ReliabilityStats:
        """The transport's protocol counters (pre-refactor name)."""
        return self.transport.stats

    def delivered_in_order(self) -> bool:
        """The transport's in-order release audit."""
        return self.transport.delivered_in_order()

    def holdback_pending(self) -> bool:
        """True iff editor-level delivery is still waiting on something.

        Transport-level holdback (the reliable endpoint's reorder
        buffer) is *not* included: a held packet always implies an
        unacknowledged sender with a retransmit timer armed, so the
        simulator's pending-event count already covers it.  Subclasses
        with an editor-level hold-back (the mesh's causal buffer)
        override this.
        """
        return False
