"""The session layer of the editor protocol stack.

Shared machinery between the star and mesh editors, sitting above the
transport layer (:mod:`repro.net.reliability`) and below the concrete
integration logic (:mod:`repro.editor`):

* :class:`SessionBase` -- run / converged / quiescent / documents /
  wire_stats / all_checks, shared by every session kind;
* :class:`CheckRecord` / :class:`ConsistencyError` -- concurrency-check
  diagnostics and the verdict-vs-oracle failure;
* :class:`HoldbackQueue` -- the per-sender ordered-delivery buffer used
  by both the reliability transport and the mesh's causal broadcast;
* :class:`EditorEndpoint` -- a SimProcess that owns a transport by
  composition (the seam the integration layer builds on).
"""

from repro.session.base import CheckRecord, ConsistencyError, SessionBase
from repro.session.endpoint import EditorEndpoint
from repro.session.holdback import HoldbackQueue

__all__ = [
    "CheckRecord",
    "ConsistencyError",
    "SessionBase",
    "EditorEndpoint",
    "HoldbackQueue",
]
