"""The shared session layer: orchestration common to star and mesh.

A *session* wires a set of simulated editor processes to a topology and
exposes the experiment surface every workload, benchmark, and test
drives: run the event loop, compare replica documents, aggregate wire
statistics, and collect concurrency-check diagnostics.  Star
(:class:`repro.editor.star.StarSession`) and mesh
(:class:`repro.editor.mesh.MeshSession`) used to duplicate all of this;
:class:`SessionBase` is the single implementation, parameterised only
by :meth:`SessionBase.endpoints`.

:class:`CheckRecord` and :class:`ConsistencyError` also live here: a
concurrency-check diagnostic and the compressed-verdict-vs-oracle
failure are session-layer concepts, not star-specific ones (the paper's
Fig. 3 assertions read them, and any future integration layer emits
them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.net.scheduler import Scheduler
from repro.obs.tracer import TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import TelemetryFrame, TelemetrySampler, Watchdog


class ConsistencyError(AssertionError):
    """Raised when a compressed verdict disagrees with the oracle."""


@dataclass
class CheckRecord:
    """One concurrency check, for diagnostics and Fig. 3 assertions."""

    site: int
    new_op_id: str
    buffered_op_id: str
    verdict: bool
    new_timestamp: list[int]
    buffered_timestamp: list[int]


class SessionBase:
    """Common orchestration over a scheduler + topology + endpoints.

    Subclasses construct ``self.sim`` and ``self.topology`` and
    implement :meth:`endpoints`; everything else -- running, convergence
    and quiescence checks, wire statistics, check aggregation -- is
    shared.  ``sim`` is any :class:`~repro.net.scheduler.Scheduler`:
    the in-repo sessions build a deterministic
    :class:`~repro.net.simulator.Simulator`, while the cluster harness
    runs the same endpoints under the wall-clock scheduler.
    """

    sim: Scheduler
    topology: Any
    tracer: Optional[Tracer] = None
    telemetry: Optional["TelemetrySampler"] = None

    def endpoints(self) -> Sequence[Any]:
        """The document-bearing processes, in canonical site order.

        After a role transfer (notifier failover) this reflects the
        *current* replica set: dead roles drop out, promoted ones join.
        """
        raise NotImplementedError

    def participants(self) -> Sequence[Any]:
        """Every process that ever played a role, dead ones included.

        Diagnostics (check records, delivery audits) must cover the
        whole run -- a crashed notifier's pre-crash checks are still
        evidence.  Defaults to :meth:`endpoints`; sessions with role
        transfer override it.
        """
        return self.endpoints()

    # -- running ---------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> int:
        """Run the simulation; returns the number of events executed."""
        executed = self.sim.run(until=until)
        if self.tracer is not None:
            self.tracer.metrics.inc("session.runs")
            self.tracer.metrics.inc("session.sim_events", executed)
        return int(executed)

    def trace_events(self) -> Sequence[TraceEvent]:
        """Events recorded so far (empty without an attached tracer)."""
        return () if self.tracer is None else list(self.tracer.events)

    # -- telemetry ---------------------------------------------------------------

    def telemetry_frames(self, seq: int = 0) -> "list[TelemetryFrame]":
        """One gauge snapshot per endpoint, right now (a pull sample)."""
        from repro.obs.telemetry import snapshot_endpoint

        return [
            snapshot_endpoint(endpoint, sched=self.sim, seq=seq)
            for endpoint in self.endpoints()
        ]

    def attach_telemetry(
        self,
        *,
        interval: float,
        max_samples: Optional[int] = None,
        until: Optional[float] = None,
        watchdogs: "Sequence[Watchdog]" = (),
    ) -> "TelemetrySampler":
        """Arm a :class:`~repro.obs.telemetry.TelemetrySampler` on ``sim``.

        In-process sessions run on the deterministic simulator, whose
        ``run()`` drives to quiescence -- so the sampler must be
        bounded: pass ``max_samples`` and/or ``until`` (an unbounded
        wall-clock-style sampler would keep the simulation alive
        forever).  Sampling only reads endpoint state, so the seeded
        event stream -- and every deterministic metric derived from it
        -- is unchanged by attaching one.
        """
        from repro.obs.telemetry import TelemetrySampler

        if max_samples is None and until is None:
            raise ValueError(
                "an in-process sampler needs max_samples or until: an "
                "unbounded timer would keep the simulator from quiescing"
            )
        sampler = TelemetrySampler(
            self.sim, self.telemetry_frames, interval=interval,
            watchdogs=watchdogs,
        )
        sampler.start(max_samples=max_samples, until=until)
        self.telemetry = sampler
        return sampler

    # -- replica state -----------------------------------------------------------

    def documents(self) -> list[Any]:
        """Document states, one per endpoint in canonical order."""
        return [endpoint.document for endpoint in self.endpoints()]

    def converged(self) -> bool:
        """True iff all endpoints hold equal document state."""
        docs = self.documents()
        return all(doc == docs[0] for doc in docs[1:])

    def quiescent(self) -> bool:
        """True iff no message is in flight and nothing is held back."""
        if self.sim.pending_events != 0:
            return False
        return not any(endpoint.holdback_pending() for endpoint in self.endpoints())

    # -- diagnostics -------------------------------------------------------------

    def all_checks(self) -> list[CheckRecord]:
        """Every concurrency check recorded by any endpoint."""
        records: list[CheckRecord] = []
        for endpoint in self.participants():
            records.extend(getattr(endpoint, "checks", ()))
        return records

    def wire_stats(self) -> Any:
        """Aggregate wire statistics over every channel."""
        return self.topology.total_stats()

    def reliable_delivery_in_order(self) -> bool:
        """True iff every endpoint's transport released a gap-free FIFO
        stream to the editor (trivially true without reliability)."""
        return all(
            endpoint.transport.delivered_in_order() for endpoint in self.participants()
        )
