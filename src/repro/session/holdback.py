"""Session-layer access to the shared hold-back queue.

The implementation lives in :mod:`repro.net.holdback` because the
reliability transport (a strictly lower layer) uses it too; importing it
from here keeps the session layer self-contained for its consumers (the
mesh editor, tests) without creating a net -> session import cycle.
"""

from repro.net.holdback import HoldbackQueue

__all__ = ["HoldbackQueue"]
