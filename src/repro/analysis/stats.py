"""Causality statistics for editing sessions.

Workload-characterisation tools over the ground-truth event log:

* **concurrency degree** -- what fraction of operation pairs were
  concurrent (how contended the session really was; the compression
  scheme's transformation work scales with it);
* **causal depth** -- the longest happened-before chain (the session's
  critical path);
* **per-site contribution** and transformation pressure (how many
  operations each incoming operation had to be transformed against).

Used by the workload benchmarks to report *what kind* of session a
number was measured on, and by tests as a secondary oracle surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.analysis.causality import CausalityOracle
from repro.clocks.events import EventKind, EventLog


@dataclass(frozen=True)
class SessionStats:
    """Aggregate causality statistics for one session."""

    n_ops: int
    n_pairs: int
    concurrent_pairs: int
    causal_pairs: int
    concurrency_degree: float  # concurrent / all unordered pairs
    causal_depth: int  # longest happened-before chain (ops)
    ops_per_site: dict[int, int]

    def summary(self) -> str:
        return (
            f"{self.n_ops} ops, concurrency degree "
            f"{self.concurrency_degree:.2f} ({self.concurrent_pairs}/"
            f"{self.n_pairs} pairs), causal depth {self.causal_depth}"
        )


def session_stats(log: EventLog, ops: list[Hashable] | None = None) -> SessionStats:
    """Compute :class:`SessionStats` over ``ops`` (default: originals).

    ``ops`` defaults to every operation generated at a non-notifier site
    (the *original* operations, matching the paper's Section 2.4
    analysis); pass an explicit list to analyse redefined operations.
    """
    if ops is None:
        ops = [
            event.op_id
            for event in log.events
            if event.kind is EventKind.GENERATE and event.site != 0
        ]
    oracle = CausalityOracle(log)
    n = len(ops)
    concurrent = 0
    causal = 0
    chain = nx.DiGraph()
    chain.add_nodes_from(ops)
    for i, a in enumerate(ops):
        for b in ops[i + 1 :]:
            if oracle.concurrent(a, b):
                concurrent += 1
            elif oracle.happened_before(a, b):
                causal += 1
                chain.add_edge(a, b)
            else:
                causal += 1
                chain.add_edge(b, a)
    n_pairs = n * (n - 1) // 2
    depth = nx.dag_longest_path_length(chain) + 1 if n else 0
    per_site: dict[int, int] = {}
    for event in log.events:
        if event.kind is EventKind.GENERATE and event.op_id in set(ops):
            per_site[event.site] = per_site.get(event.site, 0) + 1
    return SessionStats(
        n_ops=n,
        n_pairs=n_pairs,
        concurrent_pairs=concurrent,
        causal_pairs=causal,
        concurrency_degree=concurrent / n_pairs if n_pairs else 0.0,
        causal_depth=depth,
        ops_per_site=per_site,
    )


@dataclass(frozen=True)
class TransformPressure:
    """How much transformation work a session generated."""

    total_remote_executions: int
    total_transform_steps: int  # pairwise IT applications
    max_concurrent_set: int

    @property
    def mean_concurrent_set(self) -> float:
        if self.total_remote_executions == 0:
            return 0.0
        return self.total_transform_steps / self.total_remote_executions


def transform_pressure(session) -> TransformPressure:
    """Measure transformation pressure from a finished star session.

    Derived from the recorded concurrency checks: each *true* verdict is
    one pairwise transformation the receiver performed.
    """
    remote_executions = 0
    steps = 0
    max_set = 0
    by_event: dict[tuple[int, str], int] = {}
    for record in session.all_checks():
        key = (record.site, record.new_op_id)
        by_event.setdefault(key, 0)
        if record.verdict:
            by_event[key] += 1
    for (site, _), count in by_event.items():
        del site
        remote_executions += 1
        steps += count
        max_set = max(max_set, count)
    return TransformPressure(
        total_remote_executions=remote_executions,
        total_transform_steps=steps,
        max_concurrent_set=max_set,
    )
