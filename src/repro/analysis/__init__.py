"""Verification oracles: causality ground truth and consistency checks."""

from repro.analysis.causality import CausalityOracle
from repro.analysis.consistency import (
    DivergenceReport,
    check_divergence,
    intention_preserved_pair,
)

__all__ = [
    "CausalityOracle",
    "DivergenceReport",
    "check_divergence",
    "intention_preserved_pair",
]
