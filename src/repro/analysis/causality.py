"""Ground-truth causality oracle (paper Definitions 1 and 2).

Builds the happened-before relation over operations two independent
ways and cross-checks them:

* **vector clocks**: generation-event clocks from the
  :class:`repro.clocks.events.EventLog` compared with the standard
  partial order;
* **explicit DAG**: a networkx digraph with one node per event,
  program-order edges within each site and an edge from every execution
  of an operation to the next event at that site (Definition 1 case 2
  is then graph reachability from ``generate(O_a)`` to
  ``generate(O_b)``).

The compressed scheme's verdicts are validated against this oracle in
the integration and property tests; disagreement between the two oracle
constructions themselves fails loudly (:class:`OracleInconsistency`).
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.clocks.events import Event, EventKind, EventLog
from repro.clocks.vector import Ordering, compare


class OracleInconsistency(AssertionError):
    """The two independent ground-truth constructions disagree."""


class CausalityOracle:
    """Answers happened-before / concurrency queries over an event log."""

    def __init__(self, log: EventLog) -> None:
        self.log = log
        self.graph = self._build_graph(log)
        self._reachable = self._transitive_reachability(self.graph)
        self._generation_event: dict[Hashable, Event] = {
            event.op_id: event
            for event in log.events
            if event.kind is EventKind.GENERATE
        }

    @staticmethod
    def _build_graph(log: EventLog) -> "nx.DiGraph":
        graph = nx.DiGraph()
        last_at_site: dict[int, Event] = {}
        for event in log.events:
            graph.add_node(event)
            # Program order within a site.
            previous = last_at_site.get(event.site)
            if previous is not None:
                graph.add_edge(previous, event)
            last_at_site[event.site] = event
            # A (remote) execution depends on the operation's generation.
            if event.kind is EventKind.EXECUTE:
                gen = next(
                    e
                    for e in log.events
                    if e.kind is EventKind.GENERATE and e.op_id == event.op_id
                )
                if gen is not event:
                    graph.add_edge(gen, event)
        return graph

    @staticmethod
    def _transitive_reachability(graph: "nx.DiGraph") -> dict[Event, set[Event]]:
        order = list(nx.topological_sort(graph))
        reachable: dict[Event, set[Event]] = {node: set() for node in order}
        for node in reversed(order):
            for succ in graph.successors(node):
                reachable[node].add(succ)
                reachable[node] |= reachable[succ]
        return reachable

    # -- queries over operations ----------------------------------------------

    def happened_before(self, op_a: Hashable, op_b: Hashable) -> bool:
        """Definition 1: ``O_a -> O_b``.

        Computed by DAG reachability from ``generate(O_a)`` to
        ``generate(O_b)`` and cross-checked against vector clocks.
        """
        gen_a = self._generation_event[op_a]
        gen_b = self._generation_event[op_b]
        dag_answer = gen_b in self._reachable[gen_a]
        vc_answer = (
            compare(self.log.clocks[gen_a], self.log.clocks[gen_b]) is Ordering.BEFORE
        )
        if dag_answer != vc_answer:
            raise OracleInconsistency(
                f"DAG says {op_a} -> {op_b} is {dag_answer}, vector clocks say "
                f"{vc_answer}"
            )
        return dag_answer

    def concurrent(self, op_a: Hashable, op_b: Hashable) -> bool:
        """Definition 2: ``O_a || O_b``."""
        if op_a == op_b:
            return False
        return not self.happened_before(op_a, op_b) and not self.happened_before(
            op_b, op_a
        )

    def causal_pairs(self) -> set[tuple[Hashable, Hashable]]:
        """All ordered pairs ``(a, b)`` with ``a -> b``."""
        ops = list(self._generation_event)
        return {
            (a, b)
            for a in ops
            for b in ops
            if a != b and self.happened_before(a, b)
        }

    def concurrent_pairs(self) -> set[frozenset]:
        """All unordered concurrent pairs."""
        ops = list(self._generation_event)
        out = set()
        for i, a in enumerate(ops):
            for b in ops[i + 1 :]:
                if self.concurrent(a, b):
                    out.add(frozenset((a, b)))
        return out
