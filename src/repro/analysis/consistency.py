"""Consistency checkers: divergence and intention violation (Section 2.2).

The paper names two inconsistency problems for replicated editors:

* **divergence** -- sites end in different final states because
  operations executed in different orders;
* **intention violation** -- an operation's effect at execution time
  differs from its intention at generation time (the "A12B" vs "A1DE"
  example), which *no* serialisation protocol can fix.

:func:`check_divergence` reports the first; for the second we provide a
pairwise checker used by the FIG2 experiment: given two concurrent
operations and the state they were both generated on, the
intention-preserved result is computed by symmetric transformation and
compared with naive double execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.ot.operations import Operation
from repro.ot.transform import transform_pair


@dataclass(frozen=True)
class DivergenceReport:
    """Outcome of a divergence check over final site states."""

    diverged: bool
    distinct_states: tuple[Any, ...]
    site_states: tuple[Any, ...]

    def summary(self) -> str:
        if not self.diverged:
            return f"CONVERGED: all {len(self.site_states)} sites agree"
        return (
            f"DIVERGED: {len(self.distinct_states)} distinct final states across "
            f"{len(self.site_states)} sites"
        )


def check_divergence(site_states: Sequence[Any]) -> DivergenceReport:
    """Compare the final states of all sites."""
    if not site_states:
        raise ValueError("need at least one site state")
    distinct: list[Any] = []
    for state in site_states:
        if state not in distinct:
            distinct.append(state)
    return DivergenceReport(
        diverged=len(distinct) > 1,
        distinct_states=tuple(distinct),
        site_states=tuple(site_states),
    )


@dataclass(frozen=True)
class IntentionCheck:
    """Result of a pairwise intention-preservation check."""

    preserved_result: str
    naive_results: tuple[str, str]  # (a-then-b, b-then-a), untransformed
    naive_violates: bool


def intention_preserved_pair(
    document: str, op_a: Operation, op_b: Operation, a_priority: bool = True
) -> IntentionCheck:
    """Compare transformed vs naive execution of two concurrent operations.

    ``op_a`` and ``op_b`` must both be defined on ``document``.  The
    intention-preserved result applies symmetric transformation; the
    naive results execute the original forms in both orders (the paper's
    Fig. 2 failure mode).
    """
    a_prime, b_prime = transform_pair(op_a, op_b, a_priority)
    preserved = b_prime.apply(op_a.apply(document))
    preserved_other = a_prime.apply(op_b.apply(document))
    if preserved != preserved_other:
        raise AssertionError(
            "TP1 violated in intention check: "
            f"{preserved!r} != {preserved_other!r}"
        )

    def naive(first: Operation, second: Operation) -> str:
        try:
            return second.apply(first.apply(document))
        except Exception:
            return "<inapplicable>"

    naive_ab = naive(op_a, op_b)
    naive_ba = naive(op_b, op_a)
    return IntentionCheck(
        preserved_result=preserved,
        naive_results=(naive_ab, naive_ba),
        naive_violates=naive_ab != preserved or naive_ba != preserved,
    )
