"""Command-line interface: ``python -m repro <command>``.

Subcommands regenerate the paper's artefacts and run ad-hoc sessions
without writing any code:

* ``fig1`` -- render the star topology (paper Fig. 1);
* ``fig2`` -- run the inconsistency scenario without transformation;
* ``fig3`` -- run the Section 5 walkthrough and print every timestamp
  and concurrency verdict;
* ``overhead`` -- the CLAIM-OVH timestamp-bytes table;
* ``memory`` -- the CLAIM-MEM storage table;
* ``session`` -- a random N-user editing session with convergence and
  wire statistics (star or mesh architecture);
* ``trace`` -- run a traced star session (optionally under faults),
  write JSONL + Chrome ``trace_event`` artefacts, and cross-check the
  trace-derived happens-before relation against the ground-truth
  oracle;
* ``bench`` -- run the declared benchmark scenario matrix with the
  hot-path phase profiler attached, write a versioned
  ``BENCH_<label>.json`` artifact, and (with ``--compare``) diff it
  against a baseline artifact as a regression gate;
* ``serve`` -- run the star notifier as a real process behind a TCP
  accept loop (wall-clock scheduler, length-prefixed wire frames);
* ``client`` -- run one star client process that dials a notifier and
  replays its slice of the seeded workload over the socket;
* ``cluster`` -- launch a notifier + N client subprocesses on
  localhost, gather their per-process trace artifacts, and run the
  convergence + causality cross-checks on the merged trace;
* ``monitor`` -- tail the live telemetry streams a cluster run writes
  (``--telemetry-interval``) and aggregate them across processes into
  one status line per interval plus a JSONL artifact.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Sequence

from repro.analysis.consistency import check_divergence
from repro.editor import MeshSession, StarSession
from repro.metrics.accounting import memory_comparison, overhead_sweep
from repro.net.channel import JitterLatency
from repro.viz.spacetime import render_star_topology
from repro.workloads.random_session import (
    RandomSessionConfig,
    drive_mesh_session,
    drive_star_session,
)
from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    fig3_script,
    fig_latency_factory,
)


def _run_scripted(transform: bool) -> StarSession:
    session = StarSession(
        n_sites=3,
        initial_state=FIG2_INITIAL_DOCUMENT,
        latency_factory=fig_latency_factory,
        transform_enabled=transform,
    )
    for item in fig3_script():
        session.generate_at(item.site, item.op, item.time, op_id=item.op_id)
    session.run()
    return session


def cmd_fig1(args: argparse.Namespace) -> int:
    print(render_star_topology(args.clients))
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    del args
    session = _run_scripted(transform=False)
    print(f"initial document: {FIG2_INITIAL_DOCUMENT!r}")
    for site, doc in enumerate(session.documents()):
        print(f"site {site} final: {doc!r}")
    report = check_divergence(session.documents())
    print(report.summary())
    return 1 if report.diverged else 0  # divergence is the expected outcome


def cmd_fig3(args: argparse.Namespace) -> int:
    del args
    session = _run_scripted(transform=True)
    print(f"initial document: {FIG2_INITIAL_DOCUMENT!r}\n")
    print("notifier broadcasts:")
    for op_id, dest, ts in session.notifier.broadcast_log:
        print(f"  {op_id} -> site {dest}  {ts!r}")
    print("\nbuffered operations at site 0:")
    for entry in session.notifier.hb:
        print(f"  {entry.op_id}  {entry.timestamp!r}")
    print("\nconcurrency verdicts:")
    for record in session.all_checks():
        relation = "||" if record.verdict else "->-ordered-with"
        print(f"  site {record.site}: {record.new_op_id} {relation} {record.buffered_op_id}")
    print()
    for site, doc in enumerate(session.documents()):
        print(f"site {site} final: {doc!r}")
    if not session.converged():
        print("ERROR: replicas diverged", file=sys.stderr)
        return 1
    print("all replicas converged")
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    rows = overhead_sweep(args.sizes, seed=args.seed, messages=args.messages)
    print("     N |  full VC B | lamport |  SK local  |  SK uniform | compressed")
    for row in rows:
        print(row.as_row())
    return 0


def cmd_memory(args: argparse.Namespace) -> int:
    rows = memory_comparison(args.sizes)
    print("     N | full VC ints | SK ints  | CVC client  | CVC notifier")
    for row in rows:
        print(row.as_row())
    return 0


def _parse_crash(spec: str):
    """Parse a ``site:at:restart_at`` crash specification."""
    from repro.net.faults import ClientCrash

    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"crash spec must be site:at:restart_at, got {spec!r}"
        )
    try:
        return ClientCrash(site=int(parts[0]), at=float(parts[1]), restart_at=float(parts[2]))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_outage(spec: str):
    """Parse a ``start:end`` outage window."""
    parts = spec.split(":")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(f"outage spec must be start:end, got {spec!r}")
    return (float(parts[0]), float(parts[1]))


def _build_fault_plan(args: argparse.Namespace):
    from repro.net.faults import ChannelFaults, FaultPlan, NotifierCrash

    if not (
        args.faults
        or args.drop
        or args.dup
        or args.crash
        or args.outage
        or args.crash_notifier is not None
    ):
        return None
    return FaultPlan(
        seed=args.seed,
        default=ChannelFaults(
            drop_p=args.drop,
            dup_p=args.dup,
            outages=tuple(args.outage or ()),
        ),
        crashes=tuple(args.crash or ()),
        notifier_crash=(
            NotifierCrash(at=args.crash_notifier)
            if args.crash_notifier is not None
            else None
        ),
    )


def cmd_session(args: argparse.Namespace) -> int:
    config = RandomSessionConfig(
        n_sites=args.sites,
        ops_per_site=args.ops,
        seed=args.seed,
        insert_ratio=args.insert_ratio,
    )

    def latency_factory(src: int, dst: int):
        return JitterLatency(0.08, 0.6, random.Random(args.seed * 97 + src * 11 + dst))

    try:
        fault_plan = _build_fault_plan(args)
    except ValueError as exc:
        print(f"invalid fault plan: {exc}", file=sys.stderr)
        return 2
    if args.arch == "star":
        try:
            session = StarSession(
                args.sites,
                initial_state=config.initial_document,
                latency_factory=latency_factory,
                verify_with_oracle=args.verify,
                fault_plan=fault_plan,
                standby_site=args.standby,
            )
        except (ValueError, IndexError) as exc:
            print(f"invalid fault plan: {exc}", file=sys.stderr)
            return 2
        drive_star_session(session, config)
    else:
        if fault_plan is not None:
            print("fault injection is only supported for --arch star", file=sys.stderr)
            return 2
        session = MeshSession(
            args.sites,
            initial_document=config.initial_document,
            latency_factory=latency_factory,
        )
        drive_mesh_session(session, config)
    session.run()
    stats = session.wire_stats()
    converged = session.converged()
    print(f"architecture     : {args.arch}")
    print(f"sites x ops      : {args.sites} x {args.ops}")
    print(f"converged        : {converged}")
    docs = session.documents()
    print(f"final document   : {docs[0]!r}")
    print(f"messages         : {stats.messages}")
    print(
        f"timestamp bytes  : {stats.timestamp_bytes} "
        f"({stats.timestamp_bytes / max(stats.messages, 1):.1f}/message)"
    )
    print(f"total wire bytes : {stats.total_bytes}")
    if fault_plan is not None:
        print(f"fifo respected   : {session.topology.fifo_respected()}")
        print(f"in-order release : {session.reliable_delivery_in_order()}")
        print(session.fault_report().summary())
    return 0 if converged else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        TraceCausality,
        Tracer,
        cross_check_causality,
        latency_histograms,
        released_without_cause,
        verify_check_records,
        write_chrome_trace,
        write_jsonl,
    )

    config = RandomSessionConfig(
        n_sites=args.sites,
        ops_per_site=args.ops,
        seed=args.seed,
        insert_ratio=args.insert_ratio,
    )

    def latency_factory(src: int, dst: int):
        return JitterLatency(0.08, 0.6, random.Random(args.seed * 97 + src * 11 + dst))

    # Unlike ``session``, ``trace`` has nonzero --drop/--dup defaults
    # (so bare ``--faults`` means a genuinely lossy network); faults are
    # therefore keyed on the explicit flags only.
    try:
        if args.faults or args.crash or args.outage or args.crash_notifier is not None:
            fault_plan = _build_fault_plan(args)
        else:
            fault_plan = None
    except ValueError as exc:
        print(f"invalid fault plan: {exc}", file=sys.stderr)
        return 2
    tracer = Tracer()
    try:
        session = StarSession(
            args.sites,
            initial_state=config.initial_document,
            latency_factory=latency_factory,
            verify_with_oracle=True,
            fault_plan=fault_plan,
            tracer=tracer,
            standby_site=args.standby,
        )
    except (ValueError, IndexError) as exc:
        print(f"invalid fault plan: {exc}", file=sys.stderr)
        return 2
    drive_star_session(session, config)
    session.run()
    converged = session.converged()

    jsonl_path = f"{args.out}.jsonl"
    chrome_path = f"{args.out}.chrome.json"
    header = {
        "sites": args.sites,
        "ops_per_site": args.ops,
        "seed": args.seed,
        "faulty": fault_plan is not None,
    }
    with open(jsonl_path, "w", encoding="utf-8") as fh:
        jsonl_lines = write_jsonl(tracer.events, fh, header=header)
    with open(chrome_path, "w", encoding="utf-8") as fh:
        chrome_records = write_chrome_trace(tracer.events, fh)

    causality = TraceCausality(tracer.events)
    report = cross_check_causality(causality, session.event_log)
    disagreements = verify_check_records(causality, session.all_checks())
    bad_releases = released_without_cause(tracer.events)
    histograms = latency_histograms(tracer.events, metrics=tracer.metrics)

    print(f"sites x ops      : {args.sites} x {args.ops}")
    print(f"converged        : {converged}")
    print(f"trace events     : {len(tracer.events)}")
    print(f"jsonl artefact   : {jsonl_path} ({jsonl_lines} lines)")
    print(f"chrome artefact  : {chrome_path} ({chrome_records} records)")
    print()
    print("event counts:")
    print(tracer.metrics.summary())
    print()
    print(report.summary())
    if fault_plan is not None:
        print()
        print(session.fault_report().summary())
    print(f"formula (5)/(7) verdicts vs trace: {len(disagreements)} disagreements")
    print(f"releases without a cause: {len(bad_releases)}")
    print()
    print("generation -> execution latency (virtual time):")
    for site in sorted(histograms):
        print(f"  site {site}: {histograms[site].summary()}")
    if args.diagram:
        from repro.viz.spacetime import diagram_events_from_trace, render_spacetime

        print()
        print(
            render_spacetime(
                args.sites + 1, diagram_events_from_trace(tracer.events)
            )
        )
    ok = converged and report.ok and not disagreements and not bad_releases
    if not ok:
        print("TRACE CHECK FAILED", file=sys.stderr)
    return 0 if ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench

    if args.compare is not None and len(args.compare) > 2:
        print("--compare takes one or two artifact paths", file=sys.stderr)
        return 2
    # Diff-only mode: two existing artifacts, no scenario runs.
    if args.compare is not None and len(args.compare) == 2:
        try:
            baseline = bench.read_artifact(args.compare[0])
            current = bench.read_artifact(args.compare[1])
        except (OSError, ValueError) as exc:
            print(f"cannot read bench artifact: {exc}", file=sys.stderr)
            return 2
        report = bench.compare_artifacts(
            baseline,
            current,
            warn_pct=args.warn_threshold,
            fail_pct=args.fail_threshold,
            gate_wall=args.gate_wall,
        )
        print(report.summary())
        return report.exit_code

    scenarios = bench.matrix(full=args.full)
    if args.scenario:
        wanted = set(args.scenario)
        unknown = wanted - {s.id for s in scenarios}
        if unknown:
            print(f"unknown scenario ids: {sorted(unknown)}", file=sys.stderr)
            return 2
        scenarios = tuple(s for s in scenarios if s.id in wanted)
    doc = bench.run_matrix(
        scenarios,
        label=args.label,
        quick=not args.full,
        cprofile_top=args.cprofile_top,
        progress=print,
    )
    out_path = f"{args.out_dir.rstrip('/')}/BENCH_{args.label}.json"
    bench.write_artifact(out_path, doc)
    print(f"wrote {out_path} ({len(doc['scenarios'])} scenarios, rev {doc['git_rev']})")
    for record in doc["scenarios"]:
        lat = record["latency"]["p95"]
        print(
            f"  {record['id']:<20} ops/s={record['ops_per_sec']:>10.0f} "
            f"p95={'n/a' if lat is None else format(lat, '.3f')} "
            f"converged={record['converged']}"
        )
    if args.compare:
        try:
            baseline = bench.read_artifact(args.compare[0])
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline artifact: {exc}", file=sys.stderr)
            return 2
        report = bench.compare_artifacts(
            baseline,
            doc,
            warn_pct=args.warn_threshold,
            fail_pct=args.fail_threshold,
            gate_wall=args.gate_wall,
        )
        print()
        print(report.summary())
        return report.exit_code
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.cluster.harness import config_from_args
    from repro.cluster.serve import serve

    ok = asyncio.run(serve(config_from_args(args), Path(args.out)))
    return 0 if ok else 1


def cmd_client(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.cluster.client import run_client
    from repro.cluster.harness import config_from_args

    ok = asyncio.run(
        run_client(config_from_args(args), args.site, args.port, Path(args.out))
    )
    return 0 if ok else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.cluster import ClusterConfig, run_cluster
    from repro.cluster.driver import ClusterError

    try:
        config = ClusterConfig(
            clients=args.clients,
            ops_per_client=3 if args.quick else args.ops,
            seed=args.seed,
            time_scale=args.time_scale,
            reliability=args.reliability,
            settle_s=args.settle,
            timeout_s=min(args.timeout, 20.0) if args.quick else args.timeout,
            telemetry_interval_s=args.telemetry_interval,
            crash_notifier_after_s=args.crash_notifier_after,
            failover=not args.no_failover,
            degraded_limit=args.degraded_limit,
            beacon_port=args.beacon_port,
        )
    except ValueError as exc:
        print(f"invalid cluster config: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    if out_dir is None and config.telemetry_enabled:
        # Telemetry consumers (``repro monitor``, CI artifact upload)
        # need a knowable directory even when the caller gave none.
        out_dir = Path(tempfile.mkdtemp(prefix="repro_cluster_"))
        print(f"telemetry artifacts: {out_dir}")

    def final_monitor_pass() -> None:
        """Aggregate whatever telemetry the run left into monitor.jsonl."""
        if not config.telemetry_enabled or out_dir is None:
            return
        from repro.obs.monitor import run_monitor

        run_monitor(out_dir, once=True, expect_sites=config.clients + 1)

    try:
        report = run_cluster(config, out_dir)
    except ClusterError as exc:
        print(f"cluster harness failed: {exc}", file=sys.stderr)
        final_monitor_pass()
        return 1
    final_monitor_pass()
    print(report.summary())
    return 0 if report.ok else 1


def cmd_monitor(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.monitor import run_monitor

    return run_monitor(
        Path(args.dir),
        interval_s=args.interval,
        duration_s=args.duration,
        once=args.once,
        expect_sites=args.expect_sites,
        artifact=Path(args.artifact) if args.artifact else None,
        follow=args.follow,
        max_intervals=args.max_intervals,
        beacon_port=args.beacon_port,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compressed vector clocks for real-time group editors "
        "(Sun & Cai, IPPS 2002) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("fig1", help="render the star topology (Fig. 1)")
    p_fig1.add_argument("--clients", type=int, default=4)
    p_fig1.set_defaults(func=cmd_fig1)

    p_fig2 = sub.add_parser("fig2", help="inconsistency scenario, transformation off")
    p_fig2.set_defaults(func=cmd_fig2)

    p_fig3 = sub.add_parser("fig3", help="the Section 5 walkthrough")
    p_fig3.set_defaults(func=cmd_fig3)

    p_ovh = sub.add_parser("overhead", help="timestamp overhead table (CLAIM-OVH)")
    p_ovh.add_argument("--sizes", type=int, nargs="+", default=[2, 8, 32, 128, 512])
    p_ovh.add_argument("--seed", type=int, default=0)
    p_ovh.add_argument("--messages", type=int, default=400)
    p_ovh.set_defaults(func=cmd_overhead)

    p_mem = sub.add_parser("memory", help="clock storage table (CLAIM-MEM)")
    p_mem.add_argument("--sizes", type=int, nargs="+", default=[2, 8, 32, 128, 512])
    p_mem.set_defaults(func=cmd_memory)

    p_sess = sub.add_parser("session", help="run a random editing session")
    p_sess.add_argument("--arch", choices=["star", "mesh"], default="star")
    p_sess.add_argument("--sites", type=int, default=4)
    p_sess.add_argument("--ops", type=int, default=6)
    p_sess.add_argument("--seed", type=int, default=0)
    p_sess.add_argument("--insert-ratio", type=float, default=0.7)
    p_sess.add_argument(
        "--verify",
        action="store_true",
        help="verify every concurrency verdict against full vector clocks",
    )
    p_sess.add_argument(
        "--faults",
        action="store_true",
        help="run under a fault plan (enables the reliability protocol; "
        "combine with --drop/--dup/--crash/--outage)",
    )
    p_sess.add_argument(
        "--drop", type=float, default=0.0, help="per-message drop probability"
    )
    p_sess.add_argument(
        "--dup", type=float, default=0.0, help="per-message duplication probability"
    )
    p_sess.add_argument(
        "--crash",
        type=_parse_crash,
        action="append",
        metavar="SITE:AT:RESTART_AT",
        help="crash a client at AT, restart at RESTART_AT (repeatable)",
    )
    p_sess.add_argument(
        "--outage",
        type=_parse_outage,
        action="append",
        metavar="START:END",
        help="burst outage window on every channel (repeatable)",
    )
    p_sess.add_argument(
        "--crash-notifier",
        type=float,
        default=None,
        metavar="AT",
        help="crash the notifier at virtual time AT; a surviving client "
        "is elected and promoted to the centre role",
    )
    p_sess.add_argument(
        "--standby",
        type=int,
        default=None,
        metavar="SITE",
        help="warm-standby site preferred as failover successor "
        "(requires a fault plan; default: lowest live site id)",
    )
    p_sess.set_defaults(func=cmd_session)

    p_trace = sub.add_parser(
        "trace",
        help="run a traced star session, write JSONL + Chrome trace "
        "artefacts, cross-check happens-before against the oracle",
    )
    p_trace.add_argument("--sites", type=int, default=4)
    p_trace.add_argument("--ops", type=int, default=6)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--insert-ratio", type=float, default=0.7)
    p_trace.add_argument(
        "--faults",
        action="store_true",
        help="run under a fault plan (enables the reliability protocol; "
        "defaults to --drop 0.05 --dup 0.02, combine with "
        "--drop/--dup/--crash/--outage)",
    )
    p_trace.add_argument(
        "--drop", type=float, default=0.05, help="per-message drop probability"
    )
    p_trace.add_argument(
        "--dup", type=float, default=0.02, help="per-message duplication probability"
    )
    p_trace.add_argument(
        "--crash",
        type=_parse_crash,
        action="append",
        metavar="SITE:AT:RESTART_AT",
        help="crash a client at AT, restart at RESTART_AT (repeatable)",
    )
    p_trace.add_argument(
        "--outage",
        type=_parse_outage,
        action="append",
        metavar="START:END",
        help="burst outage window on every channel (repeatable)",
    )
    p_trace.add_argument(
        "--crash-notifier",
        type=float,
        default=None,
        metavar="AT",
        help="crash the notifier at virtual time AT; a surviving client "
        "is elected and promoted to the centre role",
    )
    p_trace.add_argument(
        "--standby",
        type=int,
        default=None,
        metavar="SITE",
        help="warm-standby site preferred as failover successor "
        "(requires a fault plan; default: lowest live site id)",
    )
    p_trace.add_argument(
        "--out", default="trace", help="artefact path prefix (default: trace)"
    )
    p_trace.add_argument(
        "--diagram",
        action="store_true",
        help="also print a Fig. 2/3-style space-time diagram of the trace",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark scenario matrix, write BENCH_<label>.json, "
        "optionally gate against a baseline artifact",
    )
    scope = p_bench.add_mutually_exclusive_group()
    scope.add_argument(
        "--quick", action="store_true", help="the CI-sized matrix (default)"
    )
    scope.add_argument(
        "--full", action="store_true", help="the extended matrix (all clock families)"
    )
    p_bench.add_argument("--label", default="local", help="artifact label (default: local)")
    p_bench.add_argument(
        "--out-dir", default=".", help="directory for BENCH_<label>.json (default: .)"
    )
    p_bench.add_argument(
        "--scenario",
        action="append",
        metavar="ID",
        help="run only this scenario id (repeatable)",
    )
    p_bench.add_argument(
        "--cprofile-top",
        type=int,
        default=0,
        metavar="N",
        help="also capture the top N functions by cumulative time (cProfile)",
    )
    p_bench.add_argument(
        "--compare",
        nargs="+",
        metavar="ARTIFACT",
        help="one path: run the matrix, then gate against that baseline; "
        "two paths: diff the two artifacts without running anything",
    )
    p_bench.add_argument(
        "--warn-threshold",
        type=float,
        default=0.10,
        help="relative delta above which a metric warns (exit 2; default 0.10)",
    )
    p_bench.add_argument(
        "--fail-threshold",
        type=float,
        default=0.25,
        help="relative delta above which a metric fails (exit 1; default 0.25)",
    )
    p_bench.add_argument(
        "--gate-wall",
        action="store_true",
        help="also gate wall-clock throughput (machine-dependent; off by default)",
    )
    p_bench.set_defaults(func=cmd_bench)

    from repro.cluster.harness import add_common_args

    p_serve = sub.add_parser(
        "serve", help="run the star notifier as a TCP server process"
    )
    add_common_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client", help="run one star client process against a notifier"
    )
    add_common_args(p_client)
    p_client.add_argument("--site", type=int, required=True)
    p_client.add_argument("--port", type=int, required=True)
    p_client.set_defaults(func=cmd_client)

    p_cluster = sub.add_parser(
        "cluster",
        help="launch a notifier + N client subprocesses on localhost and "
        "verify convergence + causality over the merged trace",
    )
    p_cluster.add_argument("--clients", type=int, default=3)
    p_cluster.add_argument("--ops", type=int, default=5)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument("--time-scale", type=float, default=0.05)
    p_cluster.add_argument("--settle", type=float, default=0.3)
    p_cluster.add_argument("--timeout", type=float, default=30.0)
    p_cluster.add_argument("--reliability", action="store_true")
    p_cluster.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: 3 ops per client, tight timeout",
    )
    p_cluster.add_argument(
        "--telemetry-interval",
        type=float,
        default=0.0,
        metavar="S",
        help="sample live telemetry every S seconds in every process "
        "(0 = off); streams land next to the other artifacts for "
        "``repro monitor``",
    )
    p_cluster.add_argument(
        "--crash-notifier-after",
        type=float,
        default=None,
        metavar="S",
        help="fault injection: hard-kill the notifier process after S "
        "seconds (it dumps its flight recorder first); with failover "
        "on, the surviving clients re-elect and the run still converges",
    )
    p_cluster.add_argument(
        "--no-failover",
        action="store_true",
        help="disable live failover: clients open no listening sockets "
        "and a notifier crash is terminal (flight recorders + salvage)",
    )
    p_cluster.add_argument(
        "--degraded-limit",
        type=int,
        default=64,
        metavar="N",
        help="max local edits each client queues while the star is "
        "leaderless during failover (0 = drop them; default 64)",
    )
    p_cluster.add_argument(
        "--beacon-port",
        type=int,
        default=None,
        metavar="PORT",
        help="UDP telemetry sideband: every process also fires its frames "
        "as datagrams at this port (pair with ``repro monitor "
        "--beacon-port``); needs --telemetry-interval",
    )
    p_cluster.add_argument(
        "--out",
        default=None,
        help="artifact directory (default: a kept temporary directory)",
    )
    p_cluster.set_defaults(func=cmd_cluster)

    p_monitor = sub.add_parser(
        "monitor",
        help="aggregate the live telemetry streams of a cluster run "
        "(one status line per interval + a JSONL artifact)",
    )
    p_monitor.add_argument(
        "--dir", required=True,
        help="the cluster artifact directory holding telemetry_<site>.jsonl",
    )
    p_monitor.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="seconds between aggregation passes (default 1.0)",
    )
    p_monitor.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="stop after S seconds (default: stop when streams go idle)",
    )
    p_monitor.add_argument(
        "--once", action="store_true",
        help="one aggregation pass over what is on disk, then exit",
    )
    p_monitor.add_argument(
        "--expect-sites", type=int, default=None, metavar="N",
        help="total sites expected (notifier + clients), for the "
        "sites=K/N column",
    )
    p_monitor.add_argument(
        "--artifact", default=None,
        help="final JSONL artifact path (default: DIR/monitor.jsonl)",
    )
    p_monitor.add_argument(
        "--follow", action="store_true",
        help="live dashboard: one sparkline row per site on a TTY, "
        "deterministic plain lines when piped",
    )
    p_monitor.add_argument(
        "--max-intervals", type=int, default=None, metavar="N",
        help="stop after N aggregation rounds (CI smoke bound)",
    )
    p_monitor.add_argument(
        "--beacon-port", type=int, default=None, metavar="PORT",
        help="also listen for UDP telemetry datagrams on this port "
        "(the sideband cluster processes fire with --beacon-port)",
    )
    p_monitor.set_defaults(func=cmd_monitor)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
