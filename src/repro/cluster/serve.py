"""The notifier process: site 0 of the star, behind a TCP accept loop.

``python -m repro serve --clients N --out DIR`` binds an ephemeral port
(port 0 -- the kernel picks, so parallel CI runs cannot collide),
prints ``LISTENING <port>`` on stdout for the driver to parse, and
serves the paper's notifier role to ``N`` dialing clients.  The editor
object is the stock :class:`~repro.editor.star_notifier.StarNotifier`;
the only cluster-specific code is the socket plumbing around it.

Termination: the run is complete when the notifier has executed every
expected operation *and* every client has disconnected (each client
hangs up only after converging, so EOF doubles as the client's
completion signal).  A hard timeout bounds the wait; on expiry the
artifacts are written with ``timed_out`` set so the driver fails the
run instead of diagnosing a hang.
"""

from __future__ import annotations

import argparse
import asyncio
from pathlib import Path
from typing import Optional

from repro.cluster.harness import (
    ClusterConfig,
    add_common_args,
    config_from_args,
    endpoint_result,
    wall_clock_tracer,
    write_artifacts,
)
from repro.editor.star_notifier import StarNotifier
from repro.net.scheduler import AsyncioScheduler
from repro.net.transport import Envelope
from repro.net.wire import WireChannel, WireError, decode_frame, pump, read_frame


async def serve(config: ClusterConfig, out_dir: Path,
                *, on_port: Optional["asyncio.Future[int]"] = None) -> bool:
    """Run the notifier process; returns True iff the run completed."""
    sched = AsyncioScheduler()
    tracer = wall_clock_tracer()
    notifier = StarNotifier(
        sched,
        config.clients,
        initial_state=config.initial_document,
        record_checks=True,
        reliability=config.reliability_config(),
        tracer=tracer,
    )
    done = asyncio.Event()
    all_connected = asyncio.Event()
    disconnected: set[int] = set()

    def maybe_done() -> None:
        complete = len(notifier.executed_op_ids) >= config.total_ops
        if complete and len(disconnected) >= config.clients:
            done.set()

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        hello = await read_frame(reader)
        if hello is None:
            writer.close()
            return
        pid = decode_frame(hello)
        if isinstance(pid, Envelope):
            raise WireError("expected a HELLO frame to open the connection")
        notifier.attach_channel(pid, WireChannel(sched, 0, pid, writer))
        if len(notifier.out_channels) >= config.clients:
            all_connected.set()
        # Hold this connection's pump until every client has a channel:
        # executing an early op would broadcast into a not-yet-attached
        # spoke.  TCP buffers whatever the eager client already sent.
        await all_connected.wait()

        def on_envelope(envelope: Envelope) -> None:
            notifier.on_message(envelope)
            maybe_done()

        try:
            await pump(reader, on_envelope)
        except (WireError, ConnectionError):
            pass  # a killed client counts as disconnected, not as a crash here
        finally:
            disconnected.add(pid)
            maybe_done()

    server = await asyncio.start_server(handle, config.host, 0)
    port = server.sockets[0].getsockname()[1]
    if on_port is not None:
        on_port.set_result(port)
    print(f"LISTENING {port}", flush=True)
    timed_out = False
    try:
        await asyncio.wait_for(done.wait(), config.timeout_s)
    except asyncio.TimeoutError:
        timed_out = True
    server.close()
    await server.wait_closed()
    messages = sum(ch.stats.messages for ch in notifier.out_channels.values())
    wire_bytes = sum(ch.stats.total_bytes for ch in notifier.out_channels.values())
    write_artifacts(
        out_dir,
        endpoint_result("notifier", notifier, timed_out=timed_out,
                        messages_sent=messages, wire_bytes=wire_bytes),
        tracer,
    )
    return not timed_out


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve", description="run the star notifier over TCP"
    )
    add_common_args(parser)
    args = parser.parse_args(argv)
    config = config_from_args(args)
    ok = asyncio.run(serve(config, Path(args.out)))
    return 0 if ok else 1
