"""The notifier process: site 0 of the star, behind a TCP accept loop.

``python -m repro serve --clients N --out DIR`` binds an ephemeral port
(port 0 -- the kernel picks, so parallel CI runs cannot collide),
prints ``LISTENING <port>`` on stdout for the driver to parse, and
serves the paper's notifier role to ``N`` dialing clients.  The editor
object is the stock :class:`~repro.editor.star_notifier.StarNotifier`;
the only cluster-specific code is the socket plumbing around it.

Membership: each client's HELLO frame carries the port of its *own*
listening socket (0 when failover is disabled).  Once every client is
connected, the notifier broadcasts the full table as a ROSTER frame --
the directory survivors use to elect and dial a successor if this
process dies (see :mod:`repro.cluster.failover`).

Termination: each client announces the end of its *generation* workload
with a DRAINED frame; TCP FIFO ordering means every operation a client
will ever send has been ingested (and its transforms broadcast) by the
time its DRAINED arrives.  When all clients have drained, the notifier
broadcasts GOODBYE -- again by FIFO, each client has executed every
broadcast by the time it reads the GOODBYE -- and waits for the clients
to hang up.  An EOF *after* GOODBYE is therefore a clean teardown, not
a peer death.  A hard timeout bounds the wait; on expiry the artifacts
are written with ``timed_out`` set so the driver fails the run instead
of diagnosing a hang.

Observability: with ``--telemetry-interval`` the notifier runs a
:class:`~repro.obs.telemetry.TelemetrySampler` on its scheduler,
appending frames to a crash-safe ``telemetry_0.jsonl`` stream, and
ingests the TELEMETRY frames its clients gossip over the wire -- which
makes it the cluster's live watchdog host: retransmit-storm, causal
stall, peer silence, and the digest divergence sentinel all run here,
emitting structured ``health`` records into the same stream.  A
:class:`~repro.obs.telemetry.FlightRecorder` dumps the recent trace
tail to ``flight_0.jsonl`` on the driver's kill-switch (SIGTERM), on
timeout, and on the injected ``--crash-notifier-after`` fault (which
then hard-exits without writing artifacts, like a real crash).  The
trace itself streams to ``trace_0.jsonl`` as events are emitted, so
the injected crash still leaves the generation events the driver's
merged-trace cross-check needs to stay EXACT across a failover.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import time
from pathlib import Path
from typing import Optional

from repro.cluster.harness import (
    ClusterConfig,
    add_common_args,
    config_from_args,
    endpoint_result,
    flight_path,
    streaming_trace_writer,
    telemetry_writer,
    wall_clock_tracer,
    write_artifacts,
)
from repro.editor.star_notifier import StarNotifier
from repro.net.beacon import BeaconSender
from repro.net.scheduler import AsyncioScheduler
from repro.net.transport import Envelope
from repro.net.wire import (
    Drained,
    Hello,
    WireChannel,
    WireError,
    decode_frame,
    encode_goodbye,
    encode_roster,
    encode_telemetry_frame,
    frame,
    pump,
    read_frame,
)
from repro.obs.telemetry import (
    FlightRecorder,
    HealthEvent,
    SilenceWatchdog,
    TelemetryFrame,
    TelemetrySampler,
    default_watchdogs,
    snapshot_endpoint,
)
from repro.obs.tracer import JsonlWriter


async def serve(config: ClusterConfig, out_dir: Path,
                *, on_port: Optional["asyncio.Future[int]"] = None) -> bool:
    """Run the notifier process; returns True iff the run completed."""
    sched = AsyncioScheduler()
    tracer = wall_clock_tracer()
    notifier = StarNotifier(
        sched,
        config.clients,
        initial_state=config.initial_document,
        record_checks=True,
        reliability=config.reliability_config(),
        tracer=tracer,
    )
    # Arm the latency observatory: cluster traces are wall-clock already
    # (the tracer's clock is time.time), so every generated op is
    # stamped with its origin time and span events mark each stage.
    notifier.span_clock = time.time
    recorder = FlightRecorder(tracer)
    trace_stream = streaming_trace_writer(out_dir, 0, "notifier", tracer)
    done = asyncio.Event()
    all_connected = asyncio.Event()
    writers: dict[int, asyncio.StreamWriter] = {}
    listen_ports: dict[int, int] = {}
    drained: set[int] = set()
    disconnected: set[int] = set()
    goodbye_sent = False
    killed = False

    telem: Optional[JsonlWriter] = None
    sampler: Optional[TelemetrySampler] = None
    beacon: Optional[BeaconSender] = None
    if config.telemetry_enabled:
        stream = telemetry_writer(out_dir, 0, "notifier")
        telem = stream
        if config.beacon_port is not None:
            beacon = BeaconSender(config.host, config.beacon_port)
        interval = config.telemetry_interval_s
        watchdogs = default_watchdogs(
            expected_ops=config.total_ops,
            stall_after=max(4 * interval, 1.0),
            storm_threshold=10,
        )
        # Silence is judged by *arrival* time on this process's clock:
        # frame times come from each client's own scheduler epoch, so
        # comparing them across processes would fold clock-domain skew
        # into the verdict.
        watchdogs.append(SilenceWatchdog(
            max_silence=max(6 * interval, 2.0), clock=lambda: sched.now,
        ))

        def probe(seq: int) -> list[TelemetryFrame]:
            return [snapshot_endpoint(notifier, sched=sched, seq=seq,
                                      role="notifier")]

        def emit_frame(tframe: TelemetryFrame) -> None:
            stream.write_line(tframe.to_json())
            if beacon is not None:
                # The UDP sideband carries the same frame bytes as the
                # TCP gossip; the monitor dedupes by (site, seq).
                beacon.send(encode_telemetry_frame(tframe))

        sampler = TelemetrySampler(
            sched, probe, interval=interval,
            on_frame=emit_frame,
            on_health=lambda e: stream.write_line(e.to_json()),
            watchdogs=watchdogs, keep=False,
        )
        sampler.start()

    def maybe_done() -> None:
        # Completion rides on the DRAINED protocol: a client's DRAINED
        # frame (TCP FIFO) proves every op it will ever generate has
        # been ingested and its transforms broadcast.  All clients
        # drained => every broadcast is on the wire => GOODBYE, then
        # wait for the clean EOFs before closing up shop.
        nonlocal goodbye_sent
        if len(drained) >= config.clients and not goodbye_sent:
            goodbye_sent = True
            for w in writers.values():
                try:
                    w.write(frame(encode_goodbye()))
                except (ConnectionError, RuntimeError):
                    pass
        if goodbye_sent and len(disconnected) >= config.clients:
            done.set()

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        hello = await read_frame(reader)
        if hello is None:
            writer.close()
            return
        decoded = decode_frame(hello)
        if not isinstance(decoded, Hello):
            raise WireError("expected a HELLO frame to open the connection")
        pid = decoded.pid
        writers[pid] = writer
        listen_ports[pid] = decoded.listen_port
        notifier.attach_channel(pid, WireChannel(sched, 0, pid, writer))
        if len(notifier.out_channels) >= config.clients:
            # Everyone is here: publish the membership directory before
            # any operation is pumped, so every client holds the roster
            # it would need to elect a successor -- broadcast first,
            # then release the pumps (TCP FIFO puts ROSTER ahead of any
            # DATA broadcast on each spoke).
            for w in writers.values():
                w.write(frame(encode_roster(listen_ports)))
            all_connected.set()
        # Hold this connection's pump until every client has a channel:
        # executing an early op would broadcast into a not-yet-attached
        # spoke.  TCP buffers whatever the eager client already sent.
        await all_connected.wait()

        def on_envelope(envelope: Envelope) -> None:
            notifier.on_message(envelope)

        def on_telemetry(frame: TelemetryFrame) -> None:
            if sampler is not None:
                sampler.feed(frame)

        def on_drained(d: Drained) -> None:
            drained.add(d.site)
            maybe_done()

        try:
            await pump(reader, on_envelope, on_telemetry=on_telemetry,
                       on_drained=on_drained)
        except (WireError, ConnectionError):
            pass  # a killed client counts as disconnected, not as a crash here
        finally:
            disconnected.add(pid)
            maybe_done()

    def dump_flight(reason: str) -> None:
        recorder.dump(flight_path(out_dir, 0), reason=reason, site=0,
                      role="notifier")

    def on_sigterm() -> None:
        # The driver's kill-switch: record the evidence, then let the
        # normal shutdown path write whatever artifacts it still can.
        nonlocal killed
        killed = True
        dump_flight("kill-switch")
        done.set()

    loop = asyncio.get_running_loop()
    sigterm_installed = False
    try:
        loop.add_signal_handler(signal.SIGTERM, on_sigterm)
        sigterm_installed = True
    except (NotImplementedError, ValueError):  # pragma: no cover - non-Unix
        pass

    crash_task: Optional["asyncio.Task[None]"] = None
    if config.crash_notifier_after_s is not None:

        async def crash() -> None:
            assert config.crash_notifier_after_s is not None
            # The timer counts from full connection, not process start:
            # subprocess interpreter startup is hundreds of milliseconds
            # of noise, and a crash before the roster broadcast would
            # test "client can't connect", not "cluster loses its
            # centre mid-run".
            await all_connected.wait()
            await asyncio.sleep(config.crash_notifier_after_s)
            dump_flight("injected-crash")
            if telem is not None:
                # With failover armed this death is survivable -- the
                # monitor should show a warning and then the epoch
                # transition, not a terminal verdict.
                verdict = "warn" if config.failover else "fail"
                detail = ("injected notifier crash (failover armed)"
                          if config.failover else "injected notifier crash")
                telem.write_line(HealthEvent(
                    time=sched.now, site=0, kind="crash", verdict=verdict,
                    detail=detail,
                ).to_json())
                telem.close()
            # A real crash writes no result artifacts: exit without
            # passing go.  The flight recorder, the flushed telemetry
            # stream, and the streamed trace are all that survives --
            # which is the point of having them.
            os._exit(70)

        crash_task = asyncio.ensure_future(crash())

    server = await asyncio.start_server(handle, config.host, 0)
    port = server.sockets[0].getsockname()[1]
    if on_port is not None:
        on_port.set_result(port)
    print(f"LISTENING {port}", flush=True)
    timed_out = False
    try:
        await asyncio.wait_for(done.wait(), config.timeout_s)
    except asyncio.TimeoutError:
        timed_out = True
        dump_flight("timeout")
    if killed:
        timed_out = True
    if crash_task is not None:
        crash_task.cancel()
    if sigterm_installed:
        loop.remove_signal_handler(signal.SIGTERM)
    server.close()
    await server.wait_closed()
    if sampler is not None:
        # One final sample so the stream's last frame carries the final
        # local stats (the monitor's per-site aggregate is exact, not
        # one interval stale).
        sampler.stop()
        sampler.sample()
    if telem is not None:
        telem.close()
    if beacon is not None:
        beacon.close()
    messages = sum(ch.stats.messages for ch in notifier.out_channels.values())
    wire_bytes = sum(ch.stats.total_bytes for ch in notifier.out_channels.values())
    write_artifacts(
        out_dir,
        endpoint_result("notifier", notifier, timed_out=timed_out,
                        messages_sent=messages, wire_bytes=wire_bytes),
        tracer,
        trace_streamed=True,
    )
    trace_stream.close()
    return not timed_out


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve", description="run the star notifier over TCP"
    )
    add_common_args(parser)
    args = parser.parse_args(argv)
    config = config_from_args(args)
    ok = asyncio.run(serve(config, Path(args.out)))
    return 0 if ok else 1
