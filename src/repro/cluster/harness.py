"""Shared plumbing of the cluster processes: config, workload, results.

The driver, the notifier process and every client process must agree on
the workload (so the cluster replays the same seeded edit schedule the
simulator benchmarks use) and on the artifact format (so the driver can
merge what the processes wrote).  This module is that contract.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.editor.star_client import StarClient
from repro.editor.star_notifier import StarNotifier
from repro.net.reliability import ReliabilityConfig
from repro.obs.telemetry import TELEMETRY_FORMAT, TELEMETRY_SCHEMA_VERSION
from repro.obs.tracer import (
    JsonlWriter,
    TraceEvent,
    Tracer,
    read_jsonl,
    trace_header,
    write_jsonl,
)
from repro.session.base import CheckRecord
from repro.workloads.random_session import RandomSessionConfig

DEFAULT_DOCUMENT = "The quick brown fox jumps over the lazy dog."


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster run: the workload and the wall-clock envelope.

    ``time_scale`` maps the workload's virtual think-time units onto
    wall seconds (the simulator schedules think times of ~0.4 units;
    at the default scale a quick run finishes in a couple of seconds of
    wall time).  ``settle_s`` is drained after the last expected
    execution so in-flight acknowledgements and trace writes land
    before the sockets close.  ``timeout_s`` is each process's hard
    bound: on expiry it writes its artifacts with ``timed_out`` set
    rather than hanging the harness.
    """

    clients: int = 3
    ops_per_client: int = 5
    seed: int = 0
    initial_document: str = DEFAULT_DOCUMENT
    time_scale: float = 0.05
    reliability: bool = False
    host: str = "127.0.0.1"
    settle_s: float = 0.3
    timeout_s: float = 30.0
    #: Wall seconds between telemetry samples; 0 disables telemetry.
    telemetry_interval_s: float = 0.0
    #: Fault injection: hard-kill the notifier process (after a
    #: flight-recorder dump) this many wall seconds after every client
    #: has connected -- counted from full connection, not process
    #: start, so the timing is deterministic relative to the workload.
    crash_notifier_after_s: Optional[float] = None
    #: Live failover: every client opens its own listening socket and a
    #: notifier crash triggers cluster-wide re-election instead of an
    #: early exit.  Off = the pre-failover behaviour (crash is terminal,
    #: flight recorders dumped, driver salvages).
    failover: bool = True
    #: Degraded-mode bound: local edits queued per client while the star
    #: is leaderless.  0 drops such edits (the simulator's semantics).
    degraded_limit: int = 64
    #: UDP telemetry sideband: when set, every process fires each
    #: telemetry frame as a datagram at ``host:beacon_port`` (the
    #: monitor's fan-in socket) beside the TCP gossip, so the monitor
    #: keeps receiving frames through a notifier crash.  ``None``
    #: disables the sideband.  Only meaningful with telemetry on.
    beacon_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"need at least one client, got {self.clients}")
        if self.ops_per_client < 1:
            raise ValueError(f"need at least one op per client: {self.ops_per_client}")
        if self.time_scale <= 0 or self.timeout_s <= 0 or self.settle_s < 0:
            raise ValueError(f"malformed cluster timing: {self}")
        if self.telemetry_interval_s < 0:
            raise ValueError(
                f"telemetry interval must be >= 0: {self.telemetry_interval_s}"
            )
        if self.crash_notifier_after_s is not None and self.crash_notifier_after_s <= 0:
            raise ValueError(
                f"crash-notifier delay must be positive: {self.crash_notifier_after_s}"
            )
        if self.degraded_limit < 0:
            raise ValueError(
                f"degraded-mode queue bound must be >= 0: {self.degraded_limit}"
            )
        if self.beacon_port is not None and not 0 < self.beacon_port < 65536:
            raise ValueError(f"beacon port out of range: {self.beacon_port}")

    @property
    def telemetry_enabled(self) -> bool:
        return self.telemetry_interval_s > 0

    @property
    def total_ops(self) -> int:
        """Operations every replica eventually executes."""
        return self.clients * self.ops_per_client

    def session_config(self) -> RandomSessionConfig:
        """The seeded workload, identical to the simulator benchmarks'."""
        return RandomSessionConfig(
            n_sites=self.clients,
            ops_per_site=self.ops_per_client,
            seed=self.seed,
            initial_document=self.initial_document,
        )

    def reliability_config(self) -> Optional[ReliabilityConfig]:
        """The transport config every process must share (or ``None``)."""
        return ReliabilityConfig() if self.reliability else None

    def to_args(self) -> list[str]:
        """The CLI flags that reproduce this config in a subprocess."""
        args = [
            "--clients", str(self.clients),
            "--ops", str(self.ops_per_client),
            "--seed", str(self.seed),
            "--time-scale", str(self.time_scale),
            "--host", self.host,
            "--settle", str(self.settle_s),
            "--timeout", str(self.timeout_s),
        ]
        if self.reliability:
            args.append("--reliability")
        if self.telemetry_enabled:
            args.extend(["--telemetry-interval", str(self.telemetry_interval_s)])
        if self.crash_notifier_after_s is not None:
            args.extend(["--crash-notifier-after", str(self.crash_notifier_after_s)])
        if not self.failover:
            args.append("--no-failover")
        args.extend(["--degraded-limit", str(self.degraded_limit)])
        if self.beacon_port is not None:
            args.extend(["--beacon-port", str(self.beacon_port)])
        return args


def wall_clock_tracer() -> Tracer:
    """A tracer stamping Unix time, comparable across same-host processes.

    Cluster processes share the machine clock, so absolute ``time.time``
    stamps give the driver a common axis to merge per-process traces on
    (the merge additionally repairs any causality-violating skew; see
    :func:`repro.cluster.check.merge_traces`).
    """
    import time

    tracer = Tracer(enabled=True)
    tracer.bind_clock(time.time)
    return tracer


# -- per-process artifacts -----------------------------------------------------


@dataclass
class ProcessResult:
    """What one cluster process reports back to the driver."""

    role: str  # "notifier" or "client"
    site: int
    document: str
    executed_ops: int
    checks: list[CheckRecord] = field(default_factory=list)
    timed_out: bool = False
    lost_local_edits: int = 0
    retransmits: int = 0
    messages_sent: int = 0
    wire_bytes: int = 0

    def to_json(self) -> str:
        data = dataclasses.asdict(self)
        return json.dumps(data, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProcessResult":
        data = json.loads(text)
        checks = [CheckRecord(**record) for record in data.pop("checks", [])]
        return cls(checks=checks, **data)


def result_path(out_dir: Path, site: int) -> Path:
    return out_dir / f"site_{site}.json"


def trace_path(out_dir: Path, site: int) -> Path:
    return out_dir / f"trace_{site}.jsonl"


def telemetry_path(out_dir: Path, site: int) -> Path:
    """The per-process live telemetry stream (frames + health events)."""
    return out_dir / f"telemetry_{site}.jsonl"


def flight_path(out_dir: Path, site: int) -> Path:
    """The per-process flight-recorder dump (written on crash/kill)."""
    return out_dir / f"flight_{site}.jsonl"


def telemetry_writer(out_dir: Path, site: int, role: str) -> JsonlWriter:
    """Open the crash-safe telemetry stream for one process.

    Every record is flushed as it is written (see
    :class:`~repro.obs.tracer.JsonlWriter`), so ``repro monitor`` in
    another process sees frames *live* and a killed process still
    leaves a readable prefix.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    return JsonlWriter(telemetry_path(out_dir, site), {
        "format": TELEMETRY_FORMAT,
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "site": site,
        "role": role,
    })


def streaming_trace_writer(
    out_dir: Path, site: int, role: str, tracer: Tracer,
) -> JsonlWriter:
    """Persist ``tracer``'s events to disk incrementally, as emitted.

    The one-shot :func:`write_artifacts` path loses the whole trace when
    a process dies by ``os._exit`` (the injected notifier crash does
    exactly that) -- but the merged-trace cross-check needs the dead
    centre's generation events to keep happens-before EXACT across a
    failover.  Streaming through a flush-per-line
    :class:`~repro.obs.tracer.JsonlWriter` means every event emitted
    before the kill is already on disk.  Events emitted before the
    stream opened are back-filled first, then the tracer's sink is
    bound so later emissions append live.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    writer = JsonlWriter(
        trace_path(out_dir, site),
        trace_header({"site": site, "role": role}),
    )
    for event in tracer.events:
        writer.write_event(event)
    tracer.bind_sink(writer.write_event)
    return writer


def endpoint_result(
    role: str,
    endpoint: "StarNotifier | StarClient",
    *,
    timed_out: bool,
    messages_sent: int,
    wire_bytes: int,
) -> ProcessResult:
    """Snapshot one endpoint's verdict-relevant state for the driver."""
    return ProcessResult(
        role=role,
        site=endpoint.pid,
        document=str(endpoint.document),
        executed_ops=len(endpoint.executed_op_ids),
        checks=list(endpoint.checks),
        timed_out=timed_out,
        lost_local_edits=endpoint.rel_stats.lost_local_edits,
        retransmits=endpoint.rel_stats.retransmits,
        messages_sent=messages_sent,
        wire_bytes=wire_bytes,
    )


def write_artifacts(out_dir: Path, result: ProcessResult, tracer: Tracer,
                    *, trace_streamed: bool = False) -> None:
    """Write the process's result JSON and trace JSONL atomically enough.

    Artifacts are written once, at the end of the run, so a crash mid-run
    leaves *no* file rather than a torn one -- the driver treats a
    missing artifact as a failed process.  With ``trace_streamed`` the
    trace already lives on disk via :func:`streaming_trace_writer` and
    only the result JSON is written here.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    if not trace_streamed:
        with trace_path(out_dir, result.site).open("w") as fh:
            write_jsonl(tracer.events, fh, header={"site": result.site,
                                                   "role": result.role})
    result_path(out_dir, result.site).write_text(result.to_json() + "\n")


def read_artifacts(out_dir: Path, site: int) -> tuple[ProcessResult, list[TraceEvent]]:
    """Load one process's artifacts (raises if the process never wrote).

    The trace is read leniently: a process killed while writing leaves
    at most one torn trailing line, and whatever it did record is still
    evidence the driver should merge rather than discard.
    """
    result = ProcessResult.from_json(result_path(out_dir, site).read_text())
    with trace_path(out_dir, site).open() as fh:
        _header, events = read_jsonl(fh, lenient=True)
    return result, events


def add_common_args(parser: Any) -> None:
    """Attach the shared cluster flags to an argparse parser."""
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--ops", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--time-scale", type=float, default=0.05)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--settle", type=float, default=0.3)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--reliability", action="store_true")
    parser.add_argument(
        "--telemetry-interval", type=float, default=0.0,
        help="seconds between telemetry samples (0 = telemetry off)",
    )
    parser.add_argument(
        "--crash-notifier-after", type=float, default=None, metavar="S",
        help="fault injection: hard-kill the notifier process S seconds "
        "after every client has connected (it dumps its flight "
        "recorder first)",
    )
    parser.add_argument(
        "--no-failover", action="store_true",
        help="disable live failover: clients open no listening sockets "
        "and a notifier crash is terminal (flight recorders, salvage)",
    )
    parser.add_argument(
        "--degraded-limit", type=int, default=64, metavar="N",
        help="max local edits queued per client while the star is "
        "leaderless (0 = drop them)",
    )
    parser.add_argument(
        "--beacon-port", type=int, default=None, metavar="PORT",
        help="UDP telemetry sideband: also fire every telemetry frame "
        "as a datagram at this port (the monitor's fan-in socket)",
    )
    parser.add_argument("--out", required=True, help="artifact directory")


def config_from_args(args: Any) -> ClusterConfig:
    return ClusterConfig(
        clients=args.clients,
        ops_per_client=args.ops,
        seed=args.seed,
        time_scale=args.time_scale,
        reliability=args.reliability,
        host=args.host,
        settle_s=args.settle,
        timeout_s=args.timeout,
        telemetry_interval_s=args.telemetry_interval,
        crash_notifier_after_s=args.crash_notifier_after,
        failover=not args.no_failover,
        degraded_limit=args.degraded_limit,
        beacon_port=args.beacon_port,
    )
