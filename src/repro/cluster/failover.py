"""Live notifier failover over real sockets.

The in-process simulator already survives a notifier crash: the
:class:`~repro.editor.failover.FailoverManager` routes election,
promotion and re-admission between endpoints that share one event loop
and one topology object.  This module is the same coordination role for
the multi-process TCP cluster, where there is no shared object to route
through -- only sockets:

* **Advertise** -- every client process opens its own listening socket
  before dialing the notifier and advertises the port in its HELLO
  frame; the centre broadcasts the full membership table as a ROSTER
  frame once every client is connected.  The roster is the cluster's
  out-of-band membership directory, delivered in-band while the centre
  is still alive.
* **Detect** -- a TCP EOF on the centre connection *before* a GOODBYE
  frame is definitive evidence of a crash (the kernel observed the
  socket close), so no liveness probe is needed.
* **Elect** -- the successor is the lowest-numbered site in the roster
  (every survivor computes the same answer from the same table, so no
  votes need collecting).  Survivors dial the successor's listener with
  capped exponential backoff, introduce themselves with HELLO, and send
  an :class:`~repro.editor.messages.ElectMessage` for the next notifier
  epoch; the successor also opens the election itself once the expected
  members have dialed in (or a grace deadline passes), so a one-client
  cluster or a slow member cannot stall the takeover.
* **Promote** -- the election runs the *stock*
  :class:`~repro.editor.star_client.StarClient` failover machinery:
  this coordinator duck-types the ``FailoverManager`` surface
  (:meth:`begin_promotion` / :meth:`complete_promotion`), so
  ``PromoteMessage`` / ``StateContribution`` / failover
  ``SnapshotMessage`` all travel as ordinary DATA frames and
  :meth:`~repro.editor.star_notifier.StarNotifier.promoted_from`
  rebuilds ``SV_0`` exactly as in the simulator.  A member that dials
  in after promotion completed is healed through the late-member path
  (a direct ``PromoteMessage``; its contribution is answered with a
  failover snapshot).
* **Finish** -- members re-announce DRAINED to the new centre; once
  every roster member has drained and the successor's own workload (and
  degraded-mode queue) is empty, the coordinator broadcasts GOODBYE and
  the run ends exactly like an uncrashed one.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.cluster.harness import ClusterConfig
from repro.editor.messages import ElectMessage, PromoteMessage, StateContribution
from repro.editor.star_client import StarClient
from repro.editor.star_notifier import StarNotifier
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope
from repro.net.wire import (
    Drained,
    Hello,
    Roster,
    WireChannel,
    WireError,
    connect_with_backoff,
    decode_frame,
    encode_goodbye,
    encode_hello,
    frame,
    pump,
    read_frame,
)
from repro.obs.telemetry import TelemetryFrame

#: How long the successor waits for the expected members to dial in
#: before opening the election anyway.  Generous relative to the
#: members' re-dial backoff schedule, small relative to run timeouts.
TAKEOVER_GRACE_S = 5.0

LogHook = Callable[[str, str], None]


class WireFailover:
    """Per-process failover coordinator for one cluster client.

    Owns the process's listening socket, the roster learned from the
    centre, and -- on the successor -- the inbound member connections.
    Duck-types the :class:`~repro.editor.failover.FailoverManager`
    surface the :class:`~repro.editor.star_client.StarClient` failover
    machinery calls into, so the editor-layer election/promotion code
    runs unmodified over sockets.
    """

    def __init__(self, config: ClusterConfig, sched: Scheduler,
                 client: StarClient, *, log: Optional[LogHook] = None,
                 grace_s: float = TAKEOVER_GRACE_S) -> None:
        self.config = config
        self.sched = sched
        self.client = client
        self.site = client.pid
        self.log: LogHook = log if log is not None else (lambda kind, detail: None)
        self.grace_s = grace_s
        self.listen_port = 0
        self.roster: dict[int, int] = {}
        self.epoch = 0
        self.notifier: Optional[StarNotifier] = None
        #: Set once the successor has broadcast GOODBYE to every member.
        self.session_complete = asyncio.Event()
        #: The client process's workload gauge, installed by run_client.
        self.workload_remaining: Callable[[], int] = lambda: 0
        #: Gossiped member telemetry lands here on the successor.
        self.on_member_telemetry: Optional[Callable[[TelemetryFrame], None]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._member_writers: dict[int, asyncio.StreamWriter] = {}
        self._drained: set[int] = set()
        self._goodbye_sent = False

    # -- the listener (every client, armed before the first HELLO) -----------

    async def start_listener(self) -> int:
        """Bind the process's own accept socket; returns its port."""
        self._server = await asyncio.start_server(
            self._handle_inbound, self.config.host, 0,
        )
        self.listen_port = int(self._server.sockets[0].getsockname()[1])
        return self.listen_port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in self._member_writers.values():
            try:
                writer.close()
            except ConnectionError:  # pragma: no cover - teardown race
                pass

    # -- roster bookkeeping ---------------------------------------------------

    def observe_roster(self, roster: Roster) -> None:
        self.roster = dict(roster.ports)

    def eligible(self) -> bool:
        """Can this cluster fail over at all?  Needs a roster with at
        least one listening survivor."""
        return any(port > 0 for site, port in self.roster.items())

    def successor_site(self) -> int:
        """Deterministic election: the lowest listening site wins.

        Every survivor computes this from the same broadcast roster, so
        all of them agree without exchanging votes.
        """
        listening = [site for site, port in self.roster.items() if port > 0]
        if not listening:
            raise WireError("no eligible successor in the roster")
        return min(listening)

    def is_successor(self) -> bool:
        return self.successor_site() == self.site

    # -- the member path ------------------------------------------------------

    async def rejoin(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, int]:
        """Dial the successor (with backoff), attach the spoke, raise the
        alarm.  Returns the new connection and the successor's site."""
        successor = self.successor_site()
        port = self.roster[successor]
        reader, writer = await connect_with_backoff(
            self.config.host, port, seed=self.site,
        )
        writer.write(frame(encode_hello(self.site, self.listen_port)))
        await writer.drain()
        if successor not in self.client.out_channels:
            self.client.attach_channel(
                successor, WireChannel(self.sched, self.site, successor, writer),
            )
        self.log(
            "failover_rehomed",
            f"dialed successor {successor} on port {port}",
        )
        # The alarm: tell the successor its centre is dead.  Sent through
        # the transport so it arrives as an ordinary DATA frame and the
        # stock _on_elect dedup-by-epoch applies.
        self.client.send(
            successor,
            ElectMessage(notifier_epoch=self.client.notifier_epoch + 1),
            timestamp_bytes=0,
            kind="elect",
        )
        return reader, writer, successor

    # -- the successor path ---------------------------------------------------

    async def takeover(self) -> None:
        """Wait for the expected members (bounded), then open the election.

        The election may already be open -- a member's ElectMessage can
        arrive before our own EOF fires -- in which case ``_on_elect``'s
        epoch dedup makes this a no-op.  The EOF we observed is
        definitive, so the election is ``confirmed``: no liveness probe
        even over the reliability transport.
        """
        expected = {site for site in self.roster if site != self.site}
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.grace_s
        while (not expected <= set(self._member_writers)
               and loop.time() < deadline
               and not self.client.promoted):
            await asyncio.sleep(0.02)
        if not self.client.promoted and not self.client._promoting:
            self.client._on_elect(self.client.notifier_epoch + 1, confirmed=True)
        await self.session_complete.wait()

    async def _handle_inbound(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        """Accept one surviving member dialing in after the crash."""
        try:
            hello = await read_frame(reader)
        except (WireError, ConnectionError):
            writer.close()
            return
        if hello is None:
            writer.close()
            return
        decoded = decode_frame(hello)
        if not isinstance(decoded, Hello):
            raise WireError("expected a HELLO frame to open the connection")
        member = decoded.pid
        self._member_writers[member] = writer
        if member not in self.client.out_channels:
            self.client.attach_channel(
                member, WireChannel(self.sched, self.site, member, writer),
            )
        if self.notifier is not None:
            # Late member: promotion already completed without its
            # contribution.  Announce the new centre directly; its
            # StateContribution reply is answered with a failover
            # snapshot by the promoted notifier's late-member path.
            self.notifier.send(
                member,
                PromoteMessage(successor=self.site, notifier_epoch=self.epoch),
                timestamp_bytes=0,
                kind="promote",
            )

        def on_envelope(envelope: Envelope) -> None:
            self.client.on_message(envelope)
            self.note_progress()

        def on_drained(drained: Drained) -> None:
            self._drained.add(drained.site)
            self.log(
                "failover_member_drained",
                f"member {drained.site} drained under epoch {self.epoch}",
            )
            self.note_progress()

        def on_telemetry(tframe: TelemetryFrame) -> None:
            if self.on_member_telemetry is not None:
                self.on_member_telemetry(tframe)

        try:
            await pump(reader, on_envelope, on_telemetry=on_telemetry,
                       on_drained=on_drained)
        except (WireError, ConnectionError):
            pass

    def note_progress(self) -> None:
        """Finish the session once everyone (including us) is drained.

        Callable from any point that advances the run: member frames,
        local workload firings, promotion completion.  Idempotent; a
        no-op until this process actually promoted.
        """
        if self.notifier is None or self._goodbye_sent:
            return
        if self.workload_remaining() > 0:
            return
        client = self.client
        if client._degraded_queue or client._failover_stash or client._promoting:
            return
        expected = {site for site in self.roster if site != self.site}
        if not expected <= self._drained:
            return
        self._goodbye_sent = True
        for writer in self._member_writers.values():
            try:
                writer.write(frame(encode_goodbye()))
            except (ConnectionError, RuntimeError):
                pass
        self.log(
            "failover_goodbye",
            f"epoch {self.epoch} complete: goodbye broadcast to "
            f"{sorted(self._member_writers)}",
        )
        self.session_complete.set()

    # -- the FailoverManager duck-type surface --------------------------------

    def election_aborted(self, successor: StarClient) -> None:
        """Unreachable over sockets (EOF is definitive), kept for the
        duck-type surface the editor layer calls on a probe answer."""

    def begin_promotion(self, successor: StarClient, epoch: int) -> list[int]:
        """Record the new centre; members are whoever has dialed in."""
        self.epoch = epoch
        members = sorted(site for site in self._member_writers
                         if site != self.site)
        # Logged here, not in takeover(): a member's ElectMessage can
        # open the election before our own EOF handler does, and this
        # is the single point both paths funnel through.
        self.log(
            "failover_elected",
            f"site {self.site} elected for epoch {epoch} with members "
            f"{members}",
        )
        return members

    def complete_promotion(
        self, successor: StarClient,
        contributions: dict[int, StateContribution | None],
    ) -> StarNotifier:
        """All contributions in: build the wire-backed epoch-N notifier."""
        notifier = StarNotifier.promoted_from(
            successor, self.epoch, contributions, n_sites=self.config.clients,
        )
        self.notifier = notifier
        # Heal members that dialed in *during* the promotion window:
        # they were not in the election's member list (begin_promotion
        # had already run) and the inbound handler's late-member path
        # saw no notifier yet.  The event loop cannot interleave here,
        # so this snapshot plus the inbound path covers every arrival.
        for member in sorted(self._member_writers):
            if member == self.site or member in contributions:
                continue
            notifier.send(
                member,
                PromoteMessage(successor=self.site, notifier_epoch=self.epoch),
                timestamp_bytes=0,
                kind="promote",
            )
        self.log(
            "failover_promoted",
            f"site {self.site} promoted to notifier at epoch {self.epoch} "
            f"({len([c for c in contributions.values() if c is not None])} "
            f"contribution(s))",
        )
        # The degraded-mode queue drains (and buffered resyncs replay)
        # after complete_promotion returns; check for session completion
        # on the next loop turn, once that synchronous tail has run.
        asyncio.get_running_loop().call_soon(self.note_progress)
        return notifier

    def route_restart(self, client: StarClient) -> int:
        """Crash-restart routing is an in-process concern; over the wire
        a restarted process re-dials whatever the driver tells it to."""
        return self.client.center
