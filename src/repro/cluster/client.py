"""One collaborating client process: a real user at a real socket.

``python -m repro client --site I --port P --out DIR`` dials the
notifier, introduces itself with a HELLO frame, and replays site ``I``'s
slice of the seeded workload -- the *same*
:func:`~repro.workloads.random_session.generate_random_edits` schedule
the simulator benchmarks use, with think times mapped onto wall seconds
by ``time_scale``.  Each edit is drawn at fire time against the live
replica (exactly like the simulated driver), so edits stay valid no
matter how broadcasts interleave.

The editor object is the stock
:class:`~repro.editor.star_client.StarClient` on the wall-clock
scheduler; edits fire from scheduler timers, remote operations arrive
through the frame pump.  Completion is protocol-driven: the client
announces the end of its generation workload with a DRAINED frame and
waits for the notifier's GOODBYE, whose arrival (TCP FIFO) proves every
broadcast has already been executed.  An EOF *after* GOODBYE -- or
after our own SIGTERM -- is a clean teardown, never a peer death.

Failover: unless ``--no-failover``, the client opens its own listening
socket before dialing and advertises the port in its HELLO; the ROSTER
frame the notifier broadcasts back is the membership directory.  An EOF
*before* GOODBYE then triggers live failover instead of giving up: the
lowest-numbered roster site waits for the survivors to dial in and
promotes itself to the epoch-1 notifier (stock editor-layer election /
promotion / state-contribution machinery, carried as DATA frames);
every other survivor re-dials the successor with capped exponential
backoff, resynchronises from a failover snapshot, re-announces DRAINED
and finishes the workload under the new centre.  Local edits typed
while the star is leaderless queue in the client's bounded
degraded-mode buffer (``--degraded-limit``) and replay after the
baseline lands.

Observability: with ``--telemetry-interval`` the client samples its own
gauges into ``telemetry_<site>.jsonl`` and *gossips* every frame to the
current centre as a TELEMETRY wire frame (piggybacked on the existing
connection; older readers ignore the tag).  Failover progress --
``peer_dead`` (warn), re-homing, election, promotion -- lands in the
same stream as ``warn``-verdict health events, so the monitor shows an
epoch transition rather than a terminal crash.  ``fail`` verdicts and
flight-recorder dumps are reserved for genuinely terminal deaths: no
roster, no failover, or the successor dying too.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import signal
import time
from pathlib import Path
from typing import Optional

from repro.cluster.failover import WireFailover
from repro.cluster.harness import (
    ClusterConfig,
    add_common_args,
    config_from_args,
    endpoint_result,
    flight_path,
    telemetry_writer,
    wall_clock_tracer,
    write_artifacts,
)
from repro.editor.star_client import StarClient
from repro.net.beacon import BeaconSender
from repro.net.scheduler import AsyncioScheduler
from repro.net.transport import Envelope
from repro.net.wire import (
    WireChannel,
    WireError,
    connect_with_backoff,
    encode_drained,
    encode_hello,
    encode_telemetry_frame,
    frame,
    pump,
)
from repro.obs.telemetry import (
    FlightRecorder,
    HealthEvent,
    TelemetryFrame,
    TelemetrySampler,
    snapshot_endpoint,
)
from repro.obs.tracer import JsonlWriter
from repro.workloads.random_session import generate_random_edits, random_positional_op


async def run_client(config: ClusterConfig, site: int, port: int,
                     out_dir: Path) -> bool:
    """Run one client process; returns True iff the run completed."""
    if not 1 <= site <= config.clients:
        raise ValueError(f"site must be 1..{config.clients}, got {site}")
    sched = AsyncioScheduler()
    tracer = wall_clock_tracer()
    client = StarClient(
        sched,
        site,
        initial_state=config.initial_document,
        record_checks=True,
        reliability=config.reliability_config(),
        tracer=tracer,
    )
    # Arm the latency observatory (see serve.py): outgoing ops carry
    # their origin wall-clock stamp; executions feed the e2e window.
    client.span_clock = time.time
    recorder = FlightRecorder(tracer)

    def dump_flight(reason: str) -> None:
        recorder.dump(flight_path(out_dir, site), reason=reason, site=site,
                      role="client")

    telem: Optional[JsonlWriter] = None

    def health(kind: str, detail: str, *, verdict: str = "warn",
               peer: Optional[int] = None) -> None:
        if telem is not None:
            telem.write_line(HealthEvent(
                time=sched.now, site=site, kind=kind, verdict=verdict,
                peer=peer, detail=detail,
            ).to_json())

    coordinator: Optional[WireFailover] = None
    if config.failover:
        coordinator = WireFailover(config, sched, client, log=health)
        # The coordinator *is* the client's failover manager: the stock
        # editor-layer election/promotion machinery drives it, over
        # sockets instead of an in-process topology.
        client.failover = coordinator
        client._track_failover = True
        client.degraded_limit = config.degraded_limit
        await coordinator.start_listener()

    listen_port = coordinator.listen_port if coordinator is not None else 0
    reader, writer = await connect_with_backoff(config.host, port, seed=site)
    writer.write(frame(encode_hello(site, listen_port)))
    await writer.drain()
    client.attach_channel(0, WireChannel(sched, site, 0, writer))
    # The *current* centre connection (writer + the centre pid it leads
    # to): gossip and DRAINED frames follow it as failover re-homes the
    # spoke.
    center_writer: dict[str, object] = {"w": writer, "pid": 0}

    session_config = config.session_config()
    intents = [i for i in generate_random_edits(session_config) if i.site == site]
    done = asyncio.Event()
    goodbye = asyncio.Event()
    remaining = len(intents)
    drained_sent: set[int] = set()
    peer_dead = False
    killed = False

    if coordinator is not None:
        coordinator.workload_remaining = lambda: remaining

    sampler: Optional[TelemetrySampler] = None
    beacon: Optional[BeaconSender] = None
    if config.telemetry_enabled:
        stream = telemetry_writer(out_dir, site, "client")
        telem = stream
        if config.beacon_port is not None:
            beacon = BeaconSender(config.host, config.beacon_port)

        def on_frame(tframe: TelemetryFrame) -> None:
            stream.write_line(tframe.to_json())
            body = encode_telemetry_frame(tframe)
            if beacon is not None:
                # The UDP sideband: same frame bytes, no connection to
                # lose -- the monitor keeps seeing this site even while
                # the TCP centre is dead (dedupe is by (site, seq)).
                beacon.send(body)
            # Gossip the frame to the current centre over the data
            # connection; a readerless/dying socket must never take
            # sampling down.
            w = center_writer["w"]
            if not isinstance(w, asyncio.StreamWriter) or w.is_closing():
                return
            try:
                w.write(frame(body))
            except (ConnectionError, RuntimeError):
                pass

        def probe(seq: int) -> list[TelemetryFrame]:
            # After promotion the live state (document, SV_0, epoch)
            # belongs to the promoted notifier; sampling the stale
            # client shell would freeze the digest at the crash point.
            target = (client._promoted_to
                      if client.promoted and client._promoted_to is not None
                      else client)
            return [snapshot_endpoint(target, sched=sched, seq=seq,
                                      role="client")]

        sampler = TelemetrySampler(
            sched, probe, interval=config.telemetry_interval_s,
            on_frame=on_frame, keep=False,
        )
        sampler.start()
        if coordinator is not None:
            # On the successor, surviving members gossip their frames to
            # us: fold them into our own stream so the monitor keeps
            # seeing every site across the epoch boundary.
            coordinator.on_member_telemetry = sampler.feed

    def maybe_send_drained() -> None:
        """Announce workload completion to the *current* centre, once.

        DRAINED promises "every operation I will ever send is already on
        this stream" -- so it must wait out the degraded queue and any
        failover replay, and must be re-announced to a new centre after
        re-homing (the promise is per-connection, not global).
        """
        if remaining > 0 or not client.active or client.promoted:
            return
        if (client._promoting or client._failover_pending
                or client._degraded_queue or client._failover_stash):
            return
        center = client.center
        if center != center_writer["pid"]:
            # Mid-failover skew: the spoke already points at the
            # successor's socket but the editor has not re-homed (or
            # vice versa).  A DRAINED now would precede the stash
            # replay on the same stream -- a false promise.
            return
        if center in drained_sent:
            return
        w = center_writer["w"]
        assert isinstance(w, asyncio.StreamWriter)
        if w.is_closing():
            return
        try:
            w.write(frame(encode_drained(site)))
        except (ConnectionError, RuntimeError):
            return
        drained_sent.add(center)

    def fire(seed: int) -> None:
        nonlocal remaining
        rng = random.Random(seed)
        doc = (client._promoted_to.document
               if client.promoted and client._promoted_to is not None
               else client.document)
        client.generate(random_positional_op(rng, doc, session_config))
        remaining -= 1
        maybe_send_drained()
        if coordinator is not None:
            coordinator.note_progress()

    for intent in intents:
        sched.schedule(intent.time * config.time_scale,
                       lambda seed=intent.seed: fire(seed))

    def on_envelope(envelope: Envelope) -> None:
        client.on_message(envelope)
        maybe_send_drained()

    def on_goodbye() -> None:
        goodbye.set()
        done.set()

    def on_sigterm() -> None:
        nonlocal killed
        killed = True
        dump_flight("kill-switch")
        done.set()

    loop = asyncio.get_running_loop()
    sigterm_installed = False
    try:
        loop.add_signal_handler(signal.SIGTERM, on_sigterm)
        sigterm_installed = True
    except (NotImplementedError, ValueError):  # pragma: no cover - non-Unix
        pass

    def terminal_peer_death(detail: str, peer: int) -> None:
        nonlocal peer_dead
        peer_dead = True
        health("peer_dead", detail, verdict="fail", peer=peer)
        dump_flight("peer-death")
        done.set()

    async def handle_center_loss() -> None:
        """The centre connection died before GOODBYE: fail over or fail."""
        dead = client.center
        if coordinator is None or not coordinator.eligible():
            terminal_peer_death(
                "connection to notifier closed mid-run (failover "
                "unavailable)", dead,
            )
            return
        health("peer_dead",
               f"connection to notifier {dead} closed mid-run; re-electing",
               peer=dead)
        if coordinator.is_successor():
            # We are the new centre: collect the survivors, promote, and
            # stay up until the coordinator has said GOODBYE to all.
            await coordinator.takeover()
            done.set()
            return
        try:
            new_reader, new_writer, successor = await coordinator.rejoin()
        except (WireError, ConnectionError):
            terminal_peer_death(
                "could not reach the elected successor", dead,
            )
            return
        center_writer["w"] = new_writer
        center_writer["pid"] = successor
        try:
            await pump(new_reader, on_envelope, on_goodbye=on_goodbye)
        except (WireError, ConnectionError):
            pass
        if done.is_set() or goodbye.is_set() or killed:
            return
        # The successor died too: one live takeover is the contract.
        terminal_peer_death("successor connection closed mid-run",
                            client.center)

    async def pump_loop() -> None:
        try:
            await pump(
                reader, on_envelope,
                on_roster=(coordinator.observe_roster
                           if coordinator is not None else None),
                on_goodbye=on_goodbye,
            )
        except (WireError, ConnectionError):
            pass
        if done.is_set() or goodbye.is_set() or killed:
            return  # clean teardown: GOODBYE (or our own shutdown) came first
        await handle_center_loss()

    pump_task = asyncio.ensure_future(pump_loop())
    timed_out = False
    try:
        await asyncio.wait_for(done.wait(), config.timeout_s)
        if peer_dead or killed:
            timed_out = True
        else:
            await asyncio.sleep(config.settle_s)
    except asyncio.TimeoutError:
        timed_out = True
        dump_flight("timeout")
    if sigterm_installed:
        loop.remove_signal_handler(signal.SIGTERM)
    pump_task.cancel()
    try:
        await pump_task
    except (asyncio.CancelledError, WireError, ConnectionError):
        pass
    if sampler is not None:
        # Final sample: the stream's last frame carries the final local
        # stats, which is what the monitor aggregates per site.
        sampler.stop()
        sampler.sample()
    if telem is not None:
        telem.close()
    if beacon is not None:
        beacon.close()
    if coordinator is not None:
        await coordinator.close()
    open_writers = [writer]
    if isinstance(center_writer["w"], asyncio.StreamWriter):
        open_writers.append(center_writer["w"])
    for w in {id(w): w for w in open_writers}.values():
        w.close()
        try:
            await w.wait_closed()
        except ConnectionError:
            pass
    messages = sum(ch.stats.messages for ch in client.out_channels.values())
    wire_bytes = sum(ch.stats.total_bytes for ch in client.out_channels.values())
    result = endpoint_result("client", client, timed_out=timed_out,
                             messages_sent=messages, wire_bytes=wire_bytes)
    if (client.promoted and coordinator is not None
            and coordinator.notifier is not None):
        # The promoted shell's replica froze at the takeover; the live
        # run continued inside the epoch-1 notifier.  Report the merged
        # view: its document, both execution logs, both check sets.
        notifier = coordinator.notifier
        result.document = str(notifier.document)
        result.executed_ops = (len(client.executed_op_ids)
                               + len(notifier.executed_op_ids))
        result.checks = list(client.checks) + list(notifier.checks)
    write_artifacts(out_dir, result, tracer)
    return not timed_out


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro client", description="run one star client over TCP"
    )
    add_common_args(parser)
    parser.add_argument("--site", type=int, required=True)
    parser.add_argument("--port", type=int, required=True)
    args = parser.parse_args(argv)
    config = config_from_args(args)
    ok = asyncio.run(run_client(config, args.site, args.port, Path(args.out)))
    return 0 if ok else 1
