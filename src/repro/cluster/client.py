"""One collaborating client process: a real user at a real socket.

``python -m repro client --site I --port P --out DIR`` dials the
notifier, introduces itself with a HELLO frame, and replays site ``I``'s
slice of the seeded workload -- the *same*
:func:`~repro.workloads.random_session.generate_random_edits` schedule
the simulator benchmarks use, with think times mapped onto wall seconds
by ``time_scale``.  Each edit is drawn at fire time against the live
replica (exactly like the simulated driver), so edits stay valid no
matter how broadcasts interleave.

The editor object is the stock
:class:`~repro.editor.star_client.StarClient` on the wall-clock
scheduler; edits fire from scheduler timers, remote operations arrive
through the frame pump.  The client is done when it has executed every
expected operation (its own plus every transformed broadcast); it then
settles briefly so trailing acknowledgements flush and hangs up -- the
EOF is its completion signal to the notifier.

Observability: with ``--telemetry-interval`` the client samples its own
gauges into ``telemetry_<site>.jsonl`` and *gossips* every frame to the
notifier as a TELEMETRY wire frame (piggybacked on the existing
connection; older readers ignore the tag).  An EOF on the pump before
the run is done means the notifier died: the client records a
``peer_dead`` health event -- the live dead-peer flag, written before
the run ends -- dumps its flight recorder, and gives up rather than
waiting out the full timeout.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import signal
from pathlib import Path
from typing import Optional

from repro.cluster.harness import (
    ClusterConfig,
    add_common_args,
    config_from_args,
    endpoint_result,
    flight_path,
    telemetry_writer,
    wall_clock_tracer,
    write_artifacts,
)
from repro.editor.star_client import StarClient
from repro.net.scheduler import AsyncioScheduler
from repro.net.transport import Envelope
from repro.net.wire import (
    WireChannel,
    WireError,
    encode_hello,
    encode_telemetry_frame,
    frame,
    pump,
)
from repro.obs.telemetry import (
    FlightRecorder,
    HealthEvent,
    TelemetryFrame,
    TelemetrySampler,
    snapshot_endpoint,
)
from repro.obs.tracer import JsonlWriter
from repro.workloads.random_session import generate_random_edits, random_positional_op


async def run_client(config: ClusterConfig, site: int, port: int,
                     out_dir: Path) -> bool:
    """Run one client process; returns True iff the run completed."""
    if not 1 <= site <= config.clients:
        raise ValueError(f"site must be 1..{config.clients}, got {site}")
    sched = AsyncioScheduler()
    tracer = wall_clock_tracer()
    client = StarClient(
        sched,
        site,
        initial_state=config.initial_document,
        record_checks=True,
        reliability=config.reliability_config(),
        tracer=tracer,
    )
    recorder = FlightRecorder(tracer)
    reader, writer = await asyncio.open_connection(config.host, port)
    writer.write(frame(encode_hello(site)))
    await writer.drain()
    client.attach_channel(0, WireChannel(sched, site, 0, writer))

    session_config = config.session_config()
    intents = [i for i in generate_random_edits(session_config) if i.site == site]
    done = asyncio.Event()
    remaining = len(intents)
    peer_dead = False
    killed = False

    def dump_flight(reason: str) -> None:
        recorder.dump(flight_path(out_dir, site), reason=reason, site=site,
                      role="client")

    telem: Optional[JsonlWriter] = None
    sampler: Optional[TelemetrySampler] = None
    if config.telemetry_enabled:
        stream = telemetry_writer(out_dir, site, "client")
        telem = stream

        def on_frame(tframe: TelemetryFrame) -> None:
            stream.write_line(tframe.to_json())
            # Gossip the frame to the notifier over the data connection;
            # a readerless/dying socket must never take sampling down.
            try:
                writer.write(frame(encode_telemetry_frame(tframe)))
            except (ConnectionError, RuntimeError):
                pass

        def probe(seq: int) -> list[TelemetryFrame]:
            return [snapshot_endpoint(client, sched=sched, seq=seq,
                                      role="client")]

        sampler = TelemetrySampler(
            sched, probe, interval=config.telemetry_interval_s,
            on_frame=on_frame, keep=False,
        )
        sampler.start()

    def maybe_done() -> None:
        if remaining == 0 and len(client.executed_op_ids) >= config.total_ops:
            done.set()

    def fire(seed: int) -> None:
        nonlocal remaining
        rng = random.Random(seed)
        client.generate(random_positional_op(rng, client.document,
                                             session_config))
        remaining -= 1
        maybe_done()

    for intent in intents:
        sched.schedule(intent.time * config.time_scale,
                       lambda seed=intent.seed: fire(seed))

    def on_envelope(envelope: Envelope) -> None:
        client.on_message(envelope)
        maybe_done()

    def on_sigterm() -> None:
        nonlocal killed
        killed = True
        dump_flight("kill-switch")
        done.set()

    loop = asyncio.get_running_loop()
    sigterm_installed = False
    try:
        loop.add_signal_handler(signal.SIGTERM, on_sigterm)
        sigterm_installed = True
    except (NotImplementedError, ValueError):  # pragma: no cover - non-Unix
        pass

    async def pump_loop() -> None:
        nonlocal peer_dead
        try:
            await pump(reader, on_envelope)
        except (WireError, ConnectionError):
            pass
        if done.is_set():
            return
        # EOF with the run unfinished: the notifier is gone, and no
        # further progress is possible.  Flag it live, preserve the
        # evidence, and stop waiting.
        peer_dead = True
        if telem is not None:
            telem.write_line(HealthEvent(
                time=sched.now, site=site, kind="peer_dead", verdict="fail",
                peer=0, detail="connection to notifier closed mid-run",
            ).to_json())
        dump_flight("peer-death")
        done.set()

    pump_task = asyncio.ensure_future(pump_loop())
    timed_out = False
    try:
        await asyncio.wait_for(done.wait(), config.timeout_s)
        if peer_dead or killed:
            timed_out = True
        else:
            await asyncio.sleep(config.settle_s)
    except asyncio.TimeoutError:
        timed_out = True
        dump_flight("timeout")
    if sigterm_installed:
        loop.remove_signal_handler(signal.SIGTERM)
    pump_task.cancel()
    try:
        await pump_task
    except (asyncio.CancelledError, WireError, ConnectionError):
        pass
    if sampler is not None:
        # Final sample: the stream's last frame carries the final local
        # stats, which is what the monitor aggregates per site.
        sampler.stop()
        sampler.sample()
    if telem is not None:
        telem.close()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    channel = client.out_channels[0]
    write_artifacts(
        out_dir,
        endpoint_result("client", client, timed_out=timed_out,
                        messages_sent=channel.stats.messages,
                        wire_bytes=channel.stats.total_bytes),
        tracer,
    )
    return not timed_out


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro client", description="run one star client over TCP"
    )
    add_common_args(parser)
    parser.add_argument("--site", type=int, required=True)
    parser.add_argument("--port", type=int, required=True)
    args = parser.parse_args(argv)
    config = config_from_args(args)
    ok = asyncio.run(run_client(config, args.site, args.port, Path(args.out)))
    return 0 if ok else 1
