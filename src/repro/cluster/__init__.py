"""Multi-process cluster harness: the star session over real TCP.

Everything in this repo up to here runs inside one process under the
deterministic :class:`~repro.net.simulator.Simulator`.  This package
runs the *identical* editor classes -- :class:`StarNotifier`,
:class:`StarClient`, the reliability protocol, the tracer -- as separate
operating-system processes connected by real localhost TCP sockets,
driven by the wall-clock
:class:`~repro.net.scheduler.AsyncioScheduler` and the framed transport
of :mod:`repro.net.wire`.  It is the existence proof for the scheduler
abstraction: no editor code knows which world it is in.

Process topology (the paper's Fig. 1, as OS processes)::

    driver ──spawn──> serve  (site 0: StarNotifier, TCP accept)
       │                ▲ ▲ ▲
       ├──spawn──> client 1 │    each client dials the notifier,
       ├──spawn──> client 2─┘    sends a HELLO frame, then speaks
       └──spawn──> client 3──┘   the ordinary envelope protocol

Each process writes a result JSON and a trace JSONL; the driver merges
the per-process traces into one causally consistent stream and runs the
repo's standard verdicts over it: convergence, formula-(5)/(7) check
records vs trace concurrency, the holdback release audit, and a
vector-clock replay cross-check of the reconstructed happened-before
relation.
"""

from repro.cluster.harness import ClusterConfig, ProcessResult
from repro.cluster.check import ClusterReport, analyze_cluster, merge_traces
from repro.cluster.driver import run_cluster

__all__ = [
    "ClusterConfig",
    "ClusterReport",
    "ProcessResult",
    "analyze_cluster",
    "merge_traces",
    "run_cluster",
]
