"""The cluster driver: spawn, wait, gather, verify.

``python -m repro cluster --clients 3`` launches one notifier
subprocess and N client subprocesses (plain ``sys.executable -m repro
serve/client`` invocations, so the cluster exercises exactly what a
user would run by hand), waits for them to converge, then merges the
per-process artifacts and renders the verdicts of
:func:`repro.cluster.check.analyze_cluster`.

Flake resistance, because this runs as a CI gate: the notifier binds
port 0 (the kernel allocates, so concurrent runs never collide) and the
driver retries the spawn a few times if the notifier dies before
announcing its port (covering transient bind races on pathological
hosts); every subprocess carries its own hard timeout and writes
``timed_out`` artifacts instead of hanging; and the driver holds a
final kill-switch deadline above all of them.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import IO, Optional

import repro
from repro.cluster.check import ClusterReport, analyze_cluster
from repro.cluster.harness import ClusterConfig, read_artifacts

SPAWN_RETRIES = 3
PORT_ANNOUNCE_TIMEOUT_S = 15.0


class ClusterError(RuntimeError):
    """The harness itself failed (spawn, port announcement, artifacts)."""


def _subprocess_env() -> dict[str, str]:
    """The child environment, with this repro importable on PYTHONPATH."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


def _read_port(stdout: IO[str], deadline_s: float) -> Optional[int]:
    """Parse the notifier's ``LISTENING <port>`` line, bounded in time."""
    with ThreadPoolExecutor(max_workers=1) as pool:
        future = pool.submit(stdout.readline)
        try:
            line = future.result(timeout=deadline_s)
        except FutureTimeout:
            return None
    parts = line.split()
    if len(parts) == 2 and parts[0] == "LISTENING" and parts[1].isdigit():
        return int(parts[1])
    return None


def _spawn_notifier(
    config: ClusterConfig, out_dir: Path
) -> tuple[subprocess.Popen[str], int]:
    """Start the serve subprocess; returns it with its announced port."""
    last_failure = "never announced a port"
    for _attempt in range(SPAWN_RETRIES):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             *config.to_args(), "--out", str(out_dir)],
            stdout=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
        )
        assert proc.stdout is not None
        port = _read_port(proc.stdout, PORT_ANNOUNCE_TIMEOUT_S)
        if port is not None:
            return proc, port
        # Bind race or early crash: reap and retry with a fresh socket.
        proc.kill()
        proc.wait()
        last_failure = f"exited with code {proc.returncode}"
    raise ClusterError(
        f"notifier failed to announce a port after {SPAWN_RETRIES} attempts "
        f"({last_failure})"
    )


def run_cluster(
    config: ClusterConfig,
    out_dir: Optional[Path] = None,
) -> ClusterReport:
    """Run one full cluster session; returns the merged verdicts.

    Artifacts land in ``out_dir`` (a temporary directory when ``None``,
    kept afterwards so a failing CI run leaves evidence behind).
    """
    if out_dir is None:
        out_dir = Path(tempfile.mkdtemp(prefix="repro_cluster_"))
    out_dir.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    notifier_proc, port = _spawn_notifier(config, out_dir)
    client_procs: list[subprocess.Popen[str]] = []
    try:
        for site in range(1, config.clients + 1):
            client_procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "client",
                     *config.to_args(), "--out", str(out_dir),
                     "--site", str(site), "--port", str(port)],
                    env=_subprocess_env(),
                )
            )
        # Every subprocess self-limits with --timeout; the driver's own
        # deadline sits above them as the kill-switch of last resort.
        deadline = started + config.timeout_s + 15.0
        for proc in [notifier_proc, *client_procs]:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    finally:
        for proc in [notifier_proc, *client_procs]:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    wall_s = time.monotonic() - started

    results = []
    streams = []
    for site in range(config.clients + 1):
        try:
            result, events = read_artifacts(out_dir, site)
        except (OSError, ValueError) as exc:
            raise ClusterError(
                f"process for site {site} left no readable artifacts in "
                f"{out_dir}: {exc}"
            ) from exc
        results.append(result)
        streams.append(events)
    return analyze_cluster(
        results,
        streams,
        expected_ops=config.total_ops,
        n_sites=config.clients,
        wall_s=wall_s,
    )
