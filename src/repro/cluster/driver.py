"""The cluster driver: spawn, wait, gather, verify.

``python -m repro cluster --clients 3`` launches one notifier
subprocess and N client subprocesses (plain ``sys.executable -m repro
serve/client`` invocations, so the cluster exercises exactly what a
user would run by hand), waits for them to converge, then merges the
per-process artifacts and renders the verdicts of
:func:`repro.cluster.check.analyze_cluster`.

Flake resistance, because this runs as a CI gate: the notifier binds
port 0 (the kernel allocates, so concurrent runs never collide) and the
driver retries the spawn a few times if the notifier dies before
announcing its port (covering transient bind races on pathological
hosts); every subprocess carries its own hard timeout and writes
``timed_out`` artifacts instead of hanging; and the driver holds a
final kill-switch deadline above all of them.

The kill-switch is SIGTERM-first: each process installs a handler that
dumps its flight recorder before exiting, so a wedged run leaves
post-mortem evidence instead of vanishing under SIGKILL.  Whatever
telemetry, flight-recorder, and monitor artifacts survive a failed run
are *salvaged* -- named in the failure report rather than discarded
with the temp directory.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import IO, Optional

import repro
from repro.cluster.check import ClusterReport, analyze_cluster
from repro.cluster.harness import ClusterConfig, read_artifacts, trace_path
from repro.obs.tracer import TraceEvent, read_jsonl

SPAWN_RETRIES = 3
PORT_ANNOUNCE_TIMEOUT_S = 15.0

#: Grace between the kill-switch SIGTERM and the follow-up SIGKILL:
#: long enough for a flight-recorder dump and artifact write, short
#: enough that a truly wedged process cannot stall the harness.
TERM_GRACE_S = 5.0


class ClusterError(RuntimeError):
    """The harness itself failed (spawn, port announcement, artifacts)."""


def _subprocess_env() -> dict[str, str]:
    """The child environment, with this repro importable on PYTHONPATH."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


def _read_port(stdout: IO[str], deadline_s: float) -> Optional[int]:
    """Parse the notifier's ``LISTENING <port>`` line, bounded in time."""
    with ThreadPoolExecutor(max_workers=1) as pool:
        future = pool.submit(stdout.readline)
        try:
            line = future.result(timeout=deadline_s)
        except FutureTimeout:
            return None
    parts = line.split()
    if len(parts) == 2 and parts[0] == "LISTENING" and parts[1].isdigit():
        return int(parts[1])
    return None


def _spawn_notifier(
    config: ClusterConfig, out_dir: Path
) -> tuple[subprocess.Popen[str], int]:
    """Start the serve subprocess; returns it with its announced port."""
    last_failure = "never announced a port"
    for _attempt in range(SPAWN_RETRIES):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             *config.to_args(), "--out", str(out_dir)],
            stdout=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
        )
        assert proc.stdout is not None
        port = _read_port(proc.stdout, PORT_ANNOUNCE_TIMEOUT_S)
        if port is not None:
            return proc, port
        # Bind race or early crash: reap and retry with a fresh socket.
        proc.kill()
        proc.wait()
        last_failure = f"exited with code {proc.returncode}"
    raise ClusterError(
        f"notifier failed to announce a port after {SPAWN_RETRIES} attempts "
        f"({last_failure})"
    )


def _kill_switch(proc: "subprocess.Popen[str]") -> None:
    """Terminate gently, then firmly: SIGTERM (so the process can dump
    its flight recorder and write artifacts), a bounded grace, SIGKILL."""
    proc.terminate()
    try:
        proc.wait(timeout=TERM_GRACE_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def _salvage_trace(out_dir: Path, site: int) -> list[TraceEvent]:
    """The streamed trace a crashed process left, or nothing at all.

    Read leniently: a process killed mid-write leaves at most one torn
    trailing line, and the readable prefix is still evidence.
    """
    path = trace_path(out_dir, site)
    try:
        with path.open() as fh:
            _header, events = read_jsonl(fh, lenient=True)
    except OSError:
        return []
    return events


def salvage_artifacts(out_dir: Path) -> list[str]:
    """The observability files a failed run left behind, by name.

    Telemetry streams are crash-safe (flushed per record) and flight
    recorders dump on the way down, so even a run whose processes never
    wrote their result artifacts usually leaves evidence here.
    """
    names = []
    for pattern in ("flight_*.jsonl", "telemetry_*.jsonl", "monitor.jsonl"):
        names.extend(p.name for p in sorted(out_dir.glob(pattern)))
    return names


def run_cluster(
    config: ClusterConfig,
    out_dir: Optional[Path] = None,
) -> ClusterReport:
    """Run one full cluster session; returns the merged verdicts.

    Artifacts land in ``out_dir`` (a temporary directory when ``None``,
    kept afterwards so a failing CI run leaves evidence behind).
    """
    if out_dir is None:
        out_dir = Path(tempfile.mkdtemp(prefix="repro_cluster_"))
    out_dir.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    notifier_proc, port = _spawn_notifier(config, out_dir)
    client_procs: list[subprocess.Popen[str]] = []
    kill_switched: list[int] = []
    try:
        for site in range(1, config.clients + 1):
            client_procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "client",
                     *config.to_args(), "--out", str(out_dir),
                     "--site", str(site), "--port", str(port)],
                    env=_subprocess_env(),
                )
            )
        # Every subprocess self-limits with --timeout; the driver's own
        # deadline sits above them as the kill-switch of last resort.
        deadline = started + config.timeout_s + 15.0
        for site, proc in enumerate([notifier_proc, *client_procs]):
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                kill_switched.append(site)
                _kill_switch(proc)
    finally:
        for proc in [notifier_proc, *client_procs]:
            if proc.poll() is None:
                _kill_switch(proc)
    wall_s = time.monotonic() - started

    # With failover armed, the crashed notifier *by design* leaves no
    # result artifact -- only its streamed trace, which the merged-trace
    # cross-check still needs (the pre-crash generation events anchor
    # happens-before across the epoch boundary).
    failover_run = (config.crash_notifier_after_s is not None
                    and config.failover)
    notes: list[str] = []
    results = []
    streams = []
    for site in range(config.clients + 1):
        try:
            result, events = read_artifacts(out_dir, site)
        except (OSError, ValueError) as exc:
            if site == 0 and failover_run:
                events = _salvage_trace(out_dir, site)
                if events:
                    streams.append(events)
                notes.append(
                    "site 0 was crashed by fault injection and the cluster "
                    f"failed over live; merged {len(events)} streamed trace "
                    "events from the dead centre (no result artifact, as "
                    "designed)"
                )
                continue
            salvaged = salvage_artifacts(out_dir)
            note = (
                f"; salvaged observability artifacts: {', '.join(salvaged)}"
                if salvaged else ""
            )
            raise ClusterError(
                f"process for site {site} left no readable artifacts in "
                f"{out_dir}: {exc}{note}"
            ) from exc
        results.append(result)
        streams.append(events)
    report = analyze_cluster(
        results,
        streams,
        expected_ops=config.total_ops,
        n_sites=config.clients,
        wall_s=wall_s,
        failover_run=failover_run,
        notes=notes,
    )
    if kill_switched:
        salvaged = salvage_artifacts(out_dir)
        report.errors.append(
            f"driver kill-switch fired for site(s) {kill_switched}"
            + (f"; salvaged: {', '.join(salvaged)}" if salvaged else "")
        )
    return report
