"""Merging and verifying multi-process traces.

Each cluster process records its own trace with its own event indices
and (same-host) wall-clock stamps.  The in-process analysis machinery
(:mod:`repro.obs.analysis`) requires one stream whose order is a
topological order of the causal DAG; this module builds that stream and
then runs the repo's standard verdicts plus an independent vector-clock
replay over it.

Why not just sort by time?  Same-host clocks make timestamp order
*almost* causal, but nothing guarantees it: an NTP slew or coarse clock
granularity can stamp an execution microseconds before the generation
it depends on, and a flaky CI gate is worse than none.
:func:`merge_traces` therefore performs a k-way merge that prefers
timestamp order but never emits an event before its cross-process
cause: an ``EXECUTED`` waits for its operation's generation, a
``RECOVERED`` for its snapshot.  Per-process order (each site's program
order) is preserved unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.clocks.vector import Ordering, VectorClock, compare
from repro.cluster.harness import ProcessResult
from repro.obs.analysis import (
    CrossCheckReport,
    TraceCausality,
    latency_histograms,
    released_without_cause,
    verify_check_records,
)
from repro.obs.spans import SpanReport, assemble_spans
from repro.obs.tracer import TraceEvent, TraceEventKind

_GENERATION_KINDS = (TraceEventKind.GENERATED, TraceEventKind.TRANSFORMED)


def _dependency_satisfied(
    event: TraceEvent, generated: set[str], snapshots: set[tuple[int, int, str]]
) -> bool:
    """May ``event`` be emitted given what the merge already emitted?"""
    if event.kind is TraceEventKind.EXECUTED:
        return event.op_id is None or event.op_id in generated
    if event.kind is TraceEventKind.RECOVERED and event.via != "join":
        key = (event.site, event.epoch or 0, event.via or "resync")
        return key in snapshots
    return True


def merge_traces(streams: Sequence[Sequence[TraceEvent]]) -> list[TraceEvent]:
    """Merge per-process traces into one causally consistent stream.

    Preserves each stream's internal order (per-site program order),
    orders across streams by timestamp, and defers a stream whose head
    still waits on a cross-process cause.  Events are re-indexed into
    the merged order, since per-process indices collide.  If every head
    is blocked (a genuinely missing cause -- e.g. a process died before
    writing its generation events), the earliest head is emitted anyway
    and the downstream :class:`TraceCausality` construction reports the
    defect rather than the merge hanging.
    """
    heads = [0] * len(streams)
    generated: set[str] = set()
    snapshots: set[tuple[int, int, str]] = set()
    merged: list[TraceEvent] = []
    while True:
        live = [i for i, pos in enumerate(heads) if pos < len(streams[i])]
        if not live:
            break
        ready = [
            i for i in live
            if _dependency_satisfied(streams[i][heads[i]], generated, snapshots)
        ]
        pick_from = ready if ready else live
        best = min(pick_from, key=lambda i: (streams[i][heads[i]].time, i))
        event = streams[best][heads[best]]
        heads[best] += 1
        if event.kind in _GENERATION_KINDS and event.op_id is not None:
            generated.add(event.op_id)
        elif event.kind is TraceEventKind.SNAPSHOT and event.peer is not None:
            snapshots.add((event.peer, event.epoch or 0, event.via or "resync"))
        merged.append(replace(event, index=len(merged)))
    return merged


# -- the independent happened-before replay ------------------------------------


def trace_vector_clock_hb(
    events: Sequence[TraceEvent], n_sites: int
) -> dict[str, VectorClock]:
    """Replay the merged trace with real vector clocks.

    An independent reconstruction of the happened-before relation: where
    :class:`TraceCausality` builds a DAG and computes reachability with
    bitsets, this walks the same events with textbook Fidge/Mattern
    clocks -- tick on every causal event, merge the generation clock on
    execution, merge the snapshot clock on recovery.  Returns each
    operation's generation clock; ``compare(clock_a, clock_b) is
    BEFORE`` then decides ``a happened-before b``.
    """
    width = n_sites + 1  # sites 0..n_sites
    site_clock: dict[int, VectorClock] = {}
    gen_clock: dict[str, VectorClock] = {}
    snapshot_clock: dict[tuple[int, int, str], VectorClock] = {}

    def clock_of(site: int) -> VectorClock:
        return site_clock.get(site, VectorClock.zero(width))

    for event in events:
        site = event.site
        if event.kind in _GENERATION_KINDS:
            ticked = clock_of(site).tick(site)
            site_clock[site] = ticked
            if event.op_id is not None:
                gen_clock.setdefault(event.op_id, ticked)
        elif event.kind is TraceEventKind.EXECUTED:
            incoming = gen_clock.get(event.op_id or "")
            current = clock_of(site)
            if incoming is not None:
                current = current.merge(incoming)
            site_clock[site] = current.tick(site)
        elif event.kind is TraceEventKind.SNAPSHOT:
            ticked = clock_of(site).tick(site)
            site_clock[site] = ticked
            if event.peer is not None:
                key = (event.peer, event.epoch or 0, event.via or "resync")
                snapshot_clock[key] = ticked
        elif event.kind is TraceEventKind.RECOVERED and event.via != "join":
            key = (site, event.epoch or 0, event.via or "resync")
            incoming = snapshot_clock.get(key)
            current = clock_of(site)
            if incoming is not None:
                current = current.merge(incoming)
            site_clock[site] = current.tick(site)
    return gen_clock


def cross_check_merged_trace(
    causality: TraceCausality, n_sites: int
) -> CrossCheckReport:
    """DAG reachability vs vector-clock replay over the merged trace.

    The cluster has no shared in-process event log, so the in-repo
    trace-vs-oracle check does not apply directly; instead two
    *independent algorithms* reconstruct happened-before from the same
    merged stream and every ordered pair must agree.
    """
    gen_clock = trace_vector_clock_hb(causality.events, n_sites)
    ops = [op for op in causality.ops() if op in gen_clock]
    report = CrossCheckReport(
        mode="vector-clock-replay",
        n_ops=len(ops),
        pairs_checked=0,
        only_in_trace=sorted(set(causality.ops()) - set(gen_clock)),
    )
    for a in ops:
        for b in ops:
            if a == b:
                continue
            report.pairs_checked += 1
            dag_hb = causality.happened_before(a, b)
            vc_hb = compare(gen_clock[a], gen_clock[b]) is Ordering.BEFORE
            if dag_hb != vc_hb:
                report.mismatches.append((a, b, dag_hb, vc_hb))
    return report


# -- the full verdict ----------------------------------------------------------


@dataclass
class ClusterReport:
    """Every verdict over one cluster run, for the CLI and the CI gate."""

    converged: bool
    documents: dict[int, str]
    executed_ops: dict[int, int]
    expected_ops: int
    timed_out: bool
    check_disagreements: int
    bad_releases: int
    cross_check: CrossCheckReport
    trace_events: int
    latency_p50_s: Optional[float] = None
    latency_p95_s: Optional[float] = None
    wall_s: float = 0.0
    errors: list[str] = field(default_factory=list)
    #: The run crossed a notifier-epoch boundary by live failover: the
    #: dead centre left no result artifact (only its streamed trace) and
    #: survivors receive the successor's unacknowledged operations via
    #: the failover snapshot rather than as executions, so the
    #: per-replica executed-op floor does not apply.
    failover_run: bool = False
    #: Human-readable context rendered with the summary but not part of
    #: the verdict (e.g. which artifacts a crashed site left behind).
    notes: list[str] = field(default_factory=list)
    #: Wall-clock end-to-end latency derived from ``span`` events
    #: (:mod:`repro.obs.spans`): per site-pair percentiles with
    #: skew-corrected values where the estimator had samples in both
    #: directions.  ``None`` when the run recorded no span events (the
    #: instrumentation is opt-in).  Informational -- never part of the
    #: :attr:`ok` verdict, since wall-clock latency is hardware noise.
    spans: Optional[SpanReport] = None

    @property
    def ok(self) -> bool:
        return (
            self.converged
            and not self.timed_out
            and self.check_disagreements == 0
            and self.bad_releases == 0
            and self.cross_check.ok
            and (self.failover_run
                 or all(n >= self.expected_ops
                        for n in self.executed_ops.values()))
            and not self.errors
        )

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        lines = [
            f"cluster run: {verdict} ({len(self.documents)} processes, "
            f"{self.expected_ops} ops expected, {self.trace_events} trace "
            f"events, {self.wall_s:.2f}s wall)",
            f"  converged: {self.converged}   timed_out: {self.timed_out}",
            f"  executed per site: "
            f"{ {site: n for site, n in sorted(self.executed_ops.items())} }",
            f"  check records disagreeing with trace: "
            f"{self.check_disagreements}",
            f"  releases without cause: {self.bad_releases}",
            f"  {self.cross_check.summary()}",
        ]
        if self.latency_p50_s is not None and self.latency_p95_s is not None:
            lines.append(
                f"  op latency: p50 {self.latency_p50_s * 1e3:.1f} ms, "
                f"p95 {self.latency_p95_s * 1e3:.1f} ms"
            )
        if self.spans is not None:
            lines.extend(f"  {line}" for line in self.spans.summary_lines())
        lines.extend(f"  note: {note}" for note in self.notes)
        lines.extend(f"  error: {err}" for err in self.errors)
        return "\n".join(lines)


def analyze_cluster(
    results: Sequence[ProcessResult],
    streams: Sequence[Sequence[TraceEvent]],
    *,
    expected_ops: int,
    n_sites: int,
    wall_s: float = 0.0,
    failover_run: bool = False,
    notes: Sequence[str] = (),
) -> ClusterReport:
    """Run every verdict over the artifacts of one cluster run."""
    documents = {r.site: r.document for r in results}
    docs = list(documents.values())
    merged = merge_traces(streams)
    errors: list[str] = []
    checks = [record for r in results for record in r.checks]
    try:
        causality = TraceCausality(merged)
        disagreements = len(verify_check_records(causality, checks))
        cross = cross_check_merged_trace(causality, n_sites)
    except ValueError as exc:  # TraceAnalysisError: malformed merged trace
        errors.append(f"trace analysis failed: {exc}")
        disagreements = -1
        cross = CrossCheckReport(mode="vector-clock-replay", n_ops=0,
                                 pairs_checked=0,
                                 only_in_trace=["<analysis failed>"])
    latencies = latency_histograms(merged)
    all_lat = [v for hist in latencies.values() for v in hist.values]
    p50 = p95 = None
    if all_lat:
        ordered = sorted(all_lat)
        p50 = ordered[len(ordered) // 2]
        p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
    spans = assemble_spans(merged)
    return ClusterReport(
        converged=bool(docs) and all(doc == docs[0] for doc in docs[1:]),
        documents=documents,
        executed_ops={r.site: r.executed_ops for r in results},
        expected_ops=expected_ops,
        timed_out=any(r.timed_out for r in results),
        check_disagreements=disagreements,
        bad_releases=len(released_without_cause(merged)),
        cross_check=cross,
        trace_events=len(merged),
        latency_p50_s=p50,
        latency_p95_s=p95,
        wall_s=wall_s,
        errors=errors,
        failover_run=failover_run,
        notes=list(notes),
        spans=spans if spans.span_events else None,
    )
