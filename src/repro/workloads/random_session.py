"""Random editing workloads for property tests and benchmarks.

Generates seeded, reproducible streams of positional operations with a
configurable insert/delete mix, think-time distribution (exponential,
i.e. Poisson arrivals per site) and position locality (uniform or a
hotspot region, modelling users editing "their" paragraph).

Because an operation's validity depends on the document length at its
own site at generation time, the generator produces *intents* that the
session resolves at generation: :func:`random_positional_op` takes the
current document and draws a valid operation for it.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.ot.operations import Delete, Insert, Operation


@dataclass
class RandomSessionConfig:
    """Parameters of a random editing session."""

    n_sites: int = 4
    ops_per_site: int = 10
    seed: int = 0
    insert_ratio: float = 0.7  # probability an edit is an insertion
    max_insert_len: int = 4
    max_delete_len: int = 3
    mean_think_time: float = 0.4  # exponential inter-edit time per site
    start_time: float = 1.0
    hotspot: bool = False  # concentrate edits in a narrow region
    initial_document: str = "The quick brown fox jumps over the lazy dog."

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("need at least one site")
        if not 0.0 <= self.insert_ratio <= 1.0:
            raise ValueError("insert_ratio must be in [0, 1]")
        if self.ops_per_site < 0:
            raise ValueError("ops_per_site must be >= 0")


def random_positional_op(
    rng: random.Random, document: str, config: RandomSessionConfig
) -> Operation:
    """Draw one valid positional operation for ``document``."""
    doc_len = len(document)

    def position(limit: int) -> int:
        if limit <= 0:
            return 0
        if config.hotspot:
            centre = limit // 2
            spread = max(1, limit // 8)
            return min(limit, max(0, int(rng.gauss(centre, spread))))
        return rng.randint(0, limit)

    if doc_len == 0 or rng.random() < config.insert_ratio:
        length = rng.randint(1, config.max_insert_len)
        text = "".join(rng.choice(string.ascii_lowercase) for _ in range(length))
        return Insert(text, position(doc_len))
    count = rng.randint(1, min(config.max_delete_len, doc_len))
    return Delete(count, position(doc_len - count))


@dataclass(frozen=True)
class EditIntent:
    """A scheduled edit: the operation is drawn at generation time."""

    site: int
    time: float
    seed: int  # per-intent sub-seed for reproducible op drawing


def generate_random_edits(config: RandomSessionConfig) -> list[EditIntent]:
    """Produce the schedule of edit intents for every site."""
    rng = random.Random(config.seed)
    intents: list[EditIntent] = []
    for site in range(1, config.n_sites + 1):
        t = config.start_time
        for _ in range(config.ops_per_site):
            t += rng.expovariate(1.0 / config.mean_think_time)
            intents.append(EditIntent(site=site, time=t, seed=rng.getrandbits(32)))
    intents.sort(key=lambda intent: intent.time)
    return intents


def drive_star_session(session, config: RandomSessionConfig) -> None:
    """Schedule a random workload onto a :class:`StarSession`.

    Each intent materialises into a concrete operation *at generation
    time* against the generating client's current document, so the
    operation is always valid locally -- matching how a real user edits
    what they see.
    """
    for intent in generate_random_edits(config):
        client = session.client(intent.site)

        def make(client=client, seed=intent.seed) -> None:
            rng = random.Random(seed)
            op = random_positional_op(rng, client.document, config)
            client.generate(op)

        session.sim.schedule(intent.time, make)


def drive_star_session_component(session, config: RandomSessionConfig) -> None:
    """Random workload for a ``text-component`` star session.

    Draws the same positional edits as :func:`drive_star_session` and
    converts each to component form against the live document.
    """
    from repro.ot.component import TextOperation

    for intent in generate_random_edits(config):
        client = session.client(intent.site)

        def make(client=client, seed=intent.seed) -> None:
            rng = random.Random(seed)
            positional = random_positional_op(rng, client.document, config)
            client.generate(
                TextOperation.from_positional(positional, len(client.document))
            )

        session.sim.schedule(intent.time, make)


def random_list_op(rng: random.Random, state: tuple, config: RandomSessionConfig):
    """Draw one valid list operation for the replicated-list type."""
    from repro.ot.types import ListOp

    n = len(state)
    if n == 0 or rng.random() < config.insert_ratio:
        return ListOp("ins", rng.randint(0, n), rng.getrandbits(16))
    return ListOp("del", rng.randint(0, n - 1))


def drive_star_session_list(session, config: RandomSessionConfig) -> None:
    """Random workload for a ``list`` star session (replicated rows)."""
    for intent in generate_random_edits(config):
        client = session.client(intent.site)

        def make(client=client, seed=intent.seed) -> None:
            rng = random.Random(seed)
            client.generate(random_list_op(rng, client.document, config))

        session.sim.schedule(intent.time, make)


def drive_mesh_session(session, config: RandomSessionConfig) -> None:
    """Schedule the same style of workload onto a :class:`MeshSession`.

    Mesh sites are 0-based; intent sites ``1..N`` map to ``0..N-1``.
    """
    for intent in generate_random_edits(config):
        site = session.sites[intent.site - 1]

        def make(site=site, seed=intent.seed) -> None:
            rng = random.Random(seed)
            op = random_positional_op(rng, site.document, config)
            site.generate(op)

        session.sim.schedule(intent.time, make)
