"""Workload generators: scripted paper scenarios and random sessions."""

from repro.workloads.scripted import (
    FIG2_INITIAL_DOCUMENT,
    fig2_intention_example,
    fig3_script,
    ScriptedOp,
)
from repro.workloads.random_session import (
    RandomSessionConfig,
    generate_random_edits,
    random_positional_op,
)
from repro.workloads.typing_model import TypingBurstConfig, typing_burst_schedule

__all__ = [
    "ScriptedOp",
    "fig3_script",
    "fig2_intention_example",
    "FIG2_INITIAL_DOCUMENT",
    "RandomSessionConfig",
    "generate_random_edits",
    "random_positional_op",
    "TypingBurstConfig",
    "typing_burst_schedule",
]
