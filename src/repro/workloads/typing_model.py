"""A typing-burst workload: users type runs of characters with pauses.

Models the paper's motivating usage -- people typing prose together --
more faithfully than uniform random edits: each site alternates between
*bursts* (rapid single-character inserts at a per-site cursor) and
*pauses*.  Cursor collisions between sites are rare but possible, which
exercises the transformation path under realistic contention.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass


@dataclass
class TypingBurstConfig:
    """Parameters of the typing workload."""

    n_sites: int = 3
    bursts_per_site: int = 4
    burst_length: int = 6  # characters per burst
    intra_key_delay: float = 0.08  # seconds between keystrokes
    mean_pause: float = 1.5  # exponential pause between bursts
    seed: int = 0
    start_time: float = 1.0

    def __post_init__(self) -> None:
        if self.n_sites < 1 or self.bursts_per_site < 0 or self.burst_length < 1:
            raise ValueError("invalid typing workload parameters")


@dataclass(frozen=True)
class Keystroke:
    """One scheduled keystroke."""

    site: int
    time: float
    char: str


def typing_burst_schedule(config: TypingBurstConfig) -> list[Keystroke]:
    """The full keystroke schedule, sorted by time."""
    rng = random.Random(config.seed)
    keystrokes: list[Keystroke] = []
    for site in range(1, config.n_sites + 1):
        t = config.start_time + rng.uniform(0, config.mean_pause)
        for _ in range(config.bursts_per_site):
            for _ in range(config.burst_length):
                keystrokes.append(
                    Keystroke(site=site, time=t, char=rng.choice(string.ascii_lowercase))
                )
                t += config.intra_key_delay
            t += rng.expovariate(1.0 / config.mean_pause)
    keystrokes.sort(key=lambda k: k.time)
    return keystrokes


def drive_typing_session(session, config: TypingBurstConfig) -> None:
    """Schedule a typing workload onto a :class:`StarSession`.

    Each site keeps a cursor at the end of its most recent insertion
    (clamped to the live document length at generation time).
    """
    from repro.ot.operations import Insert

    cursors: dict[int, int] = {site: 0 for site in range(1, config.n_sites + 1)}

    for keystroke in typing_burst_schedule(config):
        client = session.client(keystroke.site)

        def press(client=client, keystroke=keystroke) -> None:
            cursor = min(cursors[keystroke.site], len(client.document))
            client.generate(Insert(keystroke.char, cursor))
            cursors[keystroke.site] = cursor + 1

        session.sim.schedule(keystroke.time, press)
