"""The paper's Fig. 2 / Fig. 3 collaborative-editing scenario, scripted.

Four operations across three client sites plus the notifier:

* ``O_1`` at site 1, ``O_2`` and ``O_3`` at site 2, ``O_4`` at site 3;
* arrival order at site 0 is ``O_2, O_1, O_4, O_3``;
* per-site execution orders match Fig. 2 exactly
  (site 1: ``O_1 O_2 O_4 O_3``; site 2: ``O_2 O_1 O_3 O_4``;
  site 3: ``O_2 O_4 O_1 O_3``).

Operation contents: the paper fixes ``O_1 = Insert["12", 1]`` and
``O_2 = Delete[3, 2]`` on the initial document ``"ABCDE"`` (Section 2.2)
but leaves ``O_3``/``O_4`` abstract; we pick concrete contents that stay
in range under every execution order so the same script drives both the
transformation-off (Fig. 2, divergence/intention-violation) and
transformation-on (Fig. 3, convergence) experiments.

Timing: generation instants and fixed per-channel latencies are chosen
so every ordering constraint of the figures holds; the module-level
constants below document the derivation and are asserted in the tests.

``FIG3_EXPECTED`` records every timestamp, state-vector value, history-
buffer content and concurrency verdict printed in the paper's Section 5
walkthrough; the FIG3 integration test replays the script and asserts
each one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.channel import FixedLatency, LatencyModel
from repro.ot.operations import Delete, Insert, Operation

FIG2_INITIAL_DOCUMENT = "ABCDE"

# Fixed one-way latency between each client and the notifier.
FIG_LATENCIES = {1: 1.0, 2: 0.5, 3: 0.3}


@dataclass(frozen=True)
class ScriptedOp:
    """One scripted operation: who generates what, and when."""

    op_id: str
    site: int
    time: float
    op: Operation


def fig_latency_factory(source: int, dest: int) -> LatencyModel:
    """Latency model for the Fig. 2/3 star channels."""
    client = source if source != 0 else dest
    return FixedLatency(FIG_LATENCIES[client])


def fig3_script() -> list[ScriptedOp]:
    """The four operations with timing that reproduces the figures.

    Derived timeline (latencies above):

    * ``O_2`` gen 1.0 @s2 -> s0 at 1.5; ``O_2'`` reaches s1 at 2.5, s3 at 1.8
    * ``O_1`` gen 1.2 @s1 -> s0 at 2.2; ``O_1'`` reaches s2 at 2.7, s3 at 2.5
    * ``O_4`` gen 2.0 @s3 (after ``O_2'`` at 1.8, before ``O_1'`` at 2.5)
      -> s0 at 2.3; ``O_4'`` reaches s1 at 3.3, s2 at 2.8
    * ``O_3`` gen 2.75 @s2 (after ``O_1'`` at 2.7, before ``O_4'`` at 2.8)
      -> s0 at 3.25; ``O_3'`` reaches s1 at 4.25, s3 at 3.55
    """
    return [
        ScriptedOp("O2", site=2, time=1.0, op=Delete(3, 2)),
        ScriptedOp("O1", site=1, time=1.2, op=Insert("12", 1)),
        ScriptedOp("O4", site=3, time=2.0, op=Insert("xy", 2)),
        ScriptedOp("O3", site=2, time=2.75, op=Delete(1, 0)),
    ]


def fig2_intention_example() -> tuple[str, Operation, Operation, str, str]:
    """The paper's Section 2.2 intention-violation example.

    Returns ``(document, O_1, O_2, intention_preserved, naive_at_site_1)``:
    executing ``O_1`` then untransformed ``O_2`` on ``"ABCDE"`` yields
    ``"A1DE"`` although the intention-preserved result is ``"A12B"``.
    """
    return FIG2_INITIAL_DOCUMENT, Insert("12", 1), Delete(3, 2), "A12B", "A1DE"


# Every value printed in the paper's Section 5 walkthrough.
FIG3_EXPECTED = {
    # Compressed timestamps assigned by the generating clients.
    "client_timestamps": {"O2": [0, 1], "O1": [0, 1], "O4": [1, 1], "O3": [1, 2]},
    # Per-destination compressed timestamps of the notifier's broadcasts.
    "broadcast_timestamps": {
        ("O2'", 1): [1, 0],
        ("O2'", 3): [1, 0],
        ("O1'", 2): [1, 1],
        ("O1'", 3): [2, 0],
        ("O4'", 1): [2, 1],
        ("O4'", 2): [2, 1],
        ("O3'", 1): [3, 1],
        ("O3'", 3): [3, 1],
    },
    # Full SV_0 snapshots timestamping the notifier's buffered operations.
    "notifier_buffer_timestamps": {
        "O2'": [0, 1, 0],
        "O1'": [1, 1, 0],
        "O4'": [1, 1, 1],
        "O3'": [1, 2, 1],
    },
    # History-buffer contents (operation ids, execution order) at the end.
    "final_hb": {
        0: ["O2'", "O1'", "O4'", "O3'"],
        1: ["O1", "O2'", "O4'", "O3'"],
        2: ["O2", "O1'", "O3", "O4'"],
        3: ["O2'", "O4", "O1'", "O3'"],
    },
    # Concurrency verdicts from the walkthrough: (site, new op, buffered op).
    "verdicts": {
        (1, "O2'", "O1"): True,
        (0, "O1", "O2'"): True,
        (2, "O1'", "O2"): False,
        (3, "O1'", "O2'"): False,
        (3, "O1'", "O4"): True,
        (0, "O4", "O2'"): False,
        (0, "O4", "O1'"): True,
        (1, "O4'", "O1"): False,
        (1, "O4'", "O2'"): False,
        (2, "O4'", "O2"): False,
        (2, "O4'", "O1'"): False,
        (2, "O4'", "O3"): True,
        (0, "O3", "O2'"): False,
        (0, "O3", "O1'"): False,
        (0, "O3", "O4'"): True,
        (1, "O3'", "O1"): False,
        (1, "O3'", "O2'"): False,
        (1, "O3'", "O4'"): False,
        (3, "O3'", "O2'"): False,
        (3, "O3'", "O4"): False,
        (3, "O3'", "O1'"): False,
    },
    # The paper's concurrent pairs among original operations (Section 2.4).
    "concurrent_pairs": {
        frozenset(("O1", "O2")),
        frozenset(("O1", "O4")),
        frozenset(("O3", "O4")),
    },
    "causal_pairs": {("O1", "O3"), ("O2", "O3"), ("O2", "O4")},
    # Per-site execution orders (Fig. 2), with notifier outputs primed.
    "execution_orders": {
        0: ["O2'", "O1'", "O4'", "O3'"],
        1: ["O1", "O2'", "O4'", "O3'"],
        2: ["O2", "O1'", "O3", "O4'"],
        3: ["O2'", "O4", "O1'", "O3'"],
    },
    # Convergent final document for the concrete op contents above.
    "final_document": "12Bxy",
    # Divergent finals in the transformation-off (Fig. 2) run.
    "fig2_final_documents": {
        0: "1xy2B",
        1: "1xyDE",
        2: "12xyB",
        3: "12Bxy",
    },
}
