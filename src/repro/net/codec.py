"""Binary wire codec for the star protocol.

The byte-accounting used by the overhead experiments (CLAIM-OVH,
CLAIM-E2E) is grounded here: messages really do serialise to the sizes
the accounting model charges.  The format is a simple length-prefixed
tag-value encoding:

* integers: unsigned 32-bit big-endian (the shared ``INT_WIDTH = 4``);
* strings: u32 length + UTF-8 bytes;
* a compressed timestamp: exactly two u32 -- the paper's constant;
* operations: 1-byte tag + fields (``Insert``: pos + text; ``Delete``:
  pos + count; groups: member count + members).

``encode_op_message`` / ``decode_op_message`` round-trip the full
:class:`repro.editor.messages.OpMessage`; the property suite checks
``decode(encode(m)) == m`` and that measured sizes match
:func:`repro.net.transport.measure_payload_bytes` within the codec's
framing overhead.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.timestamp import CompressedTimestamp
from repro.net.transport import INT_WIDTH
from repro.obs.profiler import profiled
from repro.ot.operations import Delete, Identity, Insert, Operation, OperationGroup

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

TAG_INSERT = 0x01
TAG_DELETE = 0x02
TAG_IDENTITY = 0x03
TAG_GROUP = 0x04

#: Version tag of the *optional trailer* appended after the operation
#: body of an encoded :class:`~repro.editor.messages.OpMessage`.  The
#: original (version-1) encoding ends exactly at the operation and has
#: no version field at all, so -- like the TelemetryFrame v2 extension
#: -- new optional fields live in a versioned trailer: absent for plain
#: messages (byte-identical to v1, keeping the paper's byte accounting
#: exact), present when the message carries extension fields.  A
#: decoder seeing trailing bytes reads the trailer version first and
#: rejects versions it does not know.
OP_TRAILER_VERSION = 2


class CodecError(ValueError):
    """Raised on malformed wire data."""


class Writer:
    """An append-only byte buffer with typed writers."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def u8(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFF:
            raise CodecError(f"u8 out of range: {value}")
        self._chunks.append(bytes([value]))
        return self

    def u32(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFFFFFFFF:
            raise CodecError(f"u32 out of range: {value}")
        self._chunks.append(_U32.pack(value))
        return self

    def string(self, value: str) -> "Writer":
        data = value.encode("utf-8")
        self.u32(len(data))
        self._chunks.append(data)
        return self

    def f64(self, value: float) -> "Writer":
        self._chunks.append(_F64.pack(value))
        return self

    def raw(self, data: bytes) -> "Writer":
        """Append pre-encoded bytes verbatim (for embedded messages)."""
        self._chunks.append(data)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)


class Reader:
    """A cursor over received bytes with typed readers."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise CodecError(
                f"truncated message: wanted {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def string(self) -> str:
        length = self.u32()
        return self._take(length).decode("utf-8")

    def f64(self) -> float:
        return float(_F64.unpack(self._take(8))[0])

    def raw(self, n: int) -> bytes:
        """Take ``n`` bytes verbatim (for embedded messages)."""
        return self._take(n)

    def done(self) -> bool:
        return self._pos == len(self._data)

    def expect_done(self) -> None:
        if not self.done():
            raise CodecError(
                f"{len(self._data) - self._pos} trailing bytes after message"
            )


# -- operations ---------------------------------------------------------------


def encode_operation(op: Operation, writer: Writer) -> None:
    """Serialise a positional operation (or group)."""
    if isinstance(op, Insert):
        writer.u8(TAG_INSERT).u32(op.pos).string(op.text)
    elif isinstance(op, Delete):
        writer.u8(TAG_DELETE).u32(op.pos).u32(op.count)
    elif isinstance(op, Identity):
        writer.u8(TAG_IDENTITY)
    elif isinstance(op, OperationGroup):
        writer.u8(TAG_GROUP).u32(len(op.members))
        for member in op.members:
            encode_operation(member, writer)
    else:
        raise CodecError(f"cannot encode operation type {type(op).__name__}")


def decode_operation(reader: Reader) -> Operation:
    tag = reader.u8()
    if tag == TAG_INSERT:
        pos = reader.u32()
        return Insert(reader.string(), pos)
    if tag == TAG_DELETE:
        pos = reader.u32()
        return Delete(reader.u32(), pos)
    if tag == TAG_IDENTITY:
        return Identity()
    if tag == TAG_GROUP:
        count = reader.u32()
        return OperationGroup(tuple(decode_operation(reader) for _ in range(count)))
    raise CodecError(f"unknown operation tag 0x{tag:02x}")


# -- timestamps ---------------------------------------------------------------


def encode_timestamp(ts: CompressedTimestamp, writer: Writer) -> None:
    """Exactly ``2 * INT_WIDTH`` bytes -- the paper's constant."""
    writer.u32(ts.first).u32(ts.second)


def decode_timestamp(reader: Reader) -> CompressedTimestamp:
    first = reader.u32()
    return CompressedTimestamp(first, reader.u32())


TIMESTAMP_WIRE_BYTES = 2 * INT_WIDTH


# -- whole messages -----------------------------------------------------------


@profiled("codec.encode")
def encode_op_message(message: Any) -> bytes:
    """Serialise a :class:`repro.editor.messages.OpMessage` to bytes.

    A message without extension fields encodes byte-identically to the
    original format; ``origin_wall`` (when set) travels in the
    :data:`OP_TRAILER_VERSION` trailer: u8 trailer version, u8 presence
    bitmap (bit 0 = origin_wall), then the present fields in bitmap
    order.
    """
    writer = Writer()
    encode_timestamp(message.timestamp, writer)
    writer.u32(message.origin_site)
    writer.string(message.op_id)
    writer.string(message.source_op_id or "")
    encode_operation(message.op, writer)
    origin_wall = getattr(message, "origin_wall", None)
    if origin_wall is not None:
        writer.u8(OP_TRAILER_VERSION).u8(0x01).f64(origin_wall)
    return writer.getvalue()


@profiled("codec.decode")
def decode_op_message(data: bytes) -> Any:
    from repro.editor.messages import OpMessage

    reader = Reader(data)
    ts = decode_timestamp(reader)
    origin_site = reader.u32()
    op_id = reader.string()
    source_op_id = reader.string() or None
    op = decode_operation(reader)
    origin_wall = None
    if not reader.done():
        version = reader.u8()
        if version != OP_TRAILER_VERSION:
            raise CodecError(f"unknown op-message trailer version {version}")
        present = reader.u8()
        if present & ~0x01:
            raise CodecError(
                f"unknown op-message trailer fields 0x{present:02x}"
            )
        if present & 0x01:
            origin_wall = reader.f64()
    reader.expect_done()
    return OpMessage(
        op=op,
        timestamp=ts,
        origin_site=origin_site,
        op_id=op_id,
        source_op_id=source_op_id,
        origin_wall=origin_wall,
    )
