"""The scheduler abstraction: virtual time and wall-clock time, one seam.

Every layer of the protocol stack that needs *time* -- FIFO channel
delivery, retransmit timers, liveness-probe heartbeats, fault-plan
outage windows, session run loops -- talks to a :class:`Scheduler`, not
to the discrete-event :class:`~repro.net.simulator.Simulator` directly.
Two implementations satisfy the protocol:

* :class:`repro.net.simulator.Simulator` -- deterministic virtual time.
  Every experiment, test and benchmark runs here; a seed reproduces an
  execution exactly.
* :class:`AsyncioScheduler` (below) -- wall-clock time over an asyncio
  event loop.  The cluster harness (:mod:`repro.cluster`) runs the
  *identical* editor classes over real TCP sockets with this scheduler;
  retransmit timers and probe heartbeats become ``loop.call_later``
  deadlines.

The protocol is structural (:class:`typing.Protocol`): ``Simulator``
predates it and conforms without inheriting anything.  Contract, shared
by both implementations and pinned by the conformance suite
(``tests/unit/test_scheduler_conformance.py``):

* ``now`` is a monotonically non-decreasing float, starting near 0;
* callbacks scheduled for the same deadline fire in scheduling order;
* ``schedule`` refuses times in the past and ``schedule_after`` refuses
  negative delays (:class:`SchedulingError`);
* ``cancel`` is O(1) and idempotent (lazy removal);
* ``run`` drives the loop to quiescence, a time bound, or an event
  budget, and returns the number of callbacks executed.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, runtime_checkable


class SchedulingError(RuntimeError):
    """Raised on scheduler misuse (scheduling in the past, nested runs)."""


@runtime_checkable
class Scheduler(Protocol):
    """What the protocol stack sees of time (structural typing).

    ``schedule``/``schedule_after`` return an opaque cancellation handle
    accepted by ``cancel``; handles are single-use and cancellation is
    idempotent.  ``next_message_id`` allocates ids unique within this
    scheduler -- per-scheduler (not process-global) so two sessions in
    one process produce identical id streams for identical seeds.
    """

    @property
    def now(self) -> float: ...

    @property
    def pending_events(self) -> int: ...

    def schedule(self, time: float, callback: Callable[[], None]) -> Any: ...

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Any: ...

    def cancel(self, event: Any) -> None: ...

    def run(self, until: float | None = None, max_events: int | None = None) -> int: ...

    def next_message_id(self) -> int: ...


@dataclass(order=True)
class _WallEvent:
    """One scheduled callback; ordered by (time, seq) like the simulator's."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class AsyncioScheduler:
    """Wall-clock :class:`Scheduler` over an asyncio event loop.

    Keeps its **own** ``(time, seq)`` heap rather than one asyncio timer
    per callback: asyncio's ``TimerHandle`` ordering is undefined for
    equal deadlines, while the scheduler contract requires
    scheduling-order execution (the reliability protocol arms several
    timers per virtual instant and the conformance suite pins the
    order).  A single ``call_later`` handle is armed for the earliest
    deadline; when it fires, every due event runs in heap order and the
    handle re-arms.

    ``now`` is seconds since construction (``loop.time()`` minus an
    epoch), so wall-clock sessions start near ``t = 0`` like simulated
    ones.  Two modes of driving the heap coexist:

    * **owned loop** (constructed outside any running loop): ``run()``
      drives the loop until quiescence / a bound, mirroring
      ``Simulator.run``;
    * **shared loop** (constructed inside a running loop, e.g. a cluster
      process): the armed handle fires due events while the surrounding
      coroutines run; calling ``run()`` here raises
      :class:`SchedulingError` (the loop is already being driven).
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                loop = asyncio.new_event_loop()
        self._loop = loop
        self._epoch = loop.time()
        self._queue: list[_WallEvent] = []
        self._seq = itertools.count()
        self._pending = 0
        self._processed = 0
        self._message_ids = itertools.count()
        self._handle: Optional[asyncio.TimerHandle] = None
        self._budget: Optional[int] = None  # run()'s max_events, while active

    # -- clock -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds of wall-clock time since this scheduler was built."""
        return self._loop.time() - self._epoch

    @property
    def pending_events(self) -> int:
        """Callbacks scheduled but not yet executed (O(1) live counter)."""
        return self._pending

    @property
    def processed_events(self) -> int:
        """Total callbacks executed so far."""
        return self._processed

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The event loop this scheduler schedules on."""
        return self._loop

    def next_message_id(self) -> int:
        """Allocate a message id unique within this scheduler."""
        return next(self._message_ids)

    # -- scheduling --------------------------------------------------------------

    def schedule(self, time: float, callback: Callable[[], None]) -> _WallEvent:
        """Schedule ``callback`` at absolute scheduler time ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self._push(time, callback)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> _WallEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay}")
        # ``now`` is read once: re-checking inside ``schedule`` could see
        # the wall clock already past ``now + 0`` and raise spuriously.
        return self._push(self.now + delay, callback)

    def cancel(self, event: _WallEvent) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancelled = True
            self._pending -= 1

    def _push(self, time: float, callback: Callable[[], None]) -> _WallEvent:
        event = _WallEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        self._pending += 1
        self._rearm()
        return event

    # -- firing ------------------------------------------------------------------

    def _peek(self) -> Optional[_WallEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def _rearm(self) -> None:
        """Point the single asyncio timer at the earliest live deadline."""
        head = self._peek()
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if head is not None:
            self._handle = self._loop.call_later(
                max(0.0, head.time - self.now), self._fire
            )

    def _fire(self) -> int:
        """Run every due event in (time, seq) order; re-arm; return count."""
        self._handle = None
        ran = 0
        while True:
            head = self._peek()
            if head is None or head.time > self.now:
                break
            if self._budget is not None and self._budget <= 0:
                break
            heapq.heappop(self._queue)
            self._pending -= 1
            if self._budget is not None:
                self._budget -= 1
            head.callback()
            self._processed += 1
            ran += 1
        self._rearm()
        return ran

    # -- driving (owned-loop mode) -----------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run to quiescence, a time bound, or an event-count bound.

        Returns the number of callbacks executed by this call.  Only
        valid when this scheduler owns its loop; inside a running loop
        the surrounding coroutines drive the armed timer instead.
        """
        if self._loop.is_running():
            raise SchedulingError(
                "run() cannot be nested inside the running event loop; "
                "await the workload's own coroutines instead"
            )
        start = self._processed
        self._budget = max_events
        try:
            self._loop.run_until_complete(self._drain(until))
        finally:
            self._budget = None
        return self._processed - start

    async def _drain(self, until: float | None) -> None:
        while True:
            self._fire()
            head = self._peek()
            if head is None:
                return
            if until is not None and head.time > until:
                return
            if self._budget is not None and self._budget <= 0:
                return
            await asyncio.sleep(max(0.0, head.time - self.now))
