"""Discrete-event network simulation substrate.

The paper's system ran as Java applets talking TCP to a Web-server
notifier over the Internet.  The algorithm relies on exactly two
transport properties:

1. a **star topology** -- clients talk only to the notifier;
2. **FIFO channels** -- per-connection delivery order equals send order
   (the TCP property the paper leans on to simplify formulas 4->5 and
   6->7).

This subpackage provides a deterministic discrete-event simulator whose
channels guarantee those properties while letting experiments inject
arbitrary, per-channel, possibly random latency -- a strictly more
adversarial environment than a single live demo, and reproducible under
a seed.

When faults are injected (:mod:`repro.net.faults` can drop, duplicate,
or outage messages), the transport layer (:mod:`repro.net.reliability`)
rebuilds the two guarantees above on top of the damaged channels; the
shared :class:`~repro.net.holdback.HoldbackQueue` is its reorder buffer
and the mesh editor's causal-delivery buffer alike.
"""

from repro.net.scheduler import AsyncioScheduler, Scheduler, SchedulingError
from repro.net.simulator import SimulationError, Simulator
from repro.net.channel import (
    FIFOChannel,
    FixedLatency,
    JitterLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.holdback import HoldbackQueue
from repro.net.reliability import (
    RawTransport,
    ReliabilityConfig,
    ReliabilityStats,
    ReliablePacket,
    ReliableEndpoint,
    RetransmitPolicy,
    Transport,
    TransportError,
    build_transport,
)
from repro.net.transport import Envelope, measure_payload_bytes
from repro.net.topology import StarTopology, MeshTopology
from repro.net.process import SimProcess

__all__ = [
    "Simulator",
    "SimulationError",
    "Scheduler",
    "SchedulingError",
    "AsyncioScheduler",
    "FIFOChannel",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "JitterLatency",
    "Envelope",
    "measure_payload_bytes",
    "StarTopology",
    "MeshTopology",
    "SimProcess",
    "HoldbackQueue",
    "RawTransport",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReliablePacket",
    "ReliableEndpoint",
    "RetransmitPolicy",
    "Transport",
    "TransportError",
    "build_transport",
]
