"""A shared hold-back queue for per-sender ordered delivery.

Both delivery disciplines in this codebase are *per-sender sequenced*:

* the reliability transport (:mod:`repro.net.reliability`) releases each
  peer's packets in exact sequence order (``0, 1, 2, ...``), holding
  back anything that arrives above the next expected seq until
  retransmission fills the gap;
* the mesh editor (:mod:`repro.editor.mesh`) delivers causal broadcasts:
  an operation from site ``s`` with per-site index ``k`` is deliverable
  once the local clock expects exactly ``k`` from ``s`` *and* an extra
  cross-stream predicate holds (every other component of its vector
  clock is already covered).

Both previously kept their own ad-hoc buffers; the mesh one was a flat
list rescanned in full on every delivery attempt -- O(held^2) on a long
causal chain.  This queue indexes items by ``(stream, seq)`` so the
transport pops exact sequence numbers in O(1), and the mesh drain only
ever probes each stream's *next expected* item instead of rescanning
everything held (O(deliveries x streams) worst case).
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterator, Optional, TypeVar

from repro.obs.profiler import profiled

T = TypeVar("T")

Stream = Hashable


class HoldbackOverflow(RuntimeError):
    """The hold-back queue exceeded its configured capacity.

    An unbounded reorder buffer turns a long outage into unbounded
    memory growth: every packet that arrives above the gap is held
    forever while retransmissions fail to fill it.  A bounded queue
    instead fails loudly at its high-water mark, which the caller can
    surface (the reliability transport emits a ``holdback_overflow``
    trace event before re-raising).
    """

    def __init__(self, stream: Stream, seq: int, capacity: int) -> None:
        super().__init__(
            f"hold-back queue over capacity {capacity}: cannot hold "
            f"(stream={stream!r}, seq={seq})"
        )
        self.stream = stream
        self.seq = seq
        self.capacity = capacity


class HoldbackQueue(Generic[T]):
    """Out-of-order items indexed by ``(stream, seq)`` until deliverable.

    ``max_held`` records the peak simultaneous occupancy over the
    queue's lifetime -- the observability layer reports it as the
    high-water mark of the reorder buffer.  ``capacity`` bounds that
    occupancy: holding an item beyond it raises
    :class:`HoldbackOverflow` instead of growing without limit
    (``None`` keeps the legacy unbounded behaviour).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._streams: dict[Stream, dict[int, T]] = {}
        self._held = 0
        self.max_held = 0

    @profiled("holdback.hold")
    def hold(self, stream: Stream, seq: int, item: T) -> bool:
        """Buffer ``item`` at ``(stream, seq)``.

        Returns False (and keeps the original) if that slot is already
        held -- the duplicate-detection the reliability layer counts.
        Raises :class:`HoldbackOverflow` if holding the item would
        exceed ``capacity``.
        """
        slots = self._streams.setdefault(stream, {})
        if seq in slots:
            return False
        if self.capacity is not None and self._held >= self.capacity:
            if not slots:
                del self._streams[stream]
            raise HoldbackOverflow(stream, seq, self.capacity)
        slots[seq] = item
        self._held += 1
        if self._held > self.max_held:
            self.max_held = self._held
        return True

    @profiled("holdback.pop")
    def pop(self, stream: Stream, seq: int) -> Optional[T]:
        """Remove and return the item held at ``(stream, seq)``, if any."""
        slots = self._streams.get(stream)
        if slots is None:
            return None
        item = slots.pop(seq, None)
        if item is not None:
            self._held -= 1
            if not slots:
                del self._streams[stream]
        return item

    def clear(self, stream: Optional[Stream] = None) -> int:
        """Drop everything held for ``stream`` (or all streams).

        Used on epoch resets: a peer's restart voids its previous
        incarnation's reorder buffer.  Returns the number dropped.
        """
        if stream is None:
            dropped = self._held
            self._streams = {}
            self._held = 0
            return dropped
        slots = self._streams.pop(stream, None)
        if slots is None:
            return 0
        self._held -= len(slots)
        return len(slots)

    def drain(
        self,
        next_seq: Callable[[Stream], int],
        ready: Optional[Callable[[T], bool]] = None,
    ) -> Iterator[T]:
        """Yield deliverable items until none remains deliverable.

        ``next_seq(stream)`` must return the seq the consumer currently
        expects on that stream; it is re-evaluated after every yield, so
        consuming an item (which typically advances the consumer's
        clock) immediately exposes its successors.  ``ready`` is an
        optional extra gate evaluated on the head item (the mesh's
        cross-stream causality check).

        Only stream *heads* are probed -- never the whole buffer -- which
        is what fixes the O(held^2) rescan the mesh editor used to do.
        """
        progressed = True
        while progressed:
            progressed = False
            for stream in list(self._streams):
                while True:
                    slots = self._streams.get(stream)
                    if slots is None:
                        break
                    want = next_seq(stream)
                    item = slots.get(want)
                    if item is None or (ready is not None and not ready(item)):
                        break
                    self.pop(stream, want)
                    yield item
                    progressed = True

    @property
    def depth(self) -> int:
        """Items currently held, as an explicit gauge for telemetry.

        Identical to ``len(queue)``; named so gauge-collection code
        reads as what it measures rather than a container protocol.
        """
        return self._held

    def __len__(self) -> int:
        return self._held

    def __bool__(self) -> bool:
        return self._held > 0
