"""Seeded fault injection for the simulated network.

The paper's compression argument (formulas 4->5 and 6->7) rests on FIFO
TCP channels; a production Web-based REDUCE deployment additionally
faces packet loss, duplicate delivery, burst outages and client
crash/restart.  This module injects exactly those faults *underneath*
the FIFO guarantee -- the network may lose or duplicate a message but it
never reorders what it actually delivers, which is how a TCP-like
transport misbehaves when connections drop and are re-established.

Pieces
------
* :class:`ChannelFaults` -- per-channel drop/duplicate probabilities and
  burst-outage windows;
* :class:`ClientCrash` -- a scheduled crash/restart of one client site;
* :class:`NotifierCrash` -- a scheduled permanent crash of site 0,
  recovered by successor election and promotion rather than restart;
* :class:`FaultPlan` -- a seeded, fully deterministic plan combining the
  above.  Identical plans reproduce identical fault sequences;
* :class:`FaultyChannel` -- a :class:`~repro.net.channel.FIFOChannel`
  that applies a :class:`ChannelFaults` draw to every send.

Recovery from these faults is the job of the reliability protocol in
:mod:`repro.net.reliability` (sequence numbers, retransmission,
dedup) and the editor's snapshot resynchronisation path; this module only breaks things.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.net.channel import FIFOChannel, LatencyModel
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope


@dataclass(frozen=True)
class ChannelFaults:
    """Fault parameters for one unidirectional channel.

    ``drop_p``/``dup_p`` are per-message probabilities; ``outages`` are
    half-open virtual-time windows ``[start, end)`` during which every
    message on the channel is lost (a burst outage / dead link).
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_p < 1.0:
            raise ValueError(f"drop_p must be in [0, 1), got {self.drop_p}")
        if not 0.0 <= self.dup_p <= 1.0:
            raise ValueError(f"dup_p must be in [0, 1], got {self.dup_p}")
        for start, end in self.outages:
            if start < 0 or end <= start:
                raise ValueError(f"outage windows need 0 <= start < end, got ({start}, {end})")

    def in_outage(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.outages)


@dataclass(frozen=True)
class ClientCrash:
    """A scheduled crash of client ``site`` with a later restart.

    Between ``at`` and ``restart_at`` the client is down: volatile state
    (document, history buffer, pending list, state vector, reliability
    windows) is lost and every arriving message is dropped on the floor.
    On restart the client resynchronises with the notifier via the
    snapshot path.
    """

    site: int
    at: float
    restart_at: float

    def __post_init__(self) -> None:
        if self.site <= 0:
            raise ValueError(f"only client sites (>= 1) can crash, got {self.site}")
        if not 0 <= self.at < self.restart_at:
            raise ValueError(
                f"need 0 <= at < restart_at, got at={self.at}, restart_at={self.restart_at}"
            )


@dataclass(frozen=True)
class NotifierCrash:
    """A scheduled permanent crash of the notifier (site 0).

    The centre of the star goes down at ``at`` and never comes back;
    recovery is by *failover*, not restart: a surviving client detects
    the silence (retransmit-budget exhaustion, confirmed by a bounded
    liveness probe), is elected successor, reconstructs the notifier
    state from per-client contributions and re-admits every survivor
    under a new notifier epoch (see :mod:`repro.editor.failover`).

    Detection is activity-triggered -- some client must have traffic
    toward the dead centre for the retransmit budget to run out -- so a
    meaningful plan schedules the crash *before* the workload's last
    edits.
    """

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"need at >= 0, got {self.at}")


@dataclass
class FaultPlan:
    """A deterministic, seeded fault schedule for one session.

    ``default`` applies to every channel unless overridden in
    ``per_channel`` (keyed by ``(source_pid, dest_pid)``).  Each channel
    draws from its own child RNG derived from ``seed`` and the channel
    endpoints, so adding a channel never perturbs another channel's
    fault sequence.
    """

    seed: int = 0
    default: ChannelFaults = field(default_factory=ChannelFaults)
    per_channel: dict[tuple[int, int], ChannelFaults] = field(default_factory=dict)
    crashes: tuple[ClientCrash, ...] = ()
    notifier_crash: NotifierCrash | None = None

    def faults_for(self, source: int, dest: int) -> ChannelFaults:
        return self.per_channel.get((source, dest), self.default)

    def rng_for(self, source: int, dest: int) -> random.Random:
        # Mix with large odd constants so (1, 2) and (2, 1) decorrelate.
        return random.Random((self.seed << 20) ^ (source * 1315423911) ^ (dest * 2654435761))

    def channel_factory(
        self,
    ) -> Callable[[Scheduler, int, int, LatencyModel, Callable[[Envelope], None]], FIFOChannel]:
        """A factory suitable for :class:`repro.net.topology.StarTopology`."""

        def build(sim, source, dest, latency, on_deliver):
            return FaultyChannel(
                sim,
                source,
                dest,
                latency,
                on_deliver,
                faults=self.faults_for(source, dest),
                rng=self.rng_for(source, dest),
            )

        return build


@dataclass
class FaultStats:
    """What the network did to one channel's traffic.

    Sequenced data packets and pure acknowledgements (``kind == "ack"``,
    unsequenced) are counted separately: a lost data packet must be
    retransmitted, while a lost ack is healed by any later cumulative
    ack without retransmission -- the distinction the fault-tolerance
    invariants rest on.
    """

    dropped: int = 0
    duplicated: int = 0
    outage_dropped: int = 0
    acks_dropped: int = 0
    acks_outage_dropped: int = 0

    def lost(self) -> int:
        """Sequenced data packets the network destroyed."""
        return self.dropped + self.outage_dropped

    def lost_acks(self) -> int:
        """Pure acknowledgements the network destroyed."""
        return self.acks_dropped + self.acks_outage_dropped


class FaultyChannel(FIFOChannel):
    """A FIFO channel that loses and duplicates messages, seeded.

    Drops and duplicates are drawn per message from the channel's own
    RNG.  Delivered copies (including duplicates) keep the FIFO clamp of
    the base class, so the delivered stream is never reordered -- losses
    create gaps and duplicates create repeats, exactly the adversary the
    reliability protocol must absorb while ``fifo_respected()`` stays
    true.
    """

    def __init__(
        self,
        sim: Scheduler,
        source: int,
        dest: int,
        latency: LatencyModel,
        on_deliver: Callable[[Envelope], None],
        faults: ChannelFaults,
        rng: random.Random,
    ) -> None:
        super().__init__(sim, source, dest, latency, on_deliver)
        self.faults = faults
        self.rng = rng
        self.fault_stats = FaultStats()

    def send(self, envelope: Envelope) -> float:
        self._admit(envelope)  # the sender paid the wire cost either way
        is_ack = envelope.kind == "ack"
        if self.faults.in_outage(self.sim.now):
            if is_ack:
                self.fault_stats.acks_outage_dropped += 1
            else:
                self.fault_stats.outage_dropped += 1
            return self.sim.now
        if self.rng.random() < self.faults.drop_p:
            if is_ack:
                self.fault_stats.acks_dropped += 1
            else:
                self.fault_stats.dropped += 1
            return self.sim.now
        delivery = self._schedule_delivery(envelope)
        if self.rng.random() < self.faults.dup_p:
            self.fault_stats.duplicated += 1
            self._schedule_delivery(envelope)
        return delivery
