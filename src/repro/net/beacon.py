"""The UDP telemetry sideband: datagram beacons beside the TCP gossip.

Telemetry normally reaches the monitor two ways -- the per-process JSONL
stream on disk and the TELEMETRY frames gossiped over the cluster's TCP
connections.  Both go dark in exactly the situations telemetry matters
most: the notifier dying takes the gossip hub with it, and a hung
process stops flushing its stream.  The beacon is the third path: every
process fires each frame as one UDP datagram straight at the monitor's
port, connectionless and loss-tolerant, so the monitor keeps rendering
through the failover window.

The datagram body is the **same bytes** as the TCP TELEMETRY frame body
(:func:`repro.net.wire.encode_telemetry_frame`: tag byte, schema
version, fixed-width gauges) -- one codec, two carriages -- minus the
TCP length prefix, which UDP's own datagram framing makes redundant.
Frames fit comfortably in one datagram (well under any MTU), so there
is no fragmentation protocol; a frame that is lost is simply
superseded by the next sample.  Receivers dedupe by ``(site, seq)``
against the other arrival paths, so a frame arriving by both TCP and
UDP is counted once.

Everything is best-effort by design: a sender with no reachable
receiver drops silently (telemetry must never take the protocol down),
and a receiver tolerates malformed datagrams by dropping them.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.net.wire import FRAME_TELEMETRY, WireError, decode_frame
from repro.obs.telemetry import TelemetryFrame

#: Largest datagram a receiver will accept.  Telemetry frame bodies are
#: tens of bytes; anything near this bound is not ours.
MAX_DATAGRAM_BYTES = 2048


class BeaconSender:
    """Fire-and-forget datagram sender for encoded telemetry bodies.

    One UDP socket, non-blocking; :meth:`send` never raises on network
    trouble (unreachable port, full buffer) -- the frame is simply lost,
    like any datagram.  ``sent`` counts the datagrams actually handed to
    the OS, for tests and gauges.
    """

    def __init__(self, host: str, port: int) -> None:
        self.address = (host, port)
        self.sent = 0
        self._sock: Optional[socket.socket] = socket.socket(
            socket.AF_INET, socket.SOCK_DGRAM
        )
        self._sock.setblocking(False)

    def send(self, body: bytes) -> bool:
        """Ship one frame body; True iff the OS accepted the datagram."""
        if self._sock is None:
            return False
        try:
            self._sock.sendto(body, self.address)
        except OSError:
            return False
        self.sent += 1
        return True

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "BeaconSender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class BeaconReceiver:
    """Non-blocking fan-in socket for telemetry datagrams.

    Binds ``host:port`` (port 0 picks a free one -- read :attr:`port`
    back for handing to senders) and decodes each arrived datagram with
    the shared wire codec.  :meth:`drain` empties the OS buffer and
    returns the decoded frames in arrival order; datagrams that fail to
    decode, or decode to a non-telemetry frame, bump :attr:`rejected`
    and are dropped -- a stray packet on the port must not kill the
    monitor.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock: Optional[socket.socket] = socket.socket(
            socket.AF_INET, socket.SOCK_DGRAM
        )
        self._sock.bind((host, port))
        self._sock.setblocking(False)
        self.host, self.port = self._sock.getsockname()[:2]
        self.received = 0
        self.rejected = 0

    def drain(self) -> list[TelemetryFrame]:
        """Decode every datagram currently queued on the socket."""
        frames: list[TelemetryFrame] = []
        while self._sock is not None:
            try:
                body, _addr = self._sock.recvfrom(MAX_DATAGRAM_BYTES)
            except BlockingIOError:
                break
            except OSError:
                break
            if not body or body[0] != FRAME_TELEMETRY:
                self.rejected += 1
                continue
            try:
                value = decode_frame(body)
            except (WireError, ValueError):
                self.rejected += 1
                continue
            if not isinstance(value, TelemetryFrame):
                self.rejected += 1
                continue
            self.received += 1
            frames.append(value)
        return frames

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "BeaconReceiver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "MAX_DATAGRAM_BYTES",
    "BeaconReceiver",
    "BeaconSender",
]
