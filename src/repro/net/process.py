"""Base class for simulated processes."""

from __future__ import annotations

from typing import Any

from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope


class SimProcess:
    """A process attached to a scheduler with outgoing channels.

    Subclasses implement :meth:`on_message`; topology wiring (see
    :mod:`repro.net.topology`) installs the outgoing channel map.  The
    ``sim`` attribute is any :class:`~repro.net.scheduler.Scheduler` --
    the deterministic :class:`~repro.net.simulator.Simulator` in tests
    and experiments, the wall-clock
    :class:`~repro.net.scheduler.AsyncioScheduler` in cluster processes.
    The attribute keeps its historical name so editor code reads the
    same under both.
    """

    def __init__(self, sim: Scheduler, pid: int) -> None:
        self.sim = sim
        self.pid = pid
        self.out_channels: dict[int, Any] = {}  # dest pid -> FIFOChannel

    def attach_channel(self, dest: int, channel: Any) -> None:
        if dest in self.out_channels:
            raise ValueError(f"process {self.pid} already has a channel to {dest}")
        self.out_channels[dest] = channel

    def send(self, dest: int, payload: Any, timestamp_bytes: int = 0, kind: str = "op") -> None:
        """Send ``payload`` to ``dest`` over the attached FIFO channel."""
        try:
            channel = self.out_channels[dest]
        except KeyError:
            raise KeyError(
                f"process {self.pid} has no channel to {dest}; "
                f"known destinations: {sorted(self.out_channels)}"
            ) from None
        channel.send(
            Envelope(
                source=self.pid,
                dest=dest,
                payload=payload,
                timestamp_bytes=timestamp_bytes,
                kind=kind,
            )
        )

    def on_message(self, envelope: Envelope) -> None:
        """Handle a delivered message; override in subclasses."""
        raise NotImplementedError
