"""A minimal deterministic discrete-event simulator.

Events are ``(time, tie_break, callback)`` triples in a binary heap; the
tie-break is a monotonically increasing sequence number, so simultaneous
events fire in scheduling order and a given seed always reproduces the
same execution -- the property every experiment in EXPERIMENTS.md
depends on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.net.scheduler import SchedulingError


class SimulationError(SchedulingError):
    """Raised on scheduling misuse (e.g. scheduling in the past).

    Subclasses :class:`~repro.net.scheduler.SchedulingError` so callers
    holding a generic :class:`~repro.net.scheduler.Scheduler` can catch
    misuse without knowing which implementation is behind it.
    """


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event loop with virtual time.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: ...)
        sim.run()           # run to quiescence
        sim.run(until=10.0) # or bounded

    Callbacks may schedule further events; time never flows backwards.
    """

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._pending = 0  # live count of scheduled, non-cancelled events
        self._message_ids = itertools.count()

    def next_message_id(self) -> int:
        """Allocate a message id unique within this simulation.

        Per-simulator (not process-global) so two sessions built in the
        same process produce identical id streams for identical seeds.
        """
        return next(self._message_ids)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Events scheduled but not yet executed (O(1) live counter)."""
        return self._pending

    def schedule(self, time: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancelled = True
            self._pending -= 1

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._pending -= 1
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run to quiescence, a time bound, or an event-count bound.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return executed
