"""FIFO channels with pluggable latency models.

The paper's correctness arguments (the simplification of formula 4 to 5
and of formula 6 to 7) rest on the FIFO property of TCP connections.
:class:`FIFOChannel` guarantees it under *any* latency model by clamping
each delivery time to be no earlier than the previous delivery on the
same channel -- exactly how a TCP byte stream behaves when packets are
reordered underneath it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope


class LatencyModel:
    """Strategy object producing a one-way latency sample per message."""

    def sample(self) -> float:
        raise NotImplementedError


@dataclass
class FixedLatency(LatencyModel):
    """Constant latency (useful for scripted, order-exact scenarios)."""

    latency: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def sample(self) -> float:
        return self.latency


@dataclass
class UniformLatency(LatencyModel):
    """Uniform latency in ``[low, high)`` from a seeded RNG."""

    low: float
    high: float
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high})")

    def sample(self) -> float:
        return self.rng.uniform(self.low, self.high)


@dataclass
class JitterLatency(LatencyModel):
    """Log-normal latency: a long-tailed Internet-like model."""

    median: float = 0.05
    sigma: float = 0.6
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError(f"median must be > 0, got {self.median}")

    def sample(self) -> float:
        import math

        return self.rng.lognormvariate(math.log(self.median), self.sigma)


@dataclass
class ChannelStats:
    """Per-channel delivery accounting."""

    messages: int = 0
    total_bytes: int = 0
    timestamp_bytes: int = 0
    payload_bytes: int = 0


class FIFOChannel:
    """A unidirectional FIFO channel between two simulated processes.

    Messages sent through :meth:`send` are delivered to ``on_deliver``
    in send order; each delivery time is ``max(now + latency,
    last_delivery)`` so FIFO holds even when latency samples would
    reorder messages.
    """

    def __init__(
        self,
        sim: Scheduler,
        source: int,
        dest: int,
        latency: LatencyModel,
        on_deliver: Callable[[Envelope], None],
    ) -> None:
        self.sim = sim
        self.source = source
        self.dest = dest
        self.latency = latency
        self.on_deliver = on_deliver
        self.stats = ChannelStats()
        self._last_delivery = 0.0
        self._delivered_ids: list[int] = []
        self._sent_ids: list[int] = []

    def send(self, envelope: Envelope) -> float:
        """Enqueue ``envelope``; returns its delivery time."""
        self._admit(envelope)
        return self._schedule_delivery(envelope)

    def _admit(self, envelope: Envelope) -> None:
        """Validate addressing, assign the message id, account wire bytes."""
        if envelope.source != self.source or envelope.dest != self.dest:
            raise ValueError(
                f"envelope addressed {envelope.source}->{envelope.dest} sent on "
                f"channel {self.source}->{self.dest}"
            )
        if envelope.message_id is None:
            object.__setattr__(envelope, "message_id", self.sim.next_message_id())
        self.stats.messages += 1
        self.stats.total_bytes += envelope.total_bytes()
        self.stats.timestamp_bytes += envelope.timestamp_bytes
        self.stats.payload_bytes += envelope.total_bytes() - envelope.timestamp_bytes - 8

    def _schedule_delivery(self, envelope: Envelope) -> float:
        """Schedule one delivery of ``envelope``, clamped to FIFO order."""
        delivery = max(self.sim.now + self.latency.sample(), self._last_delivery)
        self._last_delivery = delivery
        self._sent_ids.append(envelope.message_id)

        def deliver() -> None:
            self._delivered_ids.append(envelope.message_id)
            self.on_deliver(envelope)

        self.sim.schedule(delivery, deliver)
        return delivery

    def fifo_respected(self) -> bool:
        """True iff every delivery so far happened in send order."""
        return self._delivered_ids == self._sent_ids[: len(self._delivered_ids)]
