"""Message envelopes and wire-size accounting.

The CLAIM-OVH benchmark compares *timestamp* bytes across clock schemes,
so every message in the simulation is wrapped in an :class:`Envelope`
that separates payload bytes from timestamp bytes.  Sizes follow the
accounting model stated in EXPERIMENTS.md: 4-byte integers, UTF-8
strings, 1-byte tags -- the same convention for every scheme so the
comparison is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

INT_WIDTH = 4  # bytes per serialised integer; shared by all schemes


def measure_payload_bytes(payload: Any) -> int:
    """Approximate serialised size of an operation payload.

    Recognises the project's operation types; falls back to ``pickle``
    for anything else (extension types).
    """
    from repro.ot.component import TextOperation
    from repro.ot.operations import Delete, Identity, Insert, OperationGroup

    if payload is None:
        return 0
    # Editor message wrappers: charge their framing plus the inner op.
    # (Duck-typed to keep transport below the editor layer.)
    if hasattr(payload, "seq") and hasattr(payload, "epoch") and hasattr(payload, "payload"):
        # Reliability envelope: seq + epoch + cumulative ack, then the body.
        return 3 * INT_WIDTH + measure_payload_bytes(payload.payload)
    if hasattr(payload, "epoch") and not hasattr(payload, "seq"):  # resync requests
        return INT_WIDTH
    if hasattr(payload, "op") and hasattr(payload, "op_id") and hasattr(payload, "origin_site"):
        return 4 + len(str(payload.op_id)) + measure_payload_bytes(payload.op)
    if hasattr(payload, "op") and hasattr(payload, "vc"):  # mesh records
        return 4 + measure_payload_bytes(payload.op)
    if hasattr(payload, "successor") and hasattr(payload, "notifier_epoch"):
        return 2 * INT_WIDTH  # failover promotions
    if hasattr(payload, "notifier_epoch") and not hasattr(payload, "document"):
        return INT_WIDTH  # failover elections
    if hasattr(payload, "received_per_origin") and hasattr(payload, "pending"):
        # Failover state contributions: SV_i, per-origin counts, the
        # stashed pending ops, and the replica document.
        size = 3 * INT_WIDTH + 2 * INT_WIDTH * len(payload.received_per_origin)
        size += sum(
            len(str(op_id)) + 1 + measure_payload_bytes(op)
            for op_id, op in payload.pending
        )
        return size + measure_payload_bytes(payload.document)
    if hasattr(payload, "document") and hasattr(payload, "base_count"):  # snapshots
        size = 4 + measure_payload_bytes(payload.document)
        for op_id in getattr(payload, "incorporated", None) or ():
            size += len(str(op_id)) + 1  # failover dedup set
        return size
    if isinstance(payload, Insert):
        return 1 + INT_WIDTH + len(payload.text.encode("utf-8"))
    if isinstance(payload, Delete):
        return 1 + 2 * INT_WIDTH
    if isinstance(payload, Identity):
        return 1
    if isinstance(payload, OperationGroup):
        return 1 + sum(measure_payload_bytes(m) for m in payload.members)
    if isinstance(payload, TextOperation):
        size = 1
        for c in payload.components:
            size += len(c.encode("utf-8")) + 1 if isinstance(c, str) else INT_WIDTH
        return size
    if isinstance(payload, (int, float)):
        return INT_WIDTH * 2
    if isinstance(payload, str):
        return len(payload.encode("utf-8")) + 1
    import pickle

    return len(pickle.dumps(payload))


@dataclass(frozen=True)
class Envelope:
    """A message in flight: payload plus timestamp metadata.

    ``timestamp_bytes`` is supplied by the sender according to its clock
    scheme (2 ints for the compressed scheme, N ints for full vectors,
    variable for SK); ``payload_bytes`` is measured from the payload.

    ``message_id`` is assigned by the channel from the simulator's
    per-simulation counter at send time (see
    :meth:`repro.net.simulator.Simulator.next_message_id`), keeping id
    streams reproducible when several sessions share one process.
    """

    source: int
    dest: int
    payload: Any
    timestamp_bytes: int = 0
    kind: str = "op"
    message_id: int | None = None

    def total_bytes(self) -> int:
        """Payload + timestamp + a fixed 8-byte header."""
        return 8 + measure_payload_bytes(self.payload) + self.timestamp_bytes
