"""Real-socket wire transport: the simulated envelopes over asyncio TCP.

The simulator moves :class:`~repro.net.transport.Envelope` objects
through in-memory FIFO channels; this module moves the *same* envelopes
through length-prefixed frames on a TCP stream, so the entire protocol
stack above the channel -- reliability, holdback, causality, tracing --
runs unmodified over a real wire.  TCP itself provides the FIFO
property the paper's formulas (5) and (7) assume, exactly as in the
original Web-deployment.

Framing
-------
Every frame is ``u32 body-length (big-endian) + body``.  The body is a
1-byte frame tag followed by tag-specific fields:

* ``HELLO`` -- the first frame on every client connection: the sender's
  pid plus the port its own failover listener is bound to (0 when the
  sender accepts no inbound dials), so the accepting side knows which
  spoke of the star just dialed in and where survivors can reach it if
  the centre dies.
* ``DATA`` -- one envelope: source, dest, timestamp-byte accounting,
  optional message id, kind string, then a tagged payload.
* ``ROSTER`` -- the centre's membership table (site -> listen port),
  broadcast once all expected clients are connected.  This is what lets
  a survivor dial its peers after the centre's socket goes dark.
* ``DRAINED`` -- a client telling the centre its scripted workload is
  fully generated (and its degraded-mode queue empty); TCP FIFO order
  means the centre has already ingested every op the sender will ever
  send when this frame arrives.
* ``GOODBYE`` -- the centre's orderly end-of-session marker, sent after
  the final broadcast on each connection.  A receiver that sees EOF
  *after* a GOODBYE knows the teardown was clean, not a crash.
* ``TELEMETRY`` -- one runtime-gauge snapshot
  (:class:`~repro.obs.telemetry.TelemetryFrame`), schema-versioned and
  byte-exact.  Telemetry rides the same stream as the protocol but is
  *advisory*: :func:`pump` hands these to an optional ``on_telemetry``
  callback and silently drops them when none is given, so a reader
  that predates (or does not care about) telemetry interoperates with
  a sender that gossips it.

Payloads reuse the byte-exact codec of :mod:`repro.net.codec` wherever
one exists: an :class:`~repro.editor.messages.OpMessage` is embedded as
the *exact* bytes of :func:`~repro.net.codec.encode_op_message`
(length-prefixed), so the overhead accounting measured in the simulator
is the same accounting that crosses the socket.  Reliability packets
nest their inner payload recursively; the failover vocabulary
(snapshot / resync / elect / promote / contribution) has its own tags
so a cluster can exercise crash recovery over TCP.

:class:`WireChannel` is the seam: it exposes the same ``send(envelope)``
surface as :class:`~repro.net.channel.FIFOChannel` (message-id
assignment, byte accounting, ``fifo_respected``), but writes frames to
an :class:`asyncio.StreamWriter` instead of scheduling a simulated
delivery.  Editor processes attach it via the ordinary
``attach_channel`` call and never learn the difference.
"""

from __future__ import annotations

import asyncio
import random
import struct
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional, Union

from repro.editor.messages import (
    ElectMessage,
    OpMessage,
    PromoteMessage,
    ResyncRequest,
    SnapshotMessage,
    StateContribution,
)
from repro.net.channel import ChannelStats
from repro.net.codec import (
    CodecError,
    Reader,
    Writer,
    decode_op_message,
    decode_operation,
    encode_op_message,
    encode_operation,
)
from repro.net.reliability import ReliablePacket
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope
from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION, TelemetryFrame

FRAME_HELLO = 0x01
FRAME_DATA = 0x02
FRAME_TELEMETRY = 0x03
FRAME_ROSTER = 0x04
FRAME_GOODBYE = 0x05
FRAME_DRAINED = 0x06

PAYLOAD_NONE = 0x00
PAYLOAD_OP = 0x01
PAYLOAD_RELIABLE = 0x02
PAYLOAD_SNAPSHOT = 0x03
PAYLOAD_RESYNC = 0x04
PAYLOAD_ELECT = 0x05
PAYLOAD_PROMOTE = 0x06
PAYLOAD_CONTRIB = 0x07

# A frame larger than this is a protocol error, not a big message: the
# workloads move edits, not bulk state.  Guards readexactly() against a
# corrupt or hostile length prefix.
MAX_FRAME_BYTES = 16 * 1024 * 1024

LENGTH_PREFIX_BYTES = 4


class WireError(CodecError):
    """Raised on malformed frames or unencodable payloads."""


# -- control frames ------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """The connection-opening handshake: who dialed in, and where the
    dialer itself accepts connections (0 = nowhere -- failover off)."""

    pid: int
    listen_port: int = 0


@dataclass(frozen=True)
class Roster:
    """The centre's membership table: client site -> failover listen port."""

    ports: dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Goodbye:
    """Orderly end-of-session marker: EOF after this is clean teardown."""


@dataclass(frozen=True)
class Drained:
    """A client's workload-complete signal (FIFO-ordered after its last op)."""

    site: int


# -- payload encoding ----------------------------------------------------------


def _encode_payload(payload: Any, writer: Writer) -> None:
    if payload is None:
        writer.u8(PAYLOAD_NONE)
    elif isinstance(payload, OpMessage):
        # Embed the codec's exact bytes: the wire carries the same
        # serialisation the simulator's accounting charges.
        body = encode_op_message(payload)
        writer.u8(PAYLOAD_OP).u32(len(body)).raw(body)
    elif isinstance(payload, ReliablePacket):
        writer.u8(PAYLOAD_RELIABLE)
        writer.u32(payload.seq + 1)  # seq/ack are >= -1: store offset by one
        writer.u32(payload.epoch)
        writer.u32(payload.ack + 1)
        writer.u8(1 if payload.probe else 0)
        _encode_payload(payload.payload, writer)
    elif isinstance(payload, SnapshotMessage):
        if not isinstance(payload.document, str):
            raise WireError(
                f"only text documents cross the wire, got "
                f"{type(payload.document).__name__}"
            )
        if payload.origin_clock is not None:
            # The oracle clock is in-process diagnostic state; cluster
            # processes have no shared event log to interpret it in.
            raise WireError("origin_clock does not cross the wire")
        writer.u8(PAYLOAD_SNAPSHOT)
        writer.string(payload.document)
        writer.u32(payload.base_count)
        writer.u32(payload.own_count)
        writer.u32(payload.notifier_epoch)
        writer.u32(len(payload.incorporated))
        for op_id in sorted(payload.incorporated):
            writer.string(op_id)
    elif isinstance(payload, ResyncRequest):
        writer.u8(PAYLOAD_RESYNC).u32(payload.epoch)
    elif isinstance(payload, ElectMessage):
        writer.u8(PAYLOAD_ELECT).u32(payload.notifier_epoch)
    elif isinstance(payload, PromoteMessage):
        writer.u8(PAYLOAD_PROMOTE).u32(payload.successor).u32(payload.notifier_epoch)
    elif isinstance(payload, StateContribution):
        writer.u8(PAYLOAD_CONTRIB)
        writer.u32(payload.site)
        writer.u32(payload.received_from_center)
        writer.u32(payload.generated_locally)
        writer.u32(len(payload.received_per_origin))
        for origin in sorted(payload.received_per_origin):
            writer.u32(origin).u32(payload.received_per_origin[origin])
        writer.u32(len(payload.pending))
        for op_id, op in payload.pending:
            writer.string(op_id)
            encode_operation(op, writer)
        if payload.document is None:
            writer.u8(0)
        elif isinstance(payload.document, str):
            writer.u8(1).string(payload.document)
        else:
            raise WireError(
                f"only text documents cross the wire, got "
                f"{type(payload.document).__name__}"
            )
    else:
        raise WireError(f"cannot encode payload type {type(payload).__name__}")


def _decode_payload(reader: Reader) -> Any:
    tag = reader.u8()
    if tag == PAYLOAD_NONE:
        return None
    if tag == PAYLOAD_OP:
        length = reader.u32()
        return decode_op_message(reader.raw(length))
    if tag == PAYLOAD_RELIABLE:
        seq = reader.u32() - 1
        epoch = reader.u32()
        ack = reader.u32() - 1
        probe = reader.u8() == 1
        payload = _decode_payload(reader)
        return ReliablePacket(seq=seq, epoch=epoch, ack=ack,
                              payload=payload, probe=probe)
    if tag == PAYLOAD_SNAPSHOT:
        document = reader.string()
        base_count = reader.u32()
        own_count = reader.u32()
        notifier_epoch = reader.u32()
        incorporated = frozenset(reader.string() for _ in range(reader.u32()))
        return SnapshotMessage(document=document, base_count=base_count,
                               own_count=own_count,
                               notifier_epoch=notifier_epoch,
                               incorporated=incorporated)
    if tag == PAYLOAD_RESYNC:
        return ResyncRequest(epoch=reader.u32())
    if tag == PAYLOAD_ELECT:
        return ElectMessage(notifier_epoch=reader.u32())
    if tag == PAYLOAD_PROMOTE:
        successor = reader.u32()
        return PromoteMessage(successor=successor, notifier_epoch=reader.u32())
    if tag == PAYLOAD_CONTRIB:
        site = reader.u32()
        received_from_center = reader.u32()
        generated_locally = reader.u32()
        received_per_origin = {}
        for _ in range(reader.u32()):
            origin = reader.u32()
            received_per_origin[origin] = reader.u32()
        pending = tuple(
            (reader.string(), decode_operation(reader))
            for _ in range(reader.u32())
        )
        document = reader.string() if reader.u8() == 1 else None
        return StateContribution(site=site,
                                 received_from_center=received_from_center,
                                 generated_locally=generated_locally,
                                 received_per_origin=received_per_origin,
                                 pending=pending, document=document)
    raise WireError(f"unknown payload tag 0x{tag:02x}")


# -- frame encoding ------------------------------------------------------------


def encode_hello(pid: int, listen_port: int = 0) -> bytes:
    """The connection-opening frame body: who is dialing in, and the
    port the dialer's own failover listener is bound to (0 = none)."""
    return Writer().u8(FRAME_HELLO).u32(pid).u32(listen_port).getvalue()


def encode_roster(ports: dict[int, int]) -> bytes:
    """The membership table as a ROSTER frame body (no length prefix)."""
    writer = Writer().u8(FRAME_ROSTER).u32(len(ports))
    for site in sorted(ports):
        writer.u32(site).u32(ports[site])
    return writer.getvalue()


def encode_goodbye() -> bytes:
    """The orderly end-of-session marker as a GOODBYE frame body."""
    return Writer().u8(FRAME_GOODBYE).getvalue()


def encode_drained(site: int) -> bytes:
    """A client's workload-complete signal as a DRAINED frame body."""
    return Writer().u8(FRAME_DRAINED).u32(site).getvalue()


def encode_envelope(envelope: Envelope) -> bytes:
    """One envelope as a DATA frame body (no length prefix)."""
    writer = Writer()
    writer.u8(FRAME_DATA)
    writer.u32(envelope.source)
    writer.u32(envelope.dest)
    writer.u32(envelope.timestamp_bytes)
    mid = envelope.message_id
    writer.u32(0 if mid is None else mid + 1)
    writer.string(envelope.kind)
    _encode_payload(envelope.payload, writer)
    return writer.getvalue()


_F64 = struct.Struct(">d")


def encode_telemetry_frame(tframe: TelemetryFrame) -> bytes:
    """One telemetry frame as a TELEMETRY frame body (no length prefix).

    Byte-exact by construction: fixed-width fields in declaration
    order, schema version first, so the same frame always serialises to
    the same bytes and a future schema is detected before any field is
    misread.
    """
    writer = Writer()
    writer.u8(FRAME_TELEMETRY)
    writer.u32(TELEMETRY_SCHEMA_VERSION)
    writer.u32(tframe.site)
    writer.string(tframe.role)
    writer.u32(tframe.seq)
    writer.raw(_F64.pack(tframe.time))
    writer.u32(tframe.epoch)
    writer.u32(tframe.ops_generated)
    writer.u32(tframe.ops_executed)
    writer.u32(tframe.holdback_depth)
    writer.u32(tframe.holdback_high_water)
    writer.u32(tframe.inflight)
    writer.u32(tframe.retransmits)
    writer.u32(tframe.storage_ints)
    writer.u32(tframe.queue_depth)
    writer.u32(tframe.elected)
    writer.u32(tframe.promoted)
    writer.u32(tframe.resynced)
    writer.u32(tframe.degraded_queued)
    writer.string(tframe.digest)
    # v3: optional gauges as u8 presence flag + payload, so a frame
    # without the gauge costs one byte and the encoding stays byte-exact.
    if tframe.e2e_p95_ms is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.raw(_F64.pack(tframe.e2e_p95_ms))
    return writer.getvalue()


def _decode_telemetry(reader: Reader) -> TelemetryFrame:
    version = reader.u32()
    if version != TELEMETRY_SCHEMA_VERSION:
        raise WireError(
            f"telemetry schema {version} is not the supported "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    site = reader.u32()
    role = reader.string()
    seq = reader.u32()
    time = float(_F64.unpack(reader.raw(8))[0])
    tframe = TelemetryFrame(
        site=site,
        role=role,
        seq=seq,
        time=time,
        epoch=reader.u32(),
        ops_generated=reader.u32(),
        ops_executed=reader.u32(),
        holdback_depth=reader.u32(),
        holdback_high_water=reader.u32(),
        inflight=reader.u32(),
        retransmits=reader.u32(),
        storage_ints=reader.u32(),
        queue_depth=reader.u32(),
        elected=reader.u32(),
        promoted=reader.u32(),
        resynced=reader.u32(),
        degraded_queued=reader.u32(),
        digest=reader.string(),
        e2e_p95_ms=(
            float(_F64.unpack(reader.raw(8))[0]) if reader.u8() else None
        ),
    )
    reader.expect_done()
    return tframe


FrameValue = Union[Hello, Envelope, TelemetryFrame, Roster, Goodbye, Drained]


def decode_frame(body: bytes) -> FrameValue:
    """Decode a frame body: HELLO -> Hello, DATA -> Envelope,
    TELEMETRY -> TelemetryFrame, ROSTER/GOODBYE/DRAINED -> their
    control dataclasses."""
    reader = Reader(body)
    tag = reader.u8()
    if tag == FRAME_HELLO:
        pid = reader.u32()
        listen_port = reader.u32()
        reader.expect_done()
        return Hello(pid=pid, listen_port=listen_port)
    if tag == FRAME_TELEMETRY:
        return _decode_telemetry(reader)
    if tag == FRAME_ROSTER:
        ports = {}
        for _ in range(reader.u32()):
            site = reader.u32()
            ports[site] = reader.u32()
        reader.expect_done()
        return Roster(ports=ports)
    if tag == FRAME_GOODBYE:
        reader.expect_done()
        return Goodbye()
    if tag == FRAME_DRAINED:
        site = reader.u32()
        reader.expect_done()
        return Drained(site=site)
    if tag != FRAME_DATA:
        raise WireError(f"unknown frame tag 0x{tag:02x}")
    source = reader.u32()
    dest = reader.u32()
    timestamp_bytes = reader.u32()
    raw_mid = reader.u32()
    kind = reader.string()
    payload = _decode_payload(reader)
    reader.expect_done()
    return Envelope(source=source, dest=dest, payload=payload,
                    timestamp_bytes=timestamp_bytes, kind=kind,
                    message_id=None if raw_mid == 0 else raw_mid - 1)


def frame(body: bytes) -> bytes:
    """Prefix a frame body with its u32 length."""
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return Writer().u32(len(body)).getvalue() + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame body; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # EOF on a frame boundary: the peer closed cleanly
        raise WireError(
            f"connection closed mid-prefix ({len(exc.partial)} of "
            f"{LENGTH_PREFIX_BYTES} bytes)"
        ) from exc
    length = Reader(prefix).u32()
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from exc


# -- the channel seam ----------------------------------------------------------


class WireChannel:
    """A unidirectional TCP-backed channel with the FIFOChannel surface.

    Owns the *sending* half only: deliveries on the reverse path are the
    peer process's :func:`pump` over its own reader.  Byte accounting
    mirrors :class:`~repro.net.channel.FIFOChannel` (model bytes, from
    the accounting functions -- not frame bytes -- so simulator and wire
    runs report comparable numbers).
    """

    def __init__(self, sched: Scheduler, source: int, dest: int,
                 writer: asyncio.StreamWriter) -> None:
        self.sched = sched
        self.source = source
        self.dest = dest
        self.writer = writer
        self.stats = ChannelStats()
        self.dropped_on_dead_wire = 0
        self._sent_ids: list[int] = []

    def send(self, envelope: Envelope) -> float:
        """Frame ``envelope`` onto the stream; returns the send time.

        A send against a closing or torn-down stream is *dropped* (and
        counted), not raised: during a failover window the reliability
        layer's retransmit timers keep firing at the dead centre's
        socket, and the protocol above recovers those ops via the
        failover snapshot -- the wire must not turn that race into an
        unhandled exception on the event loop.
        """
        if envelope.source != self.source or envelope.dest != self.dest:
            raise ValueError(
                f"envelope addressed {envelope.source}->{envelope.dest} sent "
                f"on channel {self.source}->{self.dest}"
            )
        if envelope.message_id is None:
            object.__setattr__(envelope, "message_id", self.sched.next_message_id())
        is_closing = getattr(self.writer, "is_closing", None)
        if is_closing is not None and is_closing():
            self.dropped_on_dead_wire += 1
            return self.sched.now
        self.stats.messages += 1
        self.stats.total_bytes += envelope.total_bytes()
        self.stats.timestamp_bytes += envelope.timestamp_bytes
        self.stats.payload_bytes += (
            envelope.total_bytes() - envelope.timestamp_bytes - 8
        )
        assert envelope.message_id is not None
        self._sent_ids.append(envelope.message_id)
        try:
            self.writer.write(frame(encode_envelope(envelope)))
        except (ConnectionError, RuntimeError):
            self.dropped_on_dead_wire += 1
        return self.sched.now

    def fifo_respected(self) -> bool:
        """Vacuously true: a TCP stream cannot reorder its own bytes."""
        return True


async def pump(reader: asyncio.StreamReader,
               on_envelope: Callable[[Envelope], None],
               *, on_eof: Optional[Callable[[], Awaitable[None]]] = None,
               on_telemetry: Optional[Callable[[TelemetryFrame], None]] = None,
               on_roster: Optional[Callable[[Roster], None]] = None,
               on_goodbye: Optional[Callable[[], None]] = None,
               on_drained: Optional[Callable[[Drained], None]] = None,
               ) -> None:
    """Feed every DATA frame on ``reader`` to ``on_envelope`` until EOF.

    The counterpart of :class:`WireChannel`: where the simulator's
    channel *schedules* a delivery callback, the wire's pump *awaits*
    frames and invokes the process's ``on_message`` inline on the event
    loop -- same callback, different clock.  A HELLO frame after the
    handshake is a protocol error; TELEMETRY / ROSTER / GOODBYE /
    DRAINED frames go to their optional callbacks and are otherwise
    ignored (control traffic is advisory -- a pump that does not
    subscribe must not choke on it).
    """
    while True:
        body = await read_frame(reader)
        if body is None:
            break
        decoded = decode_frame(body)
        if isinstance(decoded, TelemetryFrame):
            if on_telemetry is not None:
                on_telemetry(decoded)
            continue
        if isinstance(decoded, Roster):
            if on_roster is not None:
                on_roster(decoded)
            continue
        if isinstance(decoded, Goodbye):
            if on_goodbye is not None:
                on_goodbye()
            continue
        if isinstance(decoded, Drained):
            if on_drained is not None:
                on_drained(decoded)
            continue
        if not isinstance(decoded, Envelope):
            raise WireError("unexpected HELLO frame after handshake")
        on_envelope(decoded)
    if on_eof is not None:
        await on_eof()


# -- dialing with backoff ------------------------------------------------------


def backoff_delays(attempts: int, *, base_delay: float = 0.05,
                   max_delay: float = 2.0, backoff: float = 2.0,
                   jitter: float = 0.5, seed: int = 0) -> list[float]:
    """The deterministic retry schedule ``connect_with_backoff`` sleeps on.

    Delay ``n`` (before retry ``n+1``) is ``min(base * backoff**n, cap)``
    scaled by a seeded jitter factor in ``[1, 1 + jitter]`` -- capped
    exponential backoff that desynchronises survivors re-dialing the
    same successor without losing reproducibility.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    rng = random.Random(seed)
    delays = []
    for n in range(attempts - 1):
        delay = min(base_delay * backoff ** n, max_delay)
        delays.append(delay * (1.0 + jitter * rng.random()))
    return delays


async def connect_with_backoff(
    host: str, port: int, *, attempts: int = 8, base_delay: float = 0.05,
    max_delay: float = 2.0, backoff: float = 2.0, jitter: float = 0.5,
    seed: int = 0,
    connect: Callable[
        [str, int],
        Awaitable[tuple[asyncio.StreamReader, asyncio.StreamWriter]],
    ] | None = None,
    sleep: Callable[[float], Awaitable[None]] | None = None,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``host:port``, retrying on refusal with capped backoff.

    Used for both the initial cluster connect (the listener may not be
    up yet) and the failover re-dial (the successor promotes while the
    survivors are already dialing).  ``connect``/``sleep`` are
    injectable so the schedule is unit-testable without sockets.
    """
    do_connect = connect if connect is not None else _open_connection
    do_sleep = sleep if sleep is not None else asyncio.sleep
    delays = backoff_delays(attempts, base_delay=base_delay,
                            max_delay=max_delay, backoff=backoff,
                            jitter=jitter, seed=seed)
    last_error: OSError | None = None
    for attempt in range(attempts):
        try:
            return await do_connect(host, port)
        except OSError as exc:
            last_error = exc
            if attempt < len(delays):
                await do_sleep(delays[attempt])
    raise WireError(
        f"could not connect to {host}:{port} after {attempts} attempts"
    ) from last_error


async def _open_connection(
    host: str, port: int,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    return await asyncio.open_connection(host, port)
