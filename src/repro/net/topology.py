"""Topology builders: the paper's star (Fig. 1) and the mesh baseline.

A topology wires :class:`~repro.net.process.SimProcess` instances with
unidirectional :class:`~repro.net.channel.FIFOChannel` pairs and exposes
aggregate wire statistics for the end-to-end benchmarks.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.net.channel import ChannelStats, FIFOChannel, FixedLatency, LatencyModel
from repro.net.process import SimProcess
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope

# Builds a channel: (sim, source_pid, dest_pid, latency, on_deliver).
# The default builds plain FIFOChannels; fault plans supply one that
# builds FaultyChannels (see repro.net.faults.FaultPlan.channel_factory).
ChannelFactory = Callable[
    [Scheduler, int, int, LatencyModel, Callable[[Envelope], None]], FIFOChannel
]


def _default_channel_factory(sim, source, dest, latency, on_deliver) -> FIFOChannel:
    return FIFOChannel(sim, source, dest, latency, on_deliver)


class _BaseTopology:
    def __init__(self, channel_factory: ChannelFactory | None = None) -> None:
        self.channels: dict[tuple[int, int], FIFOChannel] = {}
        self._channel_factory = channel_factory or _default_channel_factory

    def _connect(
        self,
        sim: Scheduler,
        a: SimProcess,
        b: SimProcess,
        latency_factory: Callable[[int, int], LatencyModel],
    ) -> None:
        """Install a bidirectional pair of FIFO channels between a and b."""
        for src, dst in ((a, b), (b, a)):
            channel = self._channel_factory(
                sim,
                src.pid,
                dst.pid,
                latency_factory(src.pid, dst.pid),
                dst.on_message,
            )
            src.attach_channel(dst.pid, channel)
            self.channels[(src.pid, dst.pid)] = channel

    def total_stats(self) -> ChannelStats:
        """Aggregate wire statistics over every channel."""
        agg = ChannelStats()
        for channel in self.channels.values():
            agg.messages += channel.stats.messages
            agg.total_bytes += channel.stats.total_bytes
            agg.timestamp_bytes += channel.stats.timestamp_bytes
            agg.payload_bytes += channel.stats.payload_bytes
        return agg

    def fifo_respected(self) -> bool:
        """True iff no channel ever delivered out of send order."""
        return all(ch.fifo_respected() for ch in self.channels.values())

    def total_fault_stats(self):
        """Aggregate fault-injection statistics over every faulty channel."""
        from repro.net.faults import FaultStats

        agg = FaultStats()
        for channel in self.channels.values():
            stats = getattr(channel, "fault_stats", None)
            if stats is not None:
                agg.dropped += stats.dropped
                agg.duplicated += stats.duplicated
                agg.outage_dropped += stats.outage_dropped
                agg.acks_dropped += stats.acks_dropped
                agg.acks_outage_dropped += stats.acks_outage_dropped
        return agg

    def edge_count(self) -> int:
        """Number of unidirectional channels."""
        return len(self.channels)


class StarTopology(_BaseTopology):
    """The paper's Fig. 1: clients connected only to the notifier (pid 0).

    ``processes[0]`` must be the notifier; clients are ``processes[1:]``.
    """

    def __init__(
        self,
        sim: Scheduler,
        processes: Sequence[SimProcess],
        latency_factory: Callable[[int, int], LatencyModel] | None = None,
        channel_factory: ChannelFactory | None = None,
    ) -> None:
        super().__init__(channel_factory)
        if len(processes) < 2:
            raise ValueError("a star needs the notifier plus at least one client")
        if processes[0].pid != 0:
            raise ValueError("the notifier must have pid 0 (paper convention)")
        self._sim = sim
        self._center = processes[0]
        self._factory = latency_factory or (lambda s, d: FixedLatency(0.05))
        for client in processes[1:]:
            self._connect(sim, self._center, client, self._factory)

    def add_client(self, client: SimProcess) -> None:
        """Wire a late-joining client to the notifier (dynamic membership)."""
        if (0, client.pid) in self.channels:
            raise ValueError(f"client {client.pid} is already connected")
        self._connect(self._sim, self._center, client, self._factory)

    def connect_pair(self, a: SimProcess, b: SimProcess) -> None:
        """Wire two processes directly, idempotently.

        Notifier failover re-shapes the star around a promoted client:
        election traffic needs a detector-to-successor edge and the new
        centre needs a spoke to every survivor.  Channels that already
        exist (including the original centre spokes) are left untouched,
        so existing FIFO streams and their statistics survive rewiring.
        """
        if a.pid == b.pid:
            raise ValueError(f"cannot wire process {a.pid} to itself")
        if (a.pid, b.pid) in self.channels:
            return
        self._connect(self._sim, a, b, self._factory)


class MeshTopology(_BaseTopology):
    """Fully-distributed topology: every pair of sites directly connected.

    This is the original (non-Web) REDUCE deployment the paper contrasts
    with; it needs full vector clocks because no single process redefines
    the causality relation.
    """

    def __init__(
        self,
        sim: Scheduler,
        processes: Sequence[SimProcess],
        latency_factory: Callable[[int, int], LatencyModel] | None = None,
        channel_factory: ChannelFactory | None = None,
    ) -> None:
        super().__init__(channel_factory)
        if len(processes) < 2:
            raise ValueError("a mesh needs at least two sites")
        factory = latency_factory or (lambda s, d: FixedLatency(0.05))
        for i, a in enumerate(processes):
            for b in processes[i + 1 :]:
                self._connect(sim, a, b, factory)
