"""The reliability transport layer: FIFO streams over a faulty network.

This module is the bottom layer of the editor protocol stack
(transport -> causality -> integration -> session; see DESIGN.md
"Architecture layers").  It knows nothing about operational
transformation, state vectors, or documents: it moves opaque payloads
between process ids and guarantees the two properties the paper's
formulas (5) and (7) assume -- per-connection FIFO order and no loss --
on top of a network that may drop, duplicate, or delay messages and
whose endpoints may crash (see :mod:`repro.net.faults`).

Editors *own* a transport (composition), they do not inherit one:

* :class:`RawTransport` -- the perfect-network pass-through.  Sends go
  straight onto the FIFO channel, arrivals go straight to the editor's
  ``deliver`` callback.  Zero overhead, byte-for-byte identical wire
  accounting to the paper's model.
* :class:`ReliableEndpoint` -- the reliability protocol.  Every outgoing
  message is wrapped in a sequence-numbered :class:`ReliablePacket`,
  retransmitted with exponential backoff until cumulatively
  acknowledged, deduplicated by ``(source, seq)`` at the receiver, and
  released to ``deliver`` strictly in sequence order through a shared
  :class:`~repro.net.holdback.HoldbackQueue`.  Crashed incarnations
  are fenced by *epochs*: a packet from an older epoch is discarded, a
  packet from a newer epoch voids the previous incarnation's link state.

:func:`build_transport` selects between the two from a
:class:`ReliabilityConfig` (``None`` means raw), which is how the
editor layer stays agnostic of which transport it is running over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, Union, runtime_checkable

from repro.net.holdback import HoldbackOverflow, HoldbackQueue
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope
from repro.obs.profiler import profiled
from repro.obs.tracer import Tracer, TraceEventKind

WireSend = Callable[[int, Any, int, str], None]
Deliver = Callable[[Envelope], None]
PeerCallback = Callable[[int], None]


def _traced_op_id(payload: Any) -> Optional[str]:
    """The application-level op id a payload carries, if any.

    Duck-typed (like :func:`repro.net.transport.measure_payload_bytes`)
    so the transport layer can stamp trace events with the op they move
    without depending on the editor layer's message types.
    """
    op_id = getattr(payload, "op_id", None)
    return op_id if isinstance(op_id, str) else None


def _payload_origin_wall(payload: Any) -> Optional[float]:
    """The origin wall-clock stamp a payload carries, if any.

    Duck-typed like :func:`_traced_op_id`; unwraps one level of
    :class:`ReliablePacket` so the hold/release span hooks see the
    editor message inside the reliability envelope.
    """
    if isinstance(payload, ReliablePacket):
        payload = payload.payload
    origin_wall = getattr(payload, "origin_wall", None)
    return origin_wall if isinstance(origin_wall, float) else None


@dataclass(frozen=True)
class ReliablePacket:
    """The reliability envelope wrapped around every editor message.

    ``seq`` numbers the sender's stream to this destination (``-1`` for
    pure acknowledgements, which are unsequenced); ``epoch`` identifies
    the client incarnation the packet belongs to; ``ack`` is cumulative:
    the highest seq the sender has received *in order* from the
    destination (``-1`` if none).  A ``probe`` is an unsequenced
    liveness heartbeat (``seq == -1``): the receiver answers it with an
    immediate acknowledgement, and *any* arrival from a probed peer
    counts as proof of life.
    """

    seq: int
    epoch: int
    ack: int
    payload: Any = None
    probe: bool = False

    def __post_init__(self) -> None:
        if self.seq < -1 or self.ack < -1 or self.epoch < 0:
            raise ValueError(f"malformed packet: {self}")
        if self.probe and self.seq != -1:
            raise ValueError(f"probes are unsequenced: {self}")


@dataclass(frozen=True)
class RetransmitPolicy:
    """The retransmission tuning surface, as one frozen value.

    Both wires share this single policy object: the simulated FIFO
    channels and the asyncio TCP transport (:mod:`repro.net.wire`) arm
    their retransmit timers from the same four numbers, so tuning one
    tunes both.  ``max_retries`` bounds the retransmit budget per peer:
    after that many *consecutive* retransmission rounds without
    acknowledgement progress the endpoint declares the peer dead
    (``on_peer_dead`` fires once) and parks further traffic instead of
    retrying forever; ``None`` restores the legacy retry-forever
    behaviour.  A parked link resurrects automatically the moment
    anything arrives from the peer.
    """

    base_rto: float = 0.5  # initial retransmit timeout (scheduler time)
    max_rto: float = 8.0  # backoff ceiling
    backoff: float = 2.0  # timeout multiplier per retry round
    max_retries: Optional[int] = 12  # retransmit rounds before giving up

    def __post_init__(self) -> None:
        if self.base_rto <= 0 or self.max_rto < self.base_rto or self.backoff < 1.0:
            raise ValueError(f"malformed retransmit policy: {self}")
        if self.max_retries is not None and self.max_retries < 1:
            raise ValueError(f"max_retries must be positive or None: {self}")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Parameters of the reliability protocol.

    The retransmission knobs live in :class:`RetransmitPolicy`; the
    scalar fields here (``base_rto``/``max_rto``/``backoff``/
    ``max_retries``) are a construction convenience kept for the many
    existing call sites -- ``__post_init__`` folds them into
    :attr:`retransmit`, which is the *only* view the protocol reads.
    Passing an explicit ``retransmit`` policy wins over the scalars
    (and is mirrored back into them so both views always agree).

    ``probe_interval``/``max_probes`` shape the bounded heartbeat
    :meth:`ReliableEndpoint.probe_peer` uses to confirm a suspicion,
    and ``holdback_limit`` caps the reorder buffer (see
    :class:`repro.net.holdback.HoldbackOverflow`).
    """

    base_rto: float = 0.5  # initial retransmit timeout (scheduler time)
    max_rto: float = 8.0  # backoff ceiling
    backoff: float = 2.0  # timeout multiplier per retry round
    max_retries: Optional[int] = 12  # retransmit rounds before giving up
    probe_interval: float = 0.5  # spacing of liveness probes
    max_probes: int = 5  # unanswered probes before declaring death
    holdback_limit: Optional[int] = 1024  # reorder-buffer capacity
    retransmit: RetransmitPolicy = RetransmitPolicy()

    def __post_init__(self) -> None:
        if self.retransmit == RetransmitPolicy():
            # Scalars are authoritative; the policy constructor validates.
            object.__setattr__(
                self,
                "retransmit",
                RetransmitPolicy(
                    base_rto=self.base_rto,
                    max_rto=self.max_rto,
                    backoff=self.backoff,
                    max_retries=self.max_retries,
                ),
            )
        else:
            object.__setattr__(self, "base_rto", self.retransmit.base_rto)
            object.__setattr__(self, "max_rto", self.retransmit.max_rto)
            object.__setattr__(self, "backoff", self.retransmit.backoff)
            object.__setattr__(self, "max_retries", self.retransmit.max_retries)
        if self.probe_interval <= 0 or self.max_probes < 1:
            raise ValueError(f"malformed probe parameters: {self}")
        if self.holdback_limit is not None and self.holdback_limit < 1:
            raise ValueError(f"holdback_limit must be positive or None: {self}")


@dataclass
class ReliabilityStats:
    """Per-endpoint protocol counters (aggregated by the fault report)."""

    sent: int = 0
    retransmits: int = 0
    acks_sent: int = 0
    duplicates_discarded: int = 0
    stale_epoch_discarded: int = 0
    out_of_order_held: int = 0
    dropped_while_crashed: int = 0
    lost_local_edits: int = 0
    recoveries: int = 0  # clients only: completed crash restarts
    resyncs_served: int = 0  # notifier only: recovery snapshots sent
    give_ups: int = 0  # peers declared dead on retransmit-budget exhaustion
    probes_sent: int = 0  # liveness heartbeats transmitted
    handoffs: int = 0  # clients only: completed notifier failovers
    promotions: int = 0  # successor only: notifier roles assumed
    replayed_ops: int = 0  # clients only: pending ops regenerated after failover
    replays_deduped: int = 0  # clients only: pending ops already in the baseline
    stranded_at_crash: int = 0  # unacked data packets voided by go_down()
    elections: int = 0  # elections this endpoint opened or joined
    degraded_queued: int = 0  # local edits queued while leaderless
    degraded_overflow: int = 0  # edits dropped because the degraded queue was full
    degraded_replayed: int = 0  # queued edits regenerated after promotion


@dataclass
class _PeerLink:
    """One endpoint's reliability state toward one peer."""

    epoch: int = 0
    send_seq: int = 0  # next outgoing seq
    unacked: dict[int, tuple[Any, int, str]] = field(default_factory=dict)
    rto: float = 0.0
    timer: Any = None  # pending retransmit event, if armed
    recv_next: int = 0  # next seq to release to the editor
    retries: int = 0  # consecutive retransmit rounds without ack progress
    dead: bool = False  # budget exhausted: traffic parked, timer disarmed


@dataclass
class _ProbeState:
    """One in-flight bounded liveness probe toward one peer."""

    remaining: int
    on_alive: PeerCallback
    on_dead: PeerCallback
    timer: Any = None


@runtime_checkable
class Transport(Protocol):
    """What the editor layer sees of its transport (structural typing).

    ``send`` puts an application payload on the wire toward ``dest``;
    ``on_wire`` accepts an envelope arriving from the network and
    eventually invokes the editor's ``deliver`` callback (immediately
    for the raw transport, after sequencing for the reliable one).
    """

    reliability: Optional[ReliabilityConfig]
    stats: ReliabilityStats
    crashed: bool
    tracer: Optional[Tracer]

    def send(self, dest: int, payload: Any, timestamp_bytes: int = 0,
             kind: str = "op") -> None: ...

    def on_wire(self, envelope: Envelope) -> None: ...

    def delivered_in_order(self) -> bool: ...

    def inflight(self) -> int: ...

    def holdback_depth(self) -> int: ...

    def holdback_high_water(self) -> int: ...


class TransportError(RuntimeError):
    """A transport was used before its I/O hooks were attached.

    Transports are built with ``wire_send`` (downward: raw channel
    access) and ``deliver`` (upward: the editor's handler) callbacks.
    Using one before both are attached is a wiring bug in the owning
    endpoint; the error names the pid and the missing hook so the
    miswired endpoint is identifiable from the message alone.
    """


def _unwired_for(pid: int) -> WireSend:
    """A ``wire_send`` placeholder that reports the miswired endpoint."""

    def _unwired(dest: int, payload: Any, timestamp_bytes: int, kind: str) -> None:
        raise TransportError(
            f"transport of endpoint pid={pid} has no wire_send attached; "
            f"cannot put a {kind!r} message for pid={dest} on the wire "
            f"(construct via build_transport or assign .wire_send first)"
        )

    return _unwired


def _undeliverable_for(pid: int) -> Deliver:
    """A ``deliver`` placeholder that reports the miswired endpoint."""

    def _undeliverable(envelope: Envelope) -> None:
        raise TransportError(
            f"transport of endpoint pid={pid} has no deliver callback "
            f"attached; a {envelope.kind!r} message from pid="
            f"{envelope.source} is undeliverable (assign .deliver before "
            f"accepting wire traffic)"
        )

    return _undeliverable


class RawTransport:
    """The perfect-network transport: a straight pass-through.

    Keeps the same surface as :class:`ReliableEndpoint` (stats, crash
    flag, in-order audit) so the editor layer is transport-agnostic;
    all of it is trivially inert here.
    """

    def __init__(self, *, wire_send: Optional[WireSend] = None,
                 deliver: Optional[Deliver] = None, pid: int = -1,
                 tracer: Optional[Tracer] = None) -> None:
        self.reliability: Optional[ReliabilityConfig] = None
        self.stats = ReliabilityStats()
        self.crashed = False
        self.wire_send = wire_send if wire_send is not None else _unwired_for(pid)
        self.deliver = deliver if deliver is not None else _undeliverable_for(pid)
        self.pid = pid
        self.tracer = tracer

    @profiled("net.send")
    def send(self, dest: int, payload: Any, timestamp_bytes: int = 0,
             kind: str = "op") -> None:
        if self.tracer is not None:
            self.tracer.emit(TraceEventKind.SENT, self.pid, peer=dest,
                             op_id=_traced_op_id(payload))
        self.wire_send(dest, payload, timestamp_bytes, kind)

    @profiled("net.recv")
    def on_wire(self, envelope: Envelope) -> None:
        if self.tracer is not None:
            # A perfect FIFO channel delivers every arrival in order.
            self.tracer.emit(TraceEventKind.RELEASED, self.pid,
                             peer=envelope.source,
                             op_id=_traced_op_id(envelope.payload),
                             via="direct")
        self.deliver(envelope)

    def delivered_in_order(self) -> bool:
        """Vacuously true: FIFO channels deliver in order by themselves."""
        return True

    def inflight(self) -> int:
        """No send window: nothing is ever awaiting acknowledgement."""
        return 0

    def holdback_depth(self) -> int:
        """No reorder buffer: arrivals deliver immediately."""
        return 0

    def holdback_high_water(self) -> int:
        return 0


class ReliableEndpoint:
    """One process's reliability protocol instance, as a composable object.

    The endpoint talks *down* through ``wire_send`` (raw channel access
    supplied by the owning :class:`~repro.net.process.SimProcess`) and
    *up* through ``deliver`` (the editor's application-message handler).
    With ``reliability=None`` it degrades to a pass-through so a single
    code path serves both modes; prefer :func:`build_transport`, which
    picks :class:`RawTransport` for that case.
    """

    def __init__(
        self,
        sim: Scheduler,
        pid: int,
        reliability: Optional[ReliabilityConfig] = None,
        *,
        wire_send: Optional[WireSend] = None,
        deliver: Optional[Deliver] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.pid = pid
        self.reliability = reliability
        self.stats = ReliabilityStats()
        self.wire_send = wire_send if wire_send is not None else _unwired_for(pid)
        self.deliver = deliver if deliver is not None else _undeliverable_for(pid)
        self.tracer = tracer
        self.crashed = False
        # Invoked (once per death) when a peer exhausts the retransmit
        # budget -- the failover detector's signal.  Assigned by the
        # session layer; ``None`` means deaths are silent.
        self.on_peer_dead: Optional[PeerCallback] = None
        self._links: dict[int, _PeerLink] = {}
        self._probes: dict[int, _ProbeState] = {}
        # Out-of-order packets held for sequencing, one stream per peer.
        self._holdback: HoldbackQueue[Envelope] = HoldbackQueue(
            capacity=reliability.holdback_limit if reliability else None
        )
        # Audit trace: per source, the (epoch, seq) of every packet
        # actually handed to the editor, in release order.  Deliberately
        # not link state (and not cleared on crash): the in-order audit
        # must survive link resets and stay independent of recv_next /
        # the holdback queue, the very mechanism it checks.
        self._release_trace: dict[int, list[tuple[int, int]]] = {}

    # -- compatibility alias ---------------------------------------------------

    @property
    def rel_stats(self) -> ReliabilityStats:
        """Pre-refactor name of :attr:`stats`."""
        return self.stats

    # -- telemetry gauges ------------------------------------------------------

    def inflight(self) -> int:
        """Unacknowledged packets across every live link: the send window."""
        return sum(len(link.unacked) for link in self._links.values())

    def holdback_depth(self) -> int:
        """Arrivals currently parked in the reorder buffer."""
        return self._holdback.depth

    def holdback_high_water(self) -> int:
        """Peak simultaneous reorder-buffer occupancy this lifetime."""
        return self._holdback.max_held

    # -- sending ---------------------------------------------------------------

    def _link(self, peer: int) -> _PeerLink:
        if peer not in self._links:
            rto = self.reliability.retransmit.base_rto if self.reliability else 0.0
            self._links[peer] = _PeerLink(rto=rto)
        return self._links[peer]

    @profiled("net.send")
    def send(self, dest: int, payload: Any, timestamp_bytes: int = 0,
             kind: str = "op") -> None:
        if self.reliability is None:
            if self.tracer is not None:
                self.tracer.emit(TraceEventKind.SENT, self.pid, peer=dest,
                                 op_id=_traced_op_id(payload))
            self.wire_send(dest, payload, timestamp_bytes, kind)
            return
        link = self._link(dest)
        seq = link.send_seq
        link.send_seq += 1
        link.unacked[seq] = (payload, timestamp_bytes, kind)
        self.stats.sent += 1
        if link.dead:
            # The peer was declared dead: park the packet in the send
            # window without touching the wire.  If the peer ever talks
            # again the link resurrects and the window retransmits.
            return
        if self.tracer is not None:
            self.tracer.emit(TraceEventKind.SENT, self.pid, peer=dest,
                             epoch=link.epoch, seq=seq,
                             op_id=_traced_op_id(payload))
        self._transmit(dest, link, seq, payload, timestamp_bytes, kind)
        self._arm_timer(dest, link)

    def _transmit(self, dest: int, link: _PeerLink, seq: int, payload: Any,
                  ts_bytes: int, kind: str) -> None:
        packet = ReliablePacket(seq=seq, epoch=link.epoch,
                                ack=link.recv_next - 1, payload=payload)
        self.wire_send(dest, packet, ts_bytes, kind)

    def _arm_timer(self, dest: int, link: _PeerLink) -> None:
        if link.timer is None and link.unacked and not link.dead:
            link.timer = self.sim.schedule_after(
                link.rto, lambda: self._on_timer(dest, link)
            )

    @profiled("net.retransmit")
    def _on_timer(self, dest: int, link: _PeerLink) -> None:
        link.timer = None
        # The link may have been replaced by a crash or an epoch bump
        # since this timer was armed; a stale timer must not touch it.
        if self.crashed or self._links.get(dest) is not link or not link.unacked:
            return
        assert self.reliability is not None
        policy = self.reliability.retransmit
        limit = policy.max_retries
        if limit is not None and link.retries >= limit:
            self._give_up(dest, link)
            return
        link.retries += 1
        for seq in sorted(link.unacked):
            payload, ts_bytes, kind = link.unacked[seq]
            self.stats.retransmits += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEventKind.RETRANSMITTED, self.pid,
                                 peer=dest, epoch=link.epoch, seq=seq,
                                 op_id=_traced_op_id(payload))
            self._transmit(dest, link, seq, payload, ts_bytes, kind)
        link.rto = min(link.rto * policy.backoff, policy.max_rto)
        self._arm_timer(dest, link)

    def _give_up(self, dest: int, link: _PeerLink) -> None:
        """Retransmit budget exhausted: park the link, report the death."""
        link.dead = True
        self.stats.give_ups += 1
        callback = self.on_peer_dead
        if callback is not None:
            callback(dest)

    def _resurrect(self, dest: int, link: _PeerLink) -> None:
        """The peer spoke again: un-park and resume retransmission."""
        assert self.reliability is not None
        link.dead = False
        link.retries = 0
        link.rto = self.reliability.retransmit.base_rto
        self._arm_timer(dest, link)

    # -- receiving -------------------------------------------------------------

    @profiled("net.recv")
    def on_wire(self, envelope: Envelope) -> None:
        if self.crashed:
            self.stats.dropped_while_crashed += 1
            return
        payload = envelope.payload
        if self.reliability is None or not isinstance(payload, ReliablePacket):
            if self.tracer is not None:
                self.tracer.emit(TraceEventKind.RELEASED, self.pid,
                                 peer=envelope.source,
                                 op_id=_traced_op_id(payload), via="direct")
            self.deliver(envelope)
            return
        self._receive_packet(envelope, payload)

    def _receive_packet(self, envelope: Envelope, packet: ReliablePacket) -> None:
        source = envelope.source
        link = self._link(source)
        # Any arrival is proof of life: resolve an outstanding probe and
        # resurrect a parked link before interpreting the packet itself.
        if link.dead:
            self._resurrect(source, link)
        probe_state = self._probes.pop(source, None)
        if probe_state is not None:
            if probe_state.timer is not None:
                self.sim.cancel(probe_state.timer)
            probe_state.on_alive(source)
        if packet.epoch < link.epoch:
            self.stats.stale_epoch_discarded += 1
            return
        if packet.epoch > link.epoch:
            # The peer restarted into a new incarnation: everything from
            # the old one -- send window, reorder buffer -- is void.
            link = self.reset_link(source, packet.epoch)
        if packet.ack >= 0:
            self._process_ack(source, link, packet.ack)
        if packet.seq < 0:  # pure acknowledgement / probe
            if packet.probe:
                # Heartbeat: answer so the prober hears back even when
                # no sequenced traffic is flowing in either direction.
                self._send_ack(source, link)
            return
        if packet.seq < link.recv_next:
            # Duplicate of something already released: re-ack so the
            # sender stops retransmitting (its ack may have been lost).
            self.stats.duplicates_discarded += 1
            self._send_ack(source, link)
            return
        if packet.seq > link.recv_next:
            # A gap: hold the packet back until retransmission fills it.
            # Releasing it now would reorder the stream and break the
            # FIFO precondition of formulas (5) and (7).
            try:
                fresh = self._holdback.hold(source, packet.seq, envelope)
            except HoldbackOverflow:
                if self.tracer is not None:
                    self.tracer.emit(TraceEventKind.HOLDBACK_OVERFLOW,
                                     self.pid, peer=source,
                                     epoch=packet.epoch, seq=packet.seq)
                raise
            if fresh:
                self.stats.out_of_order_held += 1
                if self.tracer is not None:
                    self.tracer.emit(TraceEventKind.HELD_BACK, self.pid,
                                     peer=source, epoch=packet.epoch,
                                     seq=packet.seq,
                                     op_id=_traced_op_id(packet.payload))
                    origin_wall = _payload_origin_wall(packet.payload)
                    if origin_wall is not None:
                        self.tracer.emit(TraceEventKind.SPAN, self.pid,
                                         peer=source, epoch=packet.epoch,
                                         seq=packet.seq,
                                         op_id=_traced_op_id(packet.payload),
                                         via="hold",
                                         origin_time=origin_wall)
            else:
                self.stats.duplicates_discarded += 1
            self._send_ack(source, link)
            return
        self._release(link, envelope, via="direct")
        while True:
            held = self._holdback.pop(source, link.recv_next)
            if held is None:
                break
            self._release(link, held, via="holdback")
        self._send_ack(source, link)

    def _release(self, link: _PeerLink, envelope: Envelope,
                 via: str = "direct") -> None:
        """Hand one in-sequence packet's payload to the editor."""
        link.recv_next += 1
        packet: ReliablePacket = envelope.payload
        self._release_trace.setdefault(envelope.source, []).append(
            (packet.epoch, packet.seq)
        )
        if self.tracer is not None:
            self.tracer.emit(TraceEventKind.RELEASED, self.pid,
                             peer=envelope.source, epoch=packet.epoch,
                             seq=packet.seq,
                             op_id=_traced_op_id(packet.payload), via=via)
            origin_wall = _payload_origin_wall(packet.payload)
            if origin_wall is not None:
                self.tracer.emit(TraceEventKind.SPAN, self.pid,
                                 peer=envelope.source, epoch=packet.epoch,
                                 seq=packet.seq,
                                 op_id=_traced_op_id(packet.payload),
                                 via="release", origin_time=origin_wall)
        self.deliver(
            Envelope(
                source=envelope.source,
                dest=envelope.dest,
                payload=packet.payload,
                timestamp_bytes=envelope.timestamp_bytes,
                kind=envelope.kind,
                message_id=envelope.message_id,
            )
        )

    def _send_ack(self, dest: int, link: _PeerLink) -> None:
        self.stats.acks_sent += 1
        packet = ReliablePacket(seq=-1, epoch=link.epoch, ack=link.recv_next - 1)
        self.wire_send(dest, packet, 0, "ack")

    def _process_ack(self, dest: int, link: _PeerLink, ack: int) -> None:
        acked = [seq for seq in link.unacked if seq <= ack]
        for seq in acked:
            del link.unacked[seq]
        if acked:
            assert self.reliability is not None
            link.rto = self.reliability.retransmit.base_rto  # progress: reset backoff
            link.retries = 0  # progress: refill the retransmit budget
            # Restart the retransmit clock: the surviving packets were all
            # sent more recently than the one just acknowledged, so the
            # old deadline would fire spuriously (a full RTO must elapse
            # *without progress* before we suspect loss).
            if link.timer is not None:
                self.sim.cancel(link.timer)
                link.timer = None
            self._arm_timer(dest, link)
        elif not link.unacked and link.timer is not None:
            self.sim.cancel(link.timer)
            link.timer = None

    # -- liveness probing --------------------------------------------------------

    def probe_peer(self, peer: int, on_alive: PeerCallback,
                   on_dead: PeerCallback) -> None:
        """Confirm a liveness suspicion with a bounded heartbeat.

        Sends up to ``max_probes`` probe packets, ``probe_interval``
        apart.  The first *anything* received from the peer -- an ack,
        a data packet, even stale-epoch traffic -- resolves the probe
        as alive; silence through the whole budget resolves it as dead.
        Unlike a perpetual heartbeat this always quiesces, which the
        discrete-event simulator's run-to-quiescence contract requires.
        A probe already in flight toward ``peer`` is left to finish.
        """
        if self.reliability is None:
            raise RuntimeError("liveness probes require the reliability protocol")
        if peer in self._probes:
            return
        state = _ProbeState(remaining=self.reliability.max_probes,
                            on_alive=on_alive, on_dead=on_dead)
        self._probes[peer] = state
        self._probe_tick(peer, state)

    def _probe_tick(self, peer: int, state: _ProbeState) -> None:
        state.timer = None
        if self.crashed or self._probes.get(peer) is not state:
            return
        assert self.reliability is not None
        if state.remaining <= 0:
            del self._probes[peer]
            state.on_dead(peer)
            return
        state.remaining -= 1
        self.stats.probes_sent += 1
        link = self._link(peer)
        packet = ReliablePacket(seq=-1, epoch=link.epoch,
                                ack=link.recv_next - 1, probe=True)
        # Probes ride the ack packet class: like a lost ack, a lost
        # probe forces no retransmission (the next tick re-probes).
        self.wire_send(peer, packet, 0, "ack")
        state.timer = self.sim.schedule_after(
            self.reliability.probe_interval,
            lambda: self._probe_tick(peer, state),
        )

    # -- crash / epoch management ----------------------------------------------

    def go_down(self) -> None:
        """Lose all volatile protocol state; drop traffic until revived."""
        self.crashed = True
        for peer, link in self._links.items():
            if link.timer is not None:
                self.sim.cancel(link.timer)
            self._holdback.clear(peer)
            # Post-mortem observability: how many sequenced data packets
            # the crash destroyed before the peer acknowledged them.
            self.stats.stranded_at_crash += sum(
                1 for (_p, _t, kind) in link.unacked.values() if kind != "ack"
            )
        self._links = {}
        for state in self._probes.values():
            if state.timer is not None:
                self.sim.cancel(state.timer)
        self._probes = {}

    def abandon_peer(self, peer: int) -> int:
        """Forget a peer entirely: link, reorder buffer, probes.

        Used on notifier failover: a client re-homing to the successor
        must stop retransmitting into the dead centre and must not hold
        the old centre's in-flight packets hostage in its reorder
        buffer.  The release-trace audit is deliberately kept -- what
        was already delivered stays audited.  Returns the number of
        send-window packets voided.
        """
        voided = 0
        link = self._links.pop(peer, None)
        if link is not None:
            if link.timer is not None:
                self.sim.cancel(link.timer)
            voided = len(link.unacked)
        self._holdback.clear(peer)
        state = self._probes.pop(peer, None)
        if state is not None and state.timer is not None:
            self.sim.cancel(state.timer)
        return voided

    def revive(self) -> None:
        """Accept traffic again (the caller then opens a fresh epoch)."""
        self.crashed = False

    def reset_link(self, peer: int, epoch: int) -> _PeerLink:
        """Void the link state and start the given epoch from seq 0."""
        link = _PeerLink(
            epoch=epoch,
            rto=self.reliability.retransmit.base_rto if self.reliability else 0.0,
        )
        old = self._links.get(peer)
        if old is not None and old.timer is not None:
            self.sim.cancel(old.timer)
        self._holdback.clear(peer)
        self._links[peer] = link
        return link

    # -- auditing ----------------------------------------------------------------

    def delivered_in_order(self) -> bool:
        """Audit: the editor received a gap-free in-order stream.

        Replays the trace of ``(epoch, seq)`` pairs actually handed to
        ``deliver`` (recorded at release time from the packets
        themselves, not from the holdback machinery): per source, epochs
        must never regress and each epoch's sequence numbers must be
        exactly ``0, 1, 2, ...`` in order.  Any drop leaking through,
        duplicate release, swap, or stale-epoch release makes this
        False.
        """
        for trace in self._release_trace.values():
            current_epoch, expected_seq = -1, 0
            for epoch, seq in trace:
                if epoch < current_epoch:
                    return False
                if epoch > current_epoch:
                    current_epoch, expected_seq = epoch, 0
                if seq != expected_seq:
                    return False
                expected_seq += 1
        return True


AnyTransport = Union[RawTransport, ReliableEndpoint]


def build_transport(
    sim: Scheduler,
    pid: int,
    reliability: Optional[ReliabilityConfig],
    *,
    wire_send: WireSend,
    deliver: Deliver,
    tracer: Optional[Tracer] = None,
) -> AnyTransport:
    """The transport an editor endpoint should own for this config.

    ``None`` selects the zero-overhead :class:`RawTransport` (the
    perfect-network default everywhere faults are not injected); a
    :class:`ReliabilityConfig` selects the full protocol.  ``tracer``
    hooks the transport into the observability layer; the disabled
    (``None``) path costs one attribute check per send/arrival.
    """
    if reliability is None:
        return RawTransport(wire_send=wire_send, deliver=deliver, pid=pid,
                            tracer=tracer)
    return ReliableEndpoint(sim, pid, reliability,
                            wire_send=wire_send, deliver=deliver, tracer=tracer)
