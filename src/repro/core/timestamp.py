"""Timestamp value types for the compressed scheme.

Two timestamp shapes exist in the system (paper Section 3.3):

* :class:`CompressedTimestamp` -- two integers, the only shape ever sent
  on the wire.  For an operation generated at client ``i`` the elements
  mean ``[ops received from site 0, ops generated at i]``; for an
  operation propagated by the notifier to destination ``d`` they mean
  ``[ops sent to d, ops received from d]``.
* :class:`FullTimestamp` -- an N-element snapshot of ``SV_0``, used
  *only* to timestamp operations buffered in the notifier's history
  buffer (never transmitted); it is re-compressed per remote source at
  concurrency-check time (formula 6/7).

:class:`OriginKind` records which side of the star an HB entry came
from, which selects the comparison element in formula (5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.transport import INT_WIDTH


class OriginKind(enum.Enum):
    """Provenance of a history-buffer entry, relative to the local site."""

    FROM_CENTER = "from-center"  # propagated by the notifier (y = 1 in formula 5)
    LOCAL = "local"  # generated at this site (y = 2 in formula 5)
    FROM_CLIENT = "from-client"  # notifier-side: received from a client


@dataclass(frozen=True)
class CompressedTimestamp:
    """The paper's 2-element compressed state vector timestamp."""

    first: int  # T[1]
    second: int  # T[2]

    def __post_init__(self) -> None:
        if self.first < 0 or self.second < 0:
            raise ValueError(f"timestamp elements must be >= 0: {self}")

    def as_paper_list(self) -> list[int]:
        """``[T[1], T[2]]`` in the paper's notation."""
        return [self.first, self.second]

    def size_bytes(self) -> int:
        """Wire size: the constant the paper is about."""
        return 2 * INT_WIDTH

    def __repr__(self) -> str:
        return f"[{self.first},{self.second}]"


@dataclass(frozen=True)
class FullTimestamp:
    """An N-element ``SV_0`` snapshot for notifier-buffered operations."""

    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("full timestamp must have at least one entry")
        if any(c < 0 for c in self.counts):
            raise ValueError(f"timestamp entries must be >= 0: {self.counts}")

    def __getitem__(self, site: int) -> int:
        """``T[site]`` with the paper's 1-based site indexing."""
        if not 1 <= site <= len(self.counts):
            raise IndexError(f"site ids are 1..{len(self.counts)}, got {site}")
        return self.counts[site - 1]

    def __len__(self) -> int:
        return len(self.counts)

    def get(self, site: int) -> int:
        """``T[site]``, treating sites newer than the snapshot as zero.

        Under dynamic membership a buffered timestamp may be shorter than
        the current ``SV_0``; a site admitted later had executed nothing
        when the snapshot was taken, so its count is implicitly 0.
        """
        if site < 1:
            raise IndexError(f"site ids start at 1, got {site}")
        return self.counts[site - 1] if site <= len(self.counts) else 0

    def sum_excluding(self, site: int) -> int:
        """``sum_{j != site} T[j]`` -- the compression used in formula (6)/(7)."""
        return sum(self.counts) - self.get(site)

    def as_paper_list(self) -> list[int]:
        return list(self.counts)

    def size_bytes(self) -> int:
        return INT_WIDTH * len(self.counts)

    def __repr__(self) -> str:
        return f"[{','.join(str(c) for c in self.counts)}]"
