"""Concurrency-checking formulas (3)-(7) of the paper's Section 4.

Concurrency checks happen between a newly arrived remote operation
``O_a`` and a previously executed operation ``O_b`` in the local history
buffer.  Two sides exist:

* **client side** (site ``i != 0``): both timestamps are compressed.
  Formula (4) is the general check; the star topology + FIFO guarantee
  ``O_a !-> O_b``, simplifying it to formula (5).
* **notifier side** (site 0): ``O_a`` carries a compressed timestamp,
  ``O_b`` a full ``SV_0`` snapshot that is re-compressed *per source
  site* -- formula (6), simplified by FIFO to formula (7).

Both general and simplified forms are implemented; the test suite
verifies they agree whenever the FIFO precondition holds, and the
simplified forms are what the editors use (they are the constant-time
checks the paper advertises).
"""

from __future__ import annotations

from repro.core.timestamp import CompressedTimestamp, FullTimestamp, OriginKind
from repro.clocks.vector import VectorClock


def vc_event_concurrent(
    ta: VectorClock, tb: VectorClock, site_a: int, site_b: int
) -> bool:
    """Formula (3): the classic full-vector concurrency test.

    ``O_a || O_b  <=>  T_Oa[x] > T_Ob[x] and T_Ob[y] > T_Oa[y]`` for
    operations generated at sites ``x = site_a`` and ``y = site_b``
    (0-based process indices here).
    """
    return ta[site_a] > tb[site_a] and tb[site_b] > ta[site_b]


def client_concurrent_general(
    t_new: CompressedTimestamp,
    t_buffered: CompressedTimestamp,
    buffered_origin: OriginKind,
) -> bool:
    """Formula (4): the un-simplified client-side check.

    ``O_a || O_b <=> T_Oa[1] > T_Ob[1] and T_Ob[y] > T_Oa[y]`` with
    ``y = 1`` if ``O_b`` was propagated from site 0, else ``y = 2``.
    """
    if buffered_origin is OriginKind.FROM_CENTER:
        second_condition = t_buffered.first > t_new.first
    elif buffered_origin is OriginKind.LOCAL:
        second_condition = t_buffered.second > t_new.second
    else:
        raise ValueError(f"client HB entries are FROM_CENTER or LOCAL, got {buffered_origin}")
    return t_new.first > t_buffered.first and second_condition


def client_concurrent(
    t_new: CompressedTimestamp,
    t_buffered: CompressedTimestamp,
    buffered_origin: OriginKind,
) -> bool:
    """Formula (5): the FIFO-simplified client-side check.

    ``O_a`` arrived from site 0 after ``O_b`` executed, so ``O_a !->
    O_b`` holds by FIFO + star topology and only ``T_Ob[y] > T_Oa[y]``
    needs checking.  Note: a buffered FROM_CENTER entry can never be
    concurrent (``T_Ob[1] > T_Oa[1]`` is impossible on a FIFO channel),
    so in practice only local entries ever test true.
    """
    if buffered_origin is OriginKind.FROM_CENTER:
        return t_buffered.first > t_new.first
    if buffered_origin is OriginKind.LOCAL:
        return t_buffered.second > t_new.second
    raise ValueError(f"client HB entries are FROM_CENTER or LOCAL, got {buffered_origin}")


def notifier_concurrent_general(
    t_new: CompressedTimestamp,
    new_source: int,
    t_buffered: FullTimestamp,
    buffered_source: int,
) -> bool:
    """Formula (6): the un-simplified notifier-side check.

    ``O_a`` (just arrived from site ``x = new_source``, compressed
    timestamp) versus ``O_b`` (buffered with a full timestamp,
    originally from site ``y = buffered_source``)::

        O_a || O_b  <=>  T_Oa[2] > T_Ob[x]
                         and (x == y and T_Ob[y] > T_Oa[2]
                              or x != y and sum_{j != x} T_Ob[j] > T_Oa[1])
    """
    first = t_new.second > t_buffered.get(new_source)
    if new_source == buffered_source:
        second = t_buffered[buffered_source] > t_new.second
    else:
        second = t_buffered.sum_excluding(new_source) > t_new.first
    return first and second


def notifier_concurrent(
    t_new: CompressedTimestamp,
    new_source: int,
    t_buffered: FullTimestamp,
    buffered_source: int,
) -> bool:
    """Formula (7): the FIFO-simplified notifier-side check.

    ``O_a || O_b  <=>  x != y and sum_{j != x} T_Ob[j] > T_Oa[1]``.

    The dropped conditions hold automatically: ``O_a !-> O_b`` because
    ``O_b`` executed before ``O_a`` arrived, and same-source operations
    are totally ordered by the FIFO channel from that source.
    """
    if new_source == buffered_source:
        return False
    return t_buffered.sum_excluding(new_source) > t_new.first
