"""The History Buffer (HB) of executed, timestamped operations.

Every site maintains an HB of operations in execution order (paper
Section 2.3).  Entries record:

* the executed operation, in the form it was executed in **and kept
  up to date**: when a later remote operation is symmetrically
  transformed against a concurrent entry, the entry's operation is
  replaced by its inclusion-transformed successor, so the buffer always
  reflects the current document context (the treatment Sun et al. 1998
  give the GOTO history);
* the timestamp assigned at buffering time (compressed at clients, full
  ``SV_0`` snapshot at the notifier) -- **never** rewritten, because the
  concurrency formulas are defined over the original counts;
* provenance: originating site and :class:`~repro.core.timestamp.OriginKind`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Union

from repro.core.timestamp import CompressedTimestamp, FullTimestamp, OriginKind

Timestamp = Union[CompressedTimestamp, FullTimestamp]


@dataclass
class HistoryEntry:
    """One executed operation in a history buffer."""

    op: Any  # current (possibly re-transformed) form of the operation
    timestamp: Timestamp
    origin_site: int  # site the operation was originally generated at
    origin_kind: OriginKind
    op_id: Any = None  # stable identity of the operation as buffered
    executed_at: float = 0.0  # virtual time of execution (for diagnostics)
    # Notifier entries: the identity of the *original* client operation
    # the buffered (transformed) operation derives from.  Formula (6)/(7)
    # is framed over "operations originally generated at sites x and y",
    # so the ground-truth oracle compares original identities.
    source_op_id: Any = None
    # Local entries whose OT type supports inversion: the inverse of the
    # operation relative to its generation pre-state, used by undo while
    # the entry is still the site's most recent execution.
    inverse: Any = None

    def __repr__(self) -> str:
        return f"HB({self.op_id or self.op!r} @ {self.timestamp!r} from s{self.origin_site})"


@dataclass
class HistoryBuffer:
    """An append-only buffer of :class:`HistoryEntry` in execution order."""

    entries: list[HistoryEntry] = field(default_factory=list)

    def append(self, entry: HistoryEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[HistoryEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> HistoryEntry:
        return self.entries[index]

    def concurrent_entries(
        self, is_concurrent: Callable[[HistoryEntry], bool]
    ) -> list[HistoryEntry]:
        """Entries satisfying the supplied concurrency predicate, in order."""
        return [entry for entry in self.entries if is_concurrent(entry)]

    def op_ids(self) -> list[Any]:
        """Operation identities in execution order (for Fig. 3 assertions)."""
        return [entry.op_id for entry in self.entries]

    def clear(self) -> None:
        self.entries.clear()

    def garbage_collect(self, keep_if: Callable[[HistoryEntry], bool]) -> int:
        """Drop entries failing ``keep_if``; returns the number removed.

        The paper keeps HBs unbounded; real deployments prune entries no
        longer concurrent with anything in flight.  The star editor uses
        this with an acknowledgement horizon (see
        ``StarClient.collect_garbage``).
        """
        before = len(self.entries)
        self.entries = [entry for entry in self.entries if keep_if(entry)]
        return before - len(self.entries)
