"""State vectors: the client's 2-vector and the notifier's full vector.

Paper Section 3.2.  For a system of N collaborating sites (identifiers
``1..N``) plus the notifier (site 0):

* every site ``i != 0`` maintains ``SV_i = [received_from_center,
  generated_locally]`` -- the compressed, constant-size-2 vector clock;
* the notifier maintains ``SV_0[i]`` = number of operations received
  from site ``i`` (``1 <= i <= N``) -- full size, but **never sent**:
  it is compressed per destination via formulas (1)-(2) at propagation
  time.

The paper indexes vector elements from 1; this implementation exposes
named accessors so no off-by-one leaks into call sites, and the
``as_paper_list`` helpers print in the paper's notation for the Fig. 3
replay tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.timestamp import CompressedTimestamp, FullTimestamp
from repro.net.transport import INT_WIDTH


@dataclass
class ClientStateVector:
    """``SV_i`` for a collaborating site ``i != 0`` (two integers).

    Maintenance rules (paper Section 3.2):

    1. initially both elements are 0;
    2. after executing an operation propagated from site 0, the first
       element is incremented;
    3. after executing a local operation, the second element is
       incremented.
    """

    site: int
    received_from_center: int = 0  # SV_i[1]
    generated_locally: int = 0  # SV_i[2]

    def __post_init__(self) -> None:
        if self.site <= 0:
            raise ValueError(f"client site ids are 1..N, got {self.site}")

    def record_remote_execution(self) -> None:
        """Rule 2: an operation propagated from site 0 was executed."""
        self.received_from_center += 1

    def record_local_execution(self) -> None:
        """Rule 3: a locally generated operation was executed."""
        self.generated_locally += 1

    def timestamp(self) -> CompressedTimestamp:
        """Timestamp a freshly executed local operation (``T_O = SV_i``)."""
        return CompressedTimestamp(self.received_from_center, self.generated_locally)

    def as_paper_list(self) -> list[int]:
        """``[SV_i[1], SV_i[2]]`` in the paper's notation."""
        return [self.received_from_center, self.generated_locally]

    def storage_ints(self) -> int:
        """Resident clock-state integers (the paper's headline: 2)."""
        return 2


@dataclass
class NotifierStateVector:
    """``SV_0``: the notifier's full N-element state vector.

    ``SV_0[i]`` counts operations received from site ``i``.  Used only
    locally -- for timestamping buffered operations with full vectors and
    for computing per-destination compressed timestamps.
    """

    n_sites: int
    counts: list[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_sites <= 0:
            raise ValueError(f"n_sites must be positive, got {self.n_sites}")
        self.counts = [0] * self.n_sites

    def _check_site(self, site: int) -> None:
        if not 1 <= site <= self.n_sites:
            raise ValueError(f"site ids are 1..{self.n_sites}, got {site}")

    def __getitem__(self, site: int) -> int:
        """``SV_0[site]`` with the paper's 1-based site indexing."""
        self._check_site(site)
        return self.counts[site - 1]

    def record_execution_from(self, site: int) -> None:
        """An operation received from ``site`` was executed at site 0."""
        self._check_site(site)
        self.counts[site - 1] += 1

    def total(self) -> int:
        """Total operations executed at the notifier."""
        return sum(self.counts)

    def add_site(self) -> int:
        """Grow the vector for a newly admitted site; returns its id.

        Late joiners receive the document state out of band (a snapshot),
        so their count starts at zero; see
        :meth:`repro.editor.star_notifier.StarNotifier.admit_client`.
        """
        self.counts.append(0)
        self.n_sites += 1
        return self.n_sites

    def compress_for_destination(self, dest: int) -> CompressedTimestamp:
        """Formulas (1)-(2): the 2-element timestamp for an op sent to ``dest``.

        ``T[1] = sum_{j != dest} SV_0[j]`` -- operations received from all
        sites except the destination, i.e. exactly how many operations
        site 0 has propagated *to* ``dest`` (each executed op is
        broadcast to everyone but its originator);
        ``T[2] = SV_0[dest]`` -- operations received from the destination.
        """
        self._check_site(dest)
        total = self.total()
        own = self.counts[dest - 1]
        return CompressedTimestamp(total - own, own)

    def full_timestamp(self) -> FullTimestamp:
        """Snapshot for timestamping an operation buffered in ``HB_0``."""
        return FullTimestamp(tuple(self.counts))

    def as_paper_list(self) -> list[int]:
        """``[SV_0[1], ..., SV_0[N]]`` in the paper's notation."""
        return list(self.counts)

    def storage_ints(self) -> int:
        """Resident clock-state integers (N at the notifier)."""
        return self.n_sites

    def size_bytes(self) -> int:
        return INT_WIDTH * self.n_sites
