"""The paper's contribution: compressed vector clocks for star-topology OT.

* :mod:`repro.core.state_vector` -- the client's 2-element state vector
  and the notifier's full N-element state vector, including the
  compression formulas (1)-(2) of Section 3.3.
* :mod:`repro.core.timestamp` -- timestamp value types: compressed
  2-element timestamps carried on the wire and full timestamps used only
  inside the notifier's history buffer.
* :mod:`repro.core.concurrency` -- the concurrency-checking formulas
  (3)-(7) of Section 4, in both their general and FIFO-simplified forms.
* :mod:`repro.core.history` -- the History Buffer (HB) of executed,
  timestamped operations maintained at every site.
"""

from repro.core.state_vector import ClientStateVector, NotifierStateVector
from repro.core.timestamp import (
    CompressedTimestamp,
    FullTimestamp,
    OriginKind,
)
from repro.core.concurrency import (
    client_concurrent,
    client_concurrent_general,
    notifier_concurrent,
    notifier_concurrent_general,
    vc_event_concurrent,
)
from repro.core.history import HistoryBuffer, HistoryEntry

__all__ = [
    "ClientStateVector",
    "NotifierStateVector",
    "CompressedTimestamp",
    "FullTimestamp",
    "OriginKind",
    "client_concurrent",
    "client_concurrent_general",
    "notifier_concurrent",
    "notifier_concurrent_general",
    "vc_event_concurrent",
    "HistoryBuffer",
    "HistoryEntry",
]
