"""The clock interface layer: one protocol over every clock family.

Every logical-clock scheme in this codebase answers the same four
questions -- *record a local event*, *timestamp an outgoing message*,
*absorb an incoming timestamp*, *how many resident integers does that
cost* -- but each module grew its own vocabulary for them
(``tick``/``local_event``/``record_local_execution``,
``prepare_send``/``timestamp``, ``receive``/``merge``/
``record_remote_execution``).  :class:`ClockProtocol` is the uniform
surface, and this module provides one adapter per family so the
conformance suite (``tests/unit/test_clock_protocol.py``) can run the
same tick/merge/compare/storage assertions across all of them:

=====================  ============================  ========  =========
family                 wraps                         decides   storage
                                                     online?   (ints)
=====================  ============================  ========  =========
``vector``             :class:`VectorClock`          yes       N
``matrix``             :class:`MatrixClock`          yes       N^2
``sk``                 :class:`SKProcess`            yes       3N
``fz``                 :class:`FZProcess`            no        N + 1
``lamport``            :class:`LamportClock`         no        1
``dimension``          projected :class:`VectorClock`  yes*    |coords|
``compressed``         :class:`ClientStateVector`    no**      2
=====================  ============================  ========  =========

\\* faithful only when the projection keeps all N coordinates -- the
Charron-Bost bound made executable (see :mod:`repro.clocks.dimension`).

\\** standing alone.  The compressed 2-integer timestamp decides
concurrency only *within the star discipline*, where the editor layer
supplies origin metadata to formulas (5)/(7) (see
:mod:`repro.core.concurrency`) -- which is precisely the paper's point:
the notifier's transformation redefines the causality relation so two
integers suffice there, while no context-free 2-integer comparison can
be faithful in general.

``compare`` therefore returns ``None`` for families that cannot decide
online; returning a wrong verdict is the one thing an implementation
must never do, and the conformance suite checks every non-``None``
verdict against the full-vector oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.clocks.fz import FZProcess
from repro.clocks.lamport import LamportClock
from repro.clocks.matrix import MatrixClock
from repro.clocks.sk import SKMessage, SKProcess
from repro.clocks.vector import Ordering, VectorClock, compare
from repro.core.state_vector import ClientStateVector
from repro.net.transport import INT_WIDTH
from repro.obs import profiler as _profiler


@runtime_checkable
class ClockProtocol(Protocol):
    """One site's logical clock, whatever the family.

    Semantics of the four event-facing methods:

    * :meth:`tick` -- record one internal (local) event;
    * :meth:`timestamp` -- record a *send* event toward ``dest`` and
      return the wire timestamp to attach to the message;
    * :meth:`merge` -- record a *receive* event: absorb the wire
      timestamp of a message arriving from ``source``;
    * :meth:`snapshot` -- this family's comparable clock value for the
      current event (full vector, scalar, 2-integer pair, ...).

    :meth:`compare` orders two values previously obtained from
    :meth:`snapshot` and may return ``None`` when the family cannot
    decide online -- never a wrong verdict.  :meth:`storage_ints` and
    :meth:`timestamp_bytes` are the two accounting hooks the CLAIM-MEM
    and CLAIM-OVH benchmarks rely on.
    """

    def tick(self) -> None: ...

    def timestamp(self, dest: int) -> Any: ...

    def merge(self, source: int, wire: Any) -> None: ...

    def snapshot(self) -> Any: ...

    def compare(self, a: Any, b: Any) -> Optional[Ordering]: ...

    def storage_ints(self) -> int: ...

    def timestamp_bytes(self, wire: Any) -> int: ...


class VectorClockSite:
    """Full Fidge/Mattern vector clock (the ground-truth family)."""

    decides_online = True

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.vc = VectorClock.zero(n)

    def tick(self) -> None:
        self.vc = self.vc.tick(self.pid)

    def timestamp(self, dest: int) -> VectorClock:
        self.tick()
        return self.vc

    def merge(self, source: int, wire: VectorClock) -> None:
        self.vc = self.vc.merge(wire).tick(self.pid)

    def snapshot(self) -> VectorClock:
        return self.vc

    def compare(self, a: VectorClock, b: VectorClock) -> Optional[Ordering]:
        return compare(a, b)

    def storage_ints(self) -> int:
        return self.vc.storage_ints()

    def timestamp_bytes(self, wire: VectorClock) -> int:
        return wire.size_bytes(INT_WIDTH)


class MatrixClockSite:
    """N x N matrix clock (vector comparison plus stability knowledge)."""

    decides_online = True

    def __init__(self, pid: int, n: int) -> None:
        self.clock = MatrixClock(pid, n)

    def tick(self) -> None:
        self.clock.local_event()

    def timestamp(self, dest: int) -> list[list[int]]:
        return self.clock.prepare_send()

    def merge(self, source: int, wire: list[list[int]]) -> None:
        self.clock.receive(source, wire)

    def snapshot(self) -> VectorClock:
        return self.clock.vector()

    def compare(self, a: VectorClock, b: VectorClock) -> Optional[Ordering]:
        return compare(a, b)

    def storage_ints(self) -> int:
        return self.clock.storage_ints()

    def timestamp_bytes(self, wire: list[list[int]]) -> int:
        return INT_WIDTH * len(wire) * len(wire)


class SKClockSite:
    """Singhal-Kshemkalyani differential compression over FIFO channels."""

    decides_online = True

    def __init__(self, pid: int, n: int) -> None:
        self.process = SKProcess(pid, n)

    def tick(self) -> None:
        self.process.local_event()

    def timestamp(self, dest: int) -> SKMessage:
        return self.process.prepare_send(dest)

    def merge(self, source: int, wire: SKMessage) -> None:
        self.process.receive(wire)

    def snapshot(self) -> VectorClock:
        """The reconstructed full vector -- exact under FIFO delivery."""
        return self.process.vector()

    def compare(self, a: VectorClock, b: VectorClock) -> Optional[Ordering]:
        return compare(a, b)

    def storage_ints(self) -> int:
        return self.process.storage_ints()

    def timestamp_bytes(self, wire: SKMessage) -> int:
        return wire.size_bytes(INT_WIDTH)


class FZClockSite:
    """Fowler-Zwaenepoel direct-dependency tracking: offline family."""

    decides_online = False

    def __init__(self, pid: int, n: int) -> None:
        self.process = FZProcess(pid, n)

    def tick(self) -> None:
        self.process.local_event()

    def timestamp(self, dest: int) -> Any:
        message, _record = self.process.prepare_send()
        return message

    def merge(self, source: int, wire: Any) -> None:
        self.process.receive(wire)

    def snapshot(self) -> tuple[int, int]:
        """Only the event's identity: causality needs the offline pass."""
        return (self.process.pid, self.process.event_index)

    def compare(self, a: Any, b: Any) -> Optional[Ordering]:
        """Undecidable online: FZ needs the whole dependency log (see
        :func:`repro.clocks.fz.reconstruct_vector_times`)."""
        return None

    def storage_ints(self) -> int:
        return self.process.storage_ints()

    def timestamp_bytes(self, wire: Any) -> int:
        return wire.size_bytes(INT_WIDTH)


class LamportClockSite:
    """Scalar Lamport clock: orders events, cannot detect concurrency."""

    decides_online = False

    def __init__(self, pid: int, n: int) -> None:
        self.clock = LamportClock()

    def tick(self) -> None:
        self.clock.tick()

    def timestamp(self, dest: int) -> int:
        return self.clock.send()

    def merge(self, source: int, wire: int) -> None:
        self.clock.receive(wire)

    def snapshot(self) -> int:
        return self.clock.time

    def compare(self, a: int, b: int) -> Optional[Ordering]:
        """Undecidable: ``t(a) < t(b)`` does not imply ``a -> b``."""
        return None

    def storage_ints(self) -> int:
        return self.clock.storage_ints()

    def timestamp_bytes(self, wire: int) -> int:
        return INT_WIDTH


class CompressedClockSite:
    """The paper's 2-integer client state vector, standing alone.

    ``tick`` is a local operation execution (rule 3 of Section 3.2),
    ``merge`` is the execution of an operation propagated from the
    notifier (rule 2), and ``timestamp`` is the compressed 2-element
    wire timestamp -- constant size regardless of system size, the
    headline of the paper.

    ``compare`` returns ``None``: outside the star discipline two
    compressed timestamps carry too little information to decide
    concurrency (two different sites' first operations both carry
    ``[0, 1]``).  Inside it, the editor layer decides via formulas
    (5)/(7) with the origin metadata it holds -- see
    :func:`repro.core.concurrency.client_concurrent` and
    :func:`repro.core.concurrency.notifier_concurrent`.
    """

    decides_online = False

    def __init__(self, pid: int, n: int) -> None:
        # Site ids in the star are 1-based; map pid 0 onto site 1 so the
        # conformance harness can use 0-based pids uniformly.
        self.sv = ClientStateVector(pid + 1)

    def tick(self) -> None:
        self.sv.record_local_execution()

    def timestamp(self, dest: int) -> Any:
        self.tick()
        return self.sv.timestamp()

    def merge(self, source: int, wire: Any) -> None:
        self.sv.record_remote_execution()

    def snapshot(self) -> Any:
        return self.sv.timestamp()

    def compare(self, a: Any, b: Any) -> Optional[Ordering]:
        return None

    def storage_ints(self) -> int:
        return self.sv.storage_ints()

    def timestamp_bytes(self, wire: Any) -> int:
        return wire.size_bytes()


class ProfiledClock:
    """A :class:`ClockProtocol` decorator reporting to the active profiler.

    Wraps any clock family and routes the four event-facing primitives
    plus :meth:`compare` through ``clock.<family>.<primitive>`` phases
    of :data:`repro.obs.profiler.ACTIVE` -- which is how the bench
    harness gets a per-primitive cost breakdown for every family
    through the one shared interface, without touching the families
    themselves.  The accounting hooks (:meth:`storage_ints`,
    :meth:`timestamp_bytes`) and :meth:`snapshot` pass straight
    through: they are measurement, not protocol work.

    With no profiler installed every wrapped call costs one
    module-attribute check before delegating.
    """

    def __init__(self, inner: ClockProtocol, family: str) -> None:
        self.inner = inner
        self.family = family
        self._tick_phase = f"clock.{family}.tick"
        self._timestamp_phase = f"clock.{family}.timestamp"
        self._merge_phase = f"clock.{family}.merge"
        self._compare_phase = f"clock.{family}.compare"

    def tick(self) -> None:
        profiler = _profiler.ACTIVE
        if profiler is None:
            self.inner.tick()
            return
        with profiler.phase(self._tick_phase):
            self.inner.tick()

    def timestamp(self, dest: int) -> Any:
        profiler = _profiler.ACTIVE
        if profiler is None:
            return self.inner.timestamp(dest)
        with profiler.phase(self._timestamp_phase):
            return self.inner.timestamp(dest)

    def merge(self, source: int, wire: Any) -> None:
        profiler = _profiler.ACTIVE
        if profiler is None:
            self.inner.merge(source, wire)
            return
        with profiler.phase(self._merge_phase):
            self.inner.merge(source, wire)

    def snapshot(self) -> Any:
        return self.inner.snapshot()

    def compare(self, a: Any, b: Any) -> Optional[Ordering]:
        profiler = _profiler.ACTIVE
        if profiler is None:
            return self.inner.compare(a, b)
        with profiler.phase(self._compare_phase):
            return self.inner.compare(a, b)

    def storage_ints(self) -> int:
        return self.inner.storage_ints()

    def timestamp_bytes(self, wire: Any) -> int:
        return self.inner.timestamp_bytes(wire)


@dataclass(frozen=True)
class ClockFamily:
    """A registered clock family for the conformance suite."""

    name: str
    factory: Callable[[int, int], ClockProtocol]  # (pid, n) -> clock
    decides_online: bool
    storage_formula: Callable[[int], int]  # n -> expected storage_ints


def _clock_families() -> tuple[ClockFamily, ...]:
    # Imported here: dimension depends on vector, which this module also
    # re-exports; keeping the import local avoids ordering surprises.
    from repro.clocks.dimension import ProjectedClockSite

    return (
        ClockFamily("vector", VectorClockSite, True, lambda n: n),
        ClockFamily("matrix", MatrixClockSite, True, lambda n: n * n),
        ClockFamily("sk", SKClockSite, True, lambda n: 3 * n),
        ClockFamily("fz", FZClockSite, False, lambda n: n + 1),
        ClockFamily("lamport", LamportClockSite, False, lambda n: 1),
        ClockFamily(
            "dimension",
            lambda pid, n: ProjectedClockSite(pid, n, tuple(range(n))),
            True,
            lambda n: n,
        ),
        ClockFamily("compressed", CompressedClockSite, False, lambda n: 2),
    )


CLOCK_FAMILIES: tuple[ClockFamily, ...] = _clock_families()
