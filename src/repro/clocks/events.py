"""Generic event model for building causality ground truth.

The reproduction never trusts the compressed scheme on faith: every
session records a log of *events* -- operation generations and
executions (paper Definition 1) -- from which
:mod:`repro.analysis.causality` rebuilds the happened-before relation
with full vector clocks and an explicit dependency DAG.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.clocks.vector import VectorClock


class EventKind(enum.Enum):
    """The two event kinds of the paper's Definition 1."""

    GENERATE = "generate"  # an operation is generated at its origin site
    EXECUTE = "execute"  # an operation is executed at some site


@dataclass(frozen=True)
class Event:
    """One event in a distributed computation.

    ``op_id`` identifies the *original* operation an event concerns
    (transformed forms keep the original's identity for ground-truth
    purposes; the paper's Fig. 3 treats notifier outputs as fresh
    operations, which the oracle models separately).
    """

    site: int
    seq: int  # 0-based position in the site's local event order
    kind: EventKind
    op_id: Hashable

    def label(self) -> str:
        return f"s{self.site}e{self.seq}:{self.kind.value}:{self.op_id}"


@dataclass
class EventLog:
    """An append-only log of events with site-local ordering.

    Maintains per-site sequence counters and assigns full vector clocks
    as events are appended, so the log doubles as a reference
    vector-clock run over the same computation.
    """

    n_sites: int
    events: list[Event] = field(default_factory=list)
    clocks: dict[Event, VectorClock] = field(default_factory=dict)
    _site_seq: list[int] = field(init=False)
    _site_clock: list[VectorClock] = field(init=False)
    _generation_clock: dict[Hashable, VectorClock] = field(default_factory=dict)
    _counter: Iterator[int] = field(default_factory=itertools.count)

    def __post_init__(self) -> None:
        if self.n_sites <= 0:
            raise ValueError(f"n_sites must be positive, got {self.n_sites}")
        self._site_seq = [0] * self.n_sites
        self._site_clock = [VectorClock.zero(self.n_sites) for _ in range(self.n_sites)]

    def _append(self, site: int, kind: EventKind, op_id: Hashable) -> Event:
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range for n_sites={self.n_sites}")
        event = Event(site, self._site_seq[site], kind, op_id)
        self._site_seq[site] += 1
        self.events.append(event)
        return event

    def generate(self, site: int, op_id: Hashable) -> Event:
        """Record generation of ``op_id`` at ``site``."""
        event = self._append(site, EventKind.GENERATE, op_id)
        clock = self._site_clock[site].tick(site)
        self._site_clock[site] = clock
        self.clocks[event] = clock
        if op_id in self._generation_clock:
            raise ValueError(f"operation {op_id!r} generated twice")
        self._generation_clock[op_id] = clock
        return event

    def execute(self, site: int, op_id: Hashable) -> Event:
        """Record execution of ``op_id`` at ``site``.

        For a remote execution the site's clock merges the operation's
        generation clock first (the message carries it), then ticks --
        the standard vector-clock receive rule.
        """
        if op_id not in self._generation_clock:
            raise ValueError(f"operation {op_id!r} executed before generation was logged")
        event = self._append(site, EventKind.EXECUTE, op_id)
        merged = self._site_clock[site].merge(self._generation_clock[op_id])
        clock = merged.tick(site)
        self._site_clock[site] = clock
        self.clocks[event] = clock
        return event

    def generation_clock(self, op_id: Hashable) -> VectorClock:
        """The vector clock at ``op_id``'s generation event."""
        return self._generation_clock[op_id]

    def site_clock(self, site: int) -> VectorClock:
        """The site's current clock (its latest event, or zero)."""
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range for n_sites={self.n_sites}")
        return self._site_clock[site]

    def absorb_snapshot(self, site: int, clock: VectorClock) -> None:
        """Merge a state-transfer's causal clock into ``site``'s clock.

        A snapshot (late join or crash recovery, see
        :class:`repro.editor.messages.SnapshotMessage`) delivers the sender's
        entire causal history in bulk; merging the clock captured at
        snapshot time keeps this reference vector-clock run -- and hence
        the concurrency oracle -- exact across the transfer.
        """
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range for n_sites={self.n_sites}")
        self._site_clock[site] = self._site_clock[site].merge(clock)

    def op_ids(self) -> list[Hashable]:
        """All generated operation ids in generation order."""
        order: list[Hashable] = []
        for event in self.events:
            if event.kind is EventKind.GENERATE:
                order.append(event.op_id)
        return order
