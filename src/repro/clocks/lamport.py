"""Scalar Lamport clocks (Lamport, CACM 1978).

Included for two reasons:

* the mesh baseline editor needs a deterministic total order extending
  causality; ``(lamport, site_id)`` provides one;
* the benchmarks contrast the three timestamp families -- scalar (cannot
  detect concurrency), full vector (can, at O(N) bytes) and the paper's
  compressed vector (can, at O(1) bytes in a star topology).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LamportClock:
    """A mutable scalar logical clock for one process."""

    time: int = 0

    def tick(self) -> int:
        """Advance for a local event; returns the new timestamp."""
        self.time += 1
        return self.time

    def send(self) -> int:
        """Timestamp an outgoing message (counts as a local event)."""
        return self.tick()

    def receive(self, message_time: int) -> int:
        """Merge an incoming message timestamp; returns the new time."""
        if message_time < 0:
            raise ValueError(f"message timestamp must be >= 0, got {message_time}")
        self.time = max(self.time, message_time) + 1
        return self.time

    def storage_ints(self) -> int:
        """Resident integers a site pays to hold this clock: 1."""
        return 1


@dataclass(frozen=True, order=True)
class TotalOrderKey:
    """A total order on events extending the causal order.

    ``lamport`` strictly increases along every causal edge, so sorting by
    ``(lamport, site, seq)`` yields a linearisation of happened-before --
    the serialisation baseline of paper Section 2.2 ("divergence can
    always be resolved by a serialization protocol").
    """

    lamport: int
    site: int
    seq: int = field(default=0)

    @staticmethod
    def size_bytes() -> int:
        return 12
