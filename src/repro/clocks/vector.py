"""Full vector clocks (Fidge 1988 / Mattern 1989).

These are the ground-truth instrument of the reproduction: the
compressed scheme's every concurrency verdict is checked against plain
vector-clock comparison (paper formula 3) in the test suite.

The implementation keeps clocks as immutable ``tuple[int, ...]`` wrapped
in a small value class; bulk comparisons used by the benchmarks are
vectorised with numpy in :func:`bulk_concurrent`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class Ordering(enum.Enum):
    """Result of comparing two vector clocks."""

    BEFORE = "before"  # a happened-before b
    AFTER = "after"  # b happened-before a
    CONCURRENT = "concurrent"
    EQUAL = "equal"


@dataclass(frozen=True)
class VectorClock:
    """An immutable N-element vector clock.

    ``clock[i]`` counts the events of process ``i`` known to the holder.
    Processes are identified by 0-based index into the vector.
    """

    counts: tuple[int, ...]

    @classmethod
    def zero(cls, n: int) -> "VectorClock":
        """The initial clock for a system of ``n`` processes."""
        if n <= 0:
            raise ValueError(f"system size must be positive, got {n}")
        return cls((0,) * n)

    @classmethod
    def of(cls, counts: Iterable[int]) -> "VectorClock":
        counts = tuple(counts)
        if any(c < 0 for c in counts):
            raise ValueError(f"vector clock entries must be >= 0: {counts}")
        return cls(counts)

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("vector clock must have at least one entry")

    def __len__(self) -> int:
        return len(self.counts)

    def __getitem__(self, i: int) -> int:
        return self.counts[i]

    def tick(self, process: int) -> "VectorClock":
        """Advance ``process``'s own component by one (a local event)."""
        if not 0 <= process < len(self.counts):
            raise IndexError(f"process {process} out of range for size {len(self.counts)}")
        counts = list(self.counts)
        counts[process] += 1
        return VectorClock(tuple(counts))

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (message receipt)."""
        self._check_size(other)
        return VectorClock(tuple(max(a, b) for a, b in zip(self.counts, other.counts)))

    def sum(self) -> int:
        """Total event count; strictly increases along causal edges."""
        return sum(self.counts)

    def dominates(self, other: "VectorClock") -> bool:
        """``self >= other`` component-wise."""
        self._check_size(other)
        return all(a >= b for a, b in zip(self.counts, other.counts))

    def _check_size(self, other: "VectorClock") -> None:
        if len(self.counts) != len(other.counts):
            raise ValueError(
                f"vector clock size mismatch: {len(self.counts)} vs {len(other.counts)}"
            )

    def size_bytes(self, int_width: int = 4) -> int:
        """Wire size when serialised as fixed-width integers."""
        return int_width * len(self.counts)

    def storage_ints(self) -> int:
        """Resident integers a site pays to hold this clock: N."""
        return len(self.counts)

    def __repr__(self) -> str:
        return f"VC{list(self.counts)}"


def compare(a: VectorClock, b: VectorClock) -> Ordering:
    """Full vector-clock comparison (the textbook partial order)."""
    a._check_size(b)
    a_le_b = True
    b_le_a = True
    for x, y in zip(a.counts, b.counts):
        if x > y:
            a_le_b = False
        if y > x:
            b_le_a = False
    if a_le_b and b_le_a:
        return Ordering.EQUAL
    if a_le_b:
        return Ordering.BEFORE
    if b_le_a:
        return Ordering.AFTER
    return Ordering.CONCURRENT


def happened_before(a: VectorClock, b: VectorClock) -> bool:
    """True iff ``a`` causally precedes ``b``."""
    return compare(a, b) is Ordering.BEFORE


def concurrent(a: VectorClock, b: VectorClock) -> bool:
    """True iff neither clock causally precedes the other."""
    return compare(a, b) is Ordering.CONCURRENT


def event_concurrent(
    ta: VectorClock, tb: VectorClock, site_a: int, site_b: int
) -> bool:
    """Paper formula (3): concurrency via the originating sites' entries.

    For *event timestamps* (clock values taken at the events themselves),
    ``Oa || Ob  <=>  T_Oa[x] > T_Ob[x] and T_Ob[y] > T_Oa[y]`` where
    ``x``/``y`` are the generating sites.  Equivalent to
    :func:`concurrent` for well-formed event timestamps, but implemented
    separately because the compressed checks (formulas 4-7) derive from
    this form.
    """
    return ta[site_a] > tb[site_a] and tb[site_b] > ta[site_b]


def bulk_concurrent(clocks_a: Sequence[VectorClock], clocks_b: Sequence[VectorClock]) -> np.ndarray:
    """Vectorised pairwise concurrency check for equal-length sequences.

    Used by the CLAIM-CHECK benchmark to give the *full-vector* baseline
    its best shot (numpy broadcasting rather than a Python loop).
    """
    if len(clocks_a) != len(clocks_b):
        raise ValueError("sequences must have equal length")
    if not clocks_a:
        return np.zeros(0, dtype=bool)
    a = np.array([c.counts for c in clocks_a], dtype=np.int64)
    b = np.array([c.counts for c in clocks_b], dtype=np.int64)
    a_le_b = (a <= b).all(axis=1)
    b_le_a = (b <= a).all(axis=1)
    return ~(a_le_b | b_le_a)
