"""Logical clocks: ground truth and baseline compression techniques.

The paper positions its constant-size-2 scheme against three families:

* full vector clocks (Fidge/Mattern) -- :mod:`repro.clocks.vector`;
* scalar Lamport clocks (insufficient for concurrency detection, shown
  for contrast) -- :mod:`repro.clocks.lamport`;
* dynamic differential compression (Singhal & Kshemkalyani, IPL 1992,
  the paper's reference [13]) -- :mod:`repro.clocks.sk`;
* offline scalar techniques (Fowler & Zwaenepoel, ICDCS 1990, reference
  [7]) that reconstruct vector time from a dependency graph --
  :mod:`repro.clocks.fz`.

These are real implementations, used both as correctness oracles (the
compressed scheme's concurrency verdicts must agree with full vector
clocks) and as baselines in the overhead benchmarks (CLAIM-OVH /
CLAIM-MEM in DESIGN.md).

:mod:`repro.clocks.base` defines :class:`ClockProtocol`, the uniform
tick/timestamp/merge/compare/storage interface every family implements
(via a thin adapter per family), and :data:`CLOCK_FAMILIES`, the
registry the conformance suite iterates over.
"""

from repro.clocks.base import (
    CLOCK_FAMILIES,
    ClockFamily,
    ClockProtocol,
    CompressedClockSite,
    FZClockSite,
    LamportClockSite,
    MatrixClockSite,
    SKClockSite,
    VectorClockSite,
)
from repro.clocks.dimension import ProjectedClockSite
from repro.clocks.lamport import LamportClock
from repro.clocks.vector import Ordering, VectorClock, compare, concurrent, happened_before
from repro.clocks.sk import SKMessage, SKProcess
from repro.clocks.fz import FZProcess, reconstruct_vector_times
from repro.clocks.events import Event, EventKind, EventLog

__all__ = [
    "LamportClock",
    "VectorClock",
    "Ordering",
    "compare",
    "concurrent",
    "happened_before",
    "SKProcess",
    "SKMessage",
    "FZProcess",
    "reconstruct_vector_times",
    "Event",
    "EventKind",
    "EventLog",
    "ClockProtocol",
    "ClockFamily",
    "CLOCK_FAMILIES",
    "VectorClockSite",
    "MatrixClockSite",
    "SKClockSite",
    "FZClockSite",
    "LamportClockSite",
    "CompressedClockSite",
    "ProjectedClockSite",
]
