"""Fowler-Zwaenepoel direct-dependency tracking.

Implementation of the paper's reference [7] (Fowler & Zwaenepoel,
"Causal distributed breakpoints", ICDCS 1990): the *offline* family of
vector-clock compression.  Each message carries a **single integer**
(the sender's current event index); each process records only its
*direct* dependencies.  The full vector time of any event can then be
recovered offline by a transitive traversal of the recorded dependency
information.

This is the extreme point of the compression spectrum the paper's
introduction discusses: O(1) timestamp bytes, but recovering causality
requires the complete dependency data of the computation, so it cannot
answer online concurrency queries -- which is exactly why the paper's
scheme (O(1) bytes *and* online checks) is interesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.vector import VectorClock


@dataclass(frozen=True)
class FZMessage:
    """A Fowler-Zwaenepoel message timestamp: one integer."""

    sender: int
    sender_event: int  # the sender's event index at send time

    def size_bytes(self, int_width: int = 4) -> int:
        return int_width


@dataclass(frozen=True)
class FZEventRecord:
    """A logged event with its direct-dependency vector."""

    pid: int
    index: int  # 1-based event index within the process
    direct_deps: tuple[int, ...]  # per-process latest direct dependency


@dataclass
class FZProcess:
    """One process performing direct-dependency tracking."""

    pid: int
    n: int
    event_index: int = 0
    dep: list[int] = field(init=False)  # latest *direct* dependency per process
    log: list[FZEventRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.pid < self.n:
            raise ValueError(f"pid {self.pid} out of range for n={self.n}")
        self.dep = [0] * self.n

    def _record(self) -> FZEventRecord:
        self.event_index += 1
        self.dep[self.pid] = self.event_index
        record = FZEventRecord(self.pid, self.event_index, tuple(self.dep))
        self.log.append(record)
        return record

    def local_event(self) -> FZEventRecord:
        return self._record()

    def prepare_send(self) -> tuple[FZMessage, FZEventRecord]:
        """Timestamp an outgoing message (send counts as an event)."""
        record = self._record()
        return FZMessage(self.pid, self.event_index), record

    def receive(self, message: FZMessage) -> FZEventRecord:
        """Record a receive event and its direct dependency on the sender."""
        if not 0 <= message.sender < self.n:
            raise ValueError(f"sender {message.sender} out of range for n={self.n}")
        self.dep[message.sender] = max(self.dep[message.sender], message.sender_event)
        return self._record()

    def storage_ints(self) -> int:
        """Resident integers per site: the N-entry direct-dependency
        vector plus the event counter (the ever-growing log is offline
        state, not part of the online clock)."""
        return self.n + 1


def reconstruct_vector_times(
    processes: list[FZProcess],
) -> dict[tuple[int, int], VectorClock]:
    """Offline reconstruction of full vector time for every logged event.

    Performs the transitive traversal of the direct-dependency records --
    the computation the paper's introduction calls "too large for an
    on-line computation".  Returns ``{(pid, event_index): VectorClock}``.

    The reconstruction walks each process log in order; event ``e`` of
    process ``p`` has vector time = component-wise max of its direct
    dependencies' vector times, with its own component set to its index.
    Records are processed in a topological order obtained by iterating
    until fixpoint (dependencies always refer to earlier event indices,
    so a single pass per process in index order with cross-process
    iteration converges).
    """
    n = len(processes)
    records: dict[tuple[int, int], FZEventRecord] = {}
    for proc in processes:
        if proc.n != n:
            raise ValueError("all processes must agree on system size")
        for record in proc.log:
            records[(record.pid, record.index)] = record

    resolved: dict[tuple[int, int], VectorClock] = {}

    def resolve(key: tuple[int, int]) -> VectorClock:
        if key in resolved:
            return resolved[key]
        stack = [key]
        while stack:
            top = stack[-1]
            if top in resolved:
                stack.pop()
                continue
            record = records.get(top)
            if record is None:
                raise KeyError(f"dependency on unlogged event {top}")
            pending = []
            counts = [0] * n
            for q in range(n):
                dep_index = record.direct_deps[q]
                if q == record.pid:
                    continue
                if dep_index > 0:
                    dep_key = (q, dep_index)
                    if dep_key not in resolved:
                        pending.append(dep_key)
                    else:
                        dep_vc = resolved[dep_key]
                        for r in range(n):
                            counts[r] = max(counts[r], dep_vc[r])
            # own earlier event is also a direct dependency
            if record.index > 1:
                prev_key = (record.pid, record.index - 1)
                if prev_key not in resolved:
                    pending.append(prev_key)
                else:
                    prev_vc = resolved[prev_key]
                    for r in range(n):
                        counts[r] = max(counts[r], prev_vc[r])
            if pending:
                stack.extend(pending)
                continue
            counts[record.pid] = record.index
            resolved[top] = VectorClock(tuple(counts))
            stack.pop()
        return resolved[key]

    for key in records:
        resolve(key)
    return resolved
