"""The Charron-Bost dimension bound, demonstrated executably.

The paper's Section 1 leans on Charron-Bost (IPL 1991): "the causality
relationship among N communicating processes has in general dimension
N, which induces a lower bound on the size of vector clocks."  The
paper's escape is to *change the relation* (via transformation), not to
beat the bound.

This module makes the bound concrete:

* :func:`crown_execution` builds the standard worst-case computation
  (the "crown" S_N): N processes, each sending one message to every
  other process such that ``send_i -> recv_j`` for all ``j != i`` while
  the sends are pairwise concurrent.  The induced order contains the
  crown poset, whose order dimension is N.
* :func:`projection_is_faithful` checks whether restricting the events'
  full vector timestamps to a subset of coordinates still decides
  happened-before correctly.
* :func:`min_faithful_projection_size` searches all coordinate subsets:
  for the crown over N processes the answer is exactly N -- dropping any
  coordinate breaks some verdict.  The test suite verifies this for
  N = 2..6, and verifies that the *star editor's redefined* computation
  is decidable with 2 coordinates (the paper's whole point).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional

from repro.clocks.vector import Ordering, VectorClock, compare


def crown_execution(n: int) -> tuple[dict[str, VectorClock], dict[str, int]]:
    """The crown computation over ``n`` processes.

    Each process ``i`` performs a send event ``s_i`` (its first event)
    and then receives every other process's message (``r_i`` after all
    receipts).  Then ``s_i -> r_j`` for every ``j != i`` but
    ``s_i || s_j`` and ``r_i || r_j`` -- the crown S_n.

    Returns ``(clocks, sites)``: full vector timestamps and originating
    process for events ``s0..s{n-1}, r0..r{n-1}``.
    """
    if n < 2:
        raise ValueError("the crown needs at least two processes")
    clocks: dict[str, VectorClock] = {}
    sites: dict[str, int] = {}
    sends = []
    for i in range(n):
        vc = VectorClock.zero(n).tick(i)
        clocks[f"s{i}"] = vc
        sites[f"s{i}"] = i
        sends.append(vc)
    for i in range(n):
        # r_i: process i has received every other process's send
        vc = clocks[f"s{i}"]
        for j in range(n):
            if j != i:
                vc = vc.merge(sends[j])
        vc = vc.tick(i)
        clocks[f"r{i}"] = vc
        sites[f"r{i}"] = i
    return clocks, sites


def _hb_projected(
    a: VectorClock, b: VectorClock, coords: tuple[int, ...]
) -> bool:
    """Happened-before decided only from the selected coordinates."""
    a_le_b = all(a[c] <= b[c] for c in coords)
    b_le_a = all(b[c] <= a[c] for c in coords)
    return a_le_b and not b_le_a


def projection_is_faithful(
    clocks: dict[str, VectorClock], coords: tuple[int, ...]
) -> bool:
    """True iff the projected comparison decides every pair correctly."""
    names = list(clocks)
    for x in names:
        for y in names:
            if x == y:
                continue
            full = _hb_projected(clocks[x], clocks[y], tuple(range(len(clocks[x]))))
            projected = _hb_projected(clocks[x], clocks[y], coords)
            if full != projected:
                return False
    return True


def min_faithful_projection_size(clocks: dict[str, VectorClock]) -> int:
    """Smallest number of vector coordinates that still decides causality.

    Exhaustive over coordinate subsets -- fine for the demonstration
    sizes (N <= 8).
    """
    if not clocks:
        raise ValueError("need at least one event")
    n = len(next(iter(clocks.values())))
    for k in range(1, n + 1):
        for coords in combinations(range(n), k):
            if projection_is_faithful(clocks, coords):
                return k
    return n


class ProjectedClockSite:
    """A vector-clock site that *answers* from a coordinate projection.

    The site maintains the full N-entry vector internally (merging needs
    it), but :meth:`snapshot` exposes only the selected coordinates and
    :meth:`compare` decides from them alone -- exactly the restricted
    comparison of :func:`projection_is_faithful`.  With all N coordinates
    this is the plain vector clock; with fewer, it is faithful only when
    the computation's induced order has dimension <= ``len(coords)``,
    which is what the Charron-Bost demonstration probes.

    Registered in :data:`repro.clocks.base.CLOCK_FAMILIES` with the full
    coordinate set, so the conformance suite exercises the faithful
    configuration.
    """

    decides_online = True

    def __init__(
        self, pid: int, n: int, coords: Optional[Iterable[int]] = None
    ) -> None:
        self.pid = pid
        self.vc = VectorClock.zero(n)
        self.coords = tuple(range(n)) if coords is None else tuple(coords)
        if not self.coords:
            raise ValueError("projection needs at least one coordinate")
        if any(not 0 <= c < n for c in self.coords):
            raise ValueError(f"coordinates {self.coords} out of range for n={n}")

    def tick(self) -> None:
        self.vc = self.vc.tick(self.pid)

    def timestamp(self, dest: int) -> VectorClock:
        self.tick()
        return self.vc

    def merge(self, source: int, wire: VectorClock) -> None:
        self.vc = self.vc.merge(wire).tick(self.pid)

    def snapshot(self) -> VectorClock:
        """The projected clock value: only the selected coordinates."""
        return VectorClock.of(self.vc[c] for c in self.coords)

    def compare(self, a: VectorClock, b: VectorClock) -> Optional[Ordering]:
        return compare(a, b)

    def storage_ints(self) -> int:
        """The projection's resident cost -- what a site would keep if
        the projection were known faithful for its computation."""
        return len(self.coords)

    def timestamp_bytes(self, wire: VectorClock) -> int:
        from repro.net.transport import INT_WIDTH

        return INT_WIDTH * len(self.coords)
