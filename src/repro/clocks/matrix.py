"""Matrix clocks: the heavyweight end of the logical-clock spectrum.

A matrix clock holds, per process, an entire N x N matrix:
``M[i][j]`` = what process ``self`` knows process ``i`` knows about
process ``j``'s event count.  Row ``self`` is the ordinary vector
clock; the other rows support **causal stability**: an event is stable
(known to everyone) once ``min_i M[i][k] >= t`` -- which is exactly the
information a history-buffer garbage collector needs in a *fully
distributed* editor (the star editor gets it for free from the
notifier's acknowledgement horizons).

Included to complete the overhead spectrum the benchmarks report:

=================  ===========  ==================================
scheme             bytes/msg    online concurrency / stability
=================  ===========  ==================================
Lamport scalar     4            no / no
compressed (CVC)   8            yes (star) / yes (via notifier)
full vector        4N           yes / no
SK differential    <= 8N        yes / no
matrix             4N^2         yes / yes
=================  ===========  ==================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.vector import VectorClock
from repro.net.transport import INT_WIDTH


@dataclass
class MatrixClock:
    """One process's N x N matrix clock."""

    pid: int
    n: int
    matrix: list[list[int]] = field(init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.pid < self.n:
            raise ValueError(f"pid {self.pid} out of range for n={self.n}")
        self.matrix = [[0] * self.n for _ in range(self.n)]

    # -- protocol -------------------------------------------------------------

    def local_event(self) -> None:
        """Advance own entry in own row."""
        self.matrix[self.pid][self.pid] += 1

    def prepare_send(self) -> list[list[int]]:
        """Timestamp an outgoing message: the full matrix snapshot."""
        self.local_event()
        return [row[:] for row in self.matrix]

    def receive(self, sender: int, matrix: list[list[int]]) -> None:
        """Merge an incoming matrix timestamp (a receive event)."""
        if len(matrix) != self.n or any(len(row) != self.n for row in matrix):
            raise ValueError(f"matrix timestamp must be {self.n}x{self.n}")
        if not 0 <= sender < self.n:
            raise ValueError(f"sender {sender} out of range")
        for i in range(self.n):
            for j in range(self.n):
                if matrix[i][j] > self.matrix[i][j]:
                    self.matrix[i][j] = matrix[i][j]
        # own row additionally absorbs the sender's row (direct knowledge)
        for j in range(self.n):
            if matrix[sender][j] > self.matrix[self.pid][j]:
                self.matrix[self.pid][j] = matrix[sender][j]
        self.matrix[self.pid][self.pid] += 1

    # -- queries ----------------------------------------------------------------

    def vector(self) -> VectorClock:
        """The embedded ordinary vector clock (own row)."""
        return VectorClock(tuple(self.matrix[self.pid]))

    def known_by_all(self, process: int) -> int:
        """Highest event index of ``process`` known to every process.

        Events of ``process`` up to this index are *causally stable*:
        no future message can be concurrent with them, so history
        entries for them can be garbage-collected at every replica.
        """
        if not 0 <= process < self.n:
            raise ValueError(f"process {process} out of range")
        return min(self.matrix[i][process] for i in range(self.n))

    def stable_vector(self) -> VectorClock:
        """Component-wise :meth:`known_by_all` (the GC horizon)."""
        return VectorClock.of(
            tuple(self.known_by_all(j) for j in range(self.n))
            if self.n > 0
            else ()
        )

    def storage_ints(self) -> int:
        return self.n * self.n

    @staticmethod
    def timestamp_bytes(n: int, int_width: int = INT_WIDTH) -> int:
        return int_width * n * n
