"""Singhal-Kshemkalyani differential vector-clock compression.

Implementation of the paper's reference [13] (Singhal & Kshemkalyani,
"An efficient implementation of vector clocks", IPL 1992), used as the
*dynamic compression* baseline in the CLAIM-OVH and CLAIM-MEM
benchmarks.

Technique
---------
Instead of sending its whole vector, a process ``i`` sends to ``j`` only
the entries that changed since the previous message from ``i`` to ``j``,
as ``(index, value)`` pairs.  Each process therefore maintains, besides
its vector clock ``VC``:

* ``LS[j]`` ("last sent") -- the value of ``VC[i]`` when ``i`` last sent
  a message to ``j``;
* ``LU[k]`` ("last update") -- the value of ``VC[i]`` when entry ``k``
  last changed.

Entry ``k`` must be included in a message to ``j`` iff
``LU[k] > LS[j]``.  The receiver merges the pairs into its own vector;
because channels are FIFO, the merge reconstructs exactly the vector
time the full algorithm would produce.

The technique needs **FIFO channels** and, in the worst case (a process
that talks to everyone rarely), still sends ``N`` pairs -- the behaviour
the paper contrasts with its constant-size-2 scheme.  Storage is three
N-vectors per process (``VC``, ``LS``, ``LU``), which the CLAIM-MEM
benchmark measures against the paper's two integers per client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.vector import VectorClock


@dataclass(frozen=True)
class SKMessage:
    """A differential timestamp: the changed entries only."""

    sender: int
    entries: tuple[tuple[int, int], ...]  # (index, value) pairs

    def size_bytes(self, int_width: int = 4) -> int:
        """Wire size: one (index, value) pair per entry."""
        return 2 * int_width * len(self.entries)

    def entry_count(self) -> int:
        return len(self.entries)


@dataclass
class SKProcess:
    """One process running the Singhal-Kshemkalyani protocol."""

    pid: int
    n: int
    vc: list[int] = field(init=False)
    last_sent: list[int] = field(init=False)  # LS, indexed by destination
    last_update: list[int] = field(init=False)  # LU, indexed by entry

    def __post_init__(self) -> None:
        if not 0 <= self.pid < self.n:
            raise ValueError(f"pid {self.pid} out of range for n={self.n}")
        self.vc = [0] * self.n
        self.last_sent = [0] * self.n
        self.last_update = [0] * self.n

    def local_event(self) -> None:
        """An internal event: advance own entry."""
        self.vc[self.pid] += 1
        self.last_update[self.pid] = self.vc[self.pid]

    def prepare_send(self, dest: int) -> SKMessage:
        """Timestamp an outgoing message to ``dest`` (counts as an event)."""
        if not 0 <= dest < self.n:
            raise ValueError(f"destination {dest} out of range for n={self.n}")
        if dest == self.pid:
            raise ValueError("a process does not send to itself")
        self.local_event()
        entries = tuple(
            (k, self.vc[k])
            for k in range(self.n)
            if self.last_update[k] > self.last_sent[dest]
        )
        self.last_sent[dest] = self.vc[self.pid]
        return SKMessage(sender=self.pid, entries=entries)

    def receive(self, message: SKMessage) -> None:
        """Merge an incoming differential timestamp (a receive event)."""
        self.vc[self.pid] += 1
        self.last_update[self.pid] = self.vc[self.pid]
        for index, value in message.entries:
            if not 0 <= index < self.n:
                raise ValueError(f"entry index {index} out of range for n={self.n}")
            if value > self.vc[index]:
                self.vc[index] = value
                self.last_update[index] = self.vc[self.pid]

    def vector(self) -> VectorClock:
        """Current vector time as an immutable snapshot."""
        return VectorClock(tuple(self.vc))

    def storage_ints(self) -> int:
        """Resident clock-state integers (three N-vectors)."""
        return 3 * self.n
