"""ASCII space-time diagrams: textual renderings of Figs. 1-3.

The examples regenerate the paper's figures as terminal art:
:func:`render_star_topology` draws Fig. 1 (clients around the notifier)
and :func:`render_spacetime` draws Fig. 2/3-style diagrams (sites as
columns, virtual time flowing downward, one row per generation or
execution event).  :func:`diagram_events_from_trace` turns a recorded
observability trace (:mod:`repro.obs`) into diagram rows, so the Fig.
2/3 rendering works from *actual executions*, not only hand-built
scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.tracer import TraceEvent, TraceEventKind


def render_star_topology(n_clients: int, max_named: int = 8) -> str:
    """Fig. 1: the star-like topology of Web-based REDUCE."""
    if n_clients < 1:
        raise ValueError("need at least one client")
    shown = min(n_clients, max_named)
    lines = []
    lines.append("            Web server machine")
    lines.append("          +--------------------+")
    lines.append("          |  REDUCE  notifier  |")
    lines.append("          |      (site 0)      |")
    lines.append("          +--------------------+")
    # One spoke per shown client, centred over its [site i] cell below.
    cells = [f"[site {i}]" for i in range(1, shown + 1)]
    spoke_row = [" "] * (2 + sum(len(cell) + 3 for cell in cells))
    pos = 2
    for index, cell in enumerate(cells):
        spoke_row[pos + len(cell) // 2] = "/" if index % 2 == 0 else "\\"
        pos += len(cell) + 3
    lines.append("".join(spoke_row).rstrip())
    row = "   ".join(cells)
    lines.append("  " + row)
    if n_clients > shown:
        lines.append(f"  ... and {n_clients - shown} more collaborating applets")
    lines.append("")
    lines.append(f"  {n_clients} REDUCE applets, each connected ONLY to the notifier")
    lines.append("  (TCP, FIFO); the notifier maps N-way to 2-way communication.")
    return "\n".join(lines)


@dataclass(frozen=True)
class DiagramEvent:
    """One row of a space-time diagram."""

    time: float
    site: int
    label: str  # e.g. "gen O2 [0,1]" or "exec O2' [1,0]"


def render_spacetime(
    n_sites: int, events: Sequence[DiagramEvent], col_width: int = 18
) -> str:
    """Sites as columns (site 0 first), time flowing downward."""
    if n_sites < 1:
        raise ValueError("need at least one site")
    header = "".join(f"site {site}".center(col_width) for site in range(n_sites))
    ruler = "".join("|".center(col_width) for _ in range(n_sites))
    lines = [header, ruler]
    for event in sorted(events, key=lambda e: (e.time, e.site)):
        if not 0 <= event.site < n_sites:
            raise ValueError(f"event site {event.site} out of range")
        cells = []
        for site in range(n_sites):
            cells.append(
                event.label.center(col_width) if site == event.site else "|".center(col_width)
            )
        lines.append("".join(cells) + f"  t={event.time:g}")
    return "\n".join(lines)


# Diagram labels for the causally meaningful trace event kinds.
_TRACE_LABELS = {
    TraceEventKind.GENERATED: "gen",
    TraceEventKind.TRANSFORMED: "xform",
    TraceEventKind.EXECUTED: "exec",
    TraceEventKind.CRASHED: "crash",
    TraceEventKind.RECOVERED: "recover",
    TraceEventKind.SNAPSHOT: "snapshot",
}


def diagram_events_from_trace(
    trace_events: Iterable[TraceEvent],
    include: frozenset[TraceEventKind] = frozenset(
        (
            TraceEventKind.GENERATED,
            TraceEventKind.EXECUTED,
            TraceEventKind.CRASHED,
            TraceEventKind.RECOVERED,
        )
    ),
) -> list[DiagramEvent]:
    """Diagram rows from a recorded trace (one row per included event).

    The default selection -- generations, executions, crashes and
    recoveries -- reproduces the paper's Fig. 2/3 row structure from a
    real session; pass a different ``include`` set to also show
    transformations or snapshot serves.
    """
    out = []
    for event in trace_events:
        if event.kind not in include:
            continue
        label = _TRACE_LABELS.get(event.kind, event.kind.value)
        if event.op_id is not None:
            label += f" {event.op_id}"
        if event.timestamp is not None:
            label += f" [{','.join(str(c) for c in event.timestamp)}]"
        out.append(DiagramEvent(time=event.time, site=event.site, label=label))
    return out
