"""ASCII renderers for the paper's figures."""

from repro.viz.spacetime import render_spacetime, render_star_topology

__all__ = ["render_spacetime", "render_star_topology"]
