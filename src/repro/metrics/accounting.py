"""Timestamp and memory accounting across clock schemes (CLAIM-OVH/MEM).

The accounting model is shared by every scheme (see
:data:`repro.net.transport.INT_WIDTH`): a serialised integer costs 4
bytes.  Then per message:

* full vector clock: ``4 * N`` bytes (N = number of processes);
* Lamport scalar: 4 bytes (but cannot detect concurrency);
* Singhal-Kshemkalyani: ``8 * (entries changed since the last message
  on this channel)`` -- workload dependent, measured by replaying a
  communication pattern through real :class:`repro.clocks.sk.SKProcess`
  instances;
* compressed scheme (the paper): ``8`` bytes, constant.

Memory (resident clock-state integers per process):

* full vectors: N;
* SK: 3N (VC + last-sent + last-update);
* compressed: 2 at each client, N at the notifier only.

The memory table is not hand-computed from those formulas: it asks real
clock instances via the :meth:`~repro.clocks.base.ClockProtocol.storage_ints`
hook every family implements, so the table can never drift from the
implementations it describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.clocks.sk import SKProcess
from repro.clocks.vector import VectorClock
from repro.core.state_vector import ClientStateVector, NotifierStateVector
from repro.net.transport import INT_WIDTH


def full_vector_timestamp_bytes(n: int) -> int:
    """Per-message timestamp bytes for a full N-element vector clock."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return INT_WIDTH * n


def lamport_timestamp_bytes() -> int:
    """Per-message bytes for a scalar Lamport clock."""
    return INT_WIDTH


def compressed_timestamp_bytes() -> int:
    """Per-message bytes for the paper's compressed scheme: constant."""
    return 2 * INT_WIDTH


def sk_expected_timestamp_bytes(n: int, locality: float, seed: int = 0,
                                messages: int = 2000) -> float:
    """Measured mean per-message bytes for Singhal-Kshemkalyani.

    Replays a random communication pattern through real SK processes.
    ``locality`` in ``[0, 1]`` controls interaction locality: with
    probability ``locality`` a process messages a fixed neighbour,
    otherwise a uniformly random process.  High locality is SK's best
    case (few changed entries per message); low locality degrades toward
    the full vector.
    """
    if n < 2:
        raise ValueError("SK needs at least two processes")
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    rng = random.Random(seed)
    processes = [SKProcess(pid, n) for pid in range(n)]
    total_bytes = 0
    for _ in range(messages):
        sender = rng.randrange(n)
        if rng.random() < locality:
            dest = (sender + 1) % n
        else:
            dest = rng.randrange(n)
            while dest == sender:
                dest = rng.randrange(n)
        message = processes[sender].prepare_send(dest)
        total_bytes += message.size_bytes(INT_WIDTH)
        processes[dest].receive(message)
    return total_bytes / messages


@dataclass(frozen=True)
class SchemeOverhead:
    """One row of the overhead table: per-message timestamp bytes."""

    n: int
    full_vector: int
    lamport: int
    sk_local: float  # SK under high interaction locality
    sk_uniform: float  # SK under uniform (worst-ish) interaction
    compressed: int

    def as_row(self) -> str:
        return (
            f"{self.n:>6} | {self.full_vector:>10} | {self.lamport:>7} | "
            f"{self.sk_local:>10.1f} | {self.sk_uniform:>11.1f} | {self.compressed:>10}"
        )


def overhead_sweep(n_values: Iterable[int], seed: int = 0,
                   messages: int = 1000) -> list[SchemeOverhead]:
    """The CLAIM-OVH table: timestamp bytes vs system size."""
    rows = []
    for n in n_values:
        rows.append(
            SchemeOverhead(
                n=n,
                full_vector=full_vector_timestamp_bytes(n),
                lamport=lamport_timestamp_bytes(),
                sk_local=sk_expected_timestamp_bytes(n, 0.9, seed, messages),
                sk_uniform=sk_expected_timestamp_bytes(n, 0.0, seed, messages),
                compressed=compressed_timestamp_bytes(),
            )
        )
    return rows


@dataclass(frozen=True)
class MemoryComparison:
    """Resident clock-state integers per process (CLAIM-MEM)."""

    n: int
    full_vector_per_process: int
    sk_per_process: int
    compressed_client: int
    compressed_notifier: int

    def as_row(self) -> str:
        return (
            f"{self.n:>6} | {self.full_vector_per_process:>12} | "
            f"{self.sk_per_process:>8} | {self.compressed_client:>11} | "
            f"{self.compressed_notifier:>13}"
        )


def memory_comparison(n_values: Sequence[int]) -> list[MemoryComparison]:
    """The CLAIM-MEM table: clock storage per process vs system size.

    Each cell is measured on a live clock instance through its
    ``storage_ints()`` hook rather than restating the closed forms from
    the module docstring.
    """
    return [
        MemoryComparison(
            n=n,
            full_vector_per_process=VectorClock.zero(n).storage_ints(),
            sk_per_process=SKProcess(0, n).storage_ints(),
            compressed_client=ClientStateVector(1).storage_ints(),
            compressed_notifier=NotifierStateVector(n).storage_ints(),
        )
        for n in n_values
    ]


@dataclass(frozen=True)
class FaultToleranceReport:
    """What the network did to a session vs. what the protocol absorbed.

    The network side aggregates :class:`repro.net.faults.FaultStats`
    over every channel (losses the *network* caused); the protocol side
    aggregates :class:`repro.net.reliability.ReliabilityStats` over
    every endpoint (the recovery work the protocol did).

    Losses are split by packet class because only one class forces
    recovery work: a lost sequenced *data* packet sits in its sender's
    unacked window until retransmission delivers it, so a crash-free
    convergent session shows ``retransmits > 0`` whenever ``lost > 0``.
    A lost pure acknowledgement (``lost_acks``) needs no retransmission
    -- any later cumulative ack heals it -- and a client crash voids the
    crashed incarnation's unacked windows, so neither implies
    retransmits.

    One crash/restart cycle contributes 1 to ``recoveries`` (the
    client's completed restart) and 1 to ``resyncs_served`` (the
    recovery snapshot the notifier sent back); the two count the same
    event from opposite ends and are reported separately.

    A notifier failover likewise counts from both ends: 1 to
    ``promotions`` (the successor assumed the centre role) and 1 per
    surviving member to ``handoffs`` (completed re-homing to the new
    centre), with ``give_ups``/``probes_sent`` recording the detection
    work and ``replayed_ops``/``replays_deduped`` the fate of pending
    operations stashed across the epoch boundary.
    """

    # network side
    dropped: int
    duplicated: int
    outage_dropped: int
    acks_dropped: int
    acks_outage_dropped: int
    # protocol side
    sent: int
    retransmits: int
    acks_sent: int
    duplicates_discarded: int
    stale_epoch_discarded: int
    out_of_order_held: int
    dropped_while_crashed: int
    lost_local_edits: int
    recoveries: int
    resyncs_served: int
    # failover side
    give_ups: int
    probes_sent: int
    handoffs: int
    promotions: int
    replayed_ops: int
    replays_deduped: int

    @property
    def lost(self) -> int:
        """Sequenced data packets the network destroyed."""
        return self.dropped + self.outage_dropped

    @property
    def lost_acks(self) -> int:
        """Pure acknowledgements the network destroyed."""
        return self.acks_dropped + self.acks_outage_dropped

    def summary(self) -> str:
        return (
            f"network: dropped={self.dropped} duplicated={self.duplicated} "
            f"outage_dropped={self.outage_dropped} acks_lost={self.lost_acks}\n"
            f"protocol: sent={self.sent} retransmits={self.retransmits} "
            f"acks={self.acks_sent} dedup={self.duplicates_discarded} "
            f"stale_epoch={self.stale_epoch_discarded} "
            f"held_for_order={self.out_of_order_held}\n"
            f"crashes: dropped_while_down={self.dropped_while_crashed} "
            f"lost_local_edits={self.lost_local_edits} "
            f"recoveries={self.recoveries} resyncs_served={self.resyncs_served}\n"
            f"failover: give_ups={self.give_ups} probes={self.probes_sent} "
            f"promotions={self.promotions} handoffs={self.handoffs} "
            f"replayed={self.replayed_ops} deduped={self.replays_deduped}"
        )


def build_fault_report(fault_stats, rel_stats_list) -> FaultToleranceReport:
    """Aggregate channel fault stats and per-endpoint reliability stats.

    Duck-typed over :class:`repro.net.faults.FaultStats` and an iterable
    of :class:`repro.net.reliability.ReliabilityStats` so this module
    stays import-light (the editor imports it, not vice versa).
    """
    totals = {
        "sent": 0,
        "retransmits": 0,
        "acks_sent": 0,
        "duplicates_discarded": 0,
        "stale_epoch_discarded": 0,
        "out_of_order_held": 0,
        "dropped_while_crashed": 0,
        "lost_local_edits": 0,
        "recoveries": 0,
        "resyncs_served": 0,
        "give_ups": 0,
        "probes_sent": 0,
        "handoffs": 0,
        "promotions": 0,
        "replayed_ops": 0,
        "replays_deduped": 0,
    }
    for stats in rel_stats_list:
        for name in totals:
            totals[name] += getattr(stats, name)
    return FaultToleranceReport(
        dropped=fault_stats.dropped,
        duplicated=fault_stats.duplicated,
        outage_dropped=fault_stats.outage_dropped,
        acks_dropped=fault_stats.acks_dropped,
        acks_outage_dropped=fault_stats.acks_outage_dropped,
        **totals,
    )
