"""Measurement utilities for the overhead experiments."""

from repro.metrics.accounting import (
    SchemeOverhead,
    compressed_timestamp_bytes,
    full_vector_timestamp_bytes,
    lamport_timestamp_bytes,
    memory_comparison,
    overhead_sweep,
    sk_expected_timestamp_bytes,
)

__all__ = [
    "SchemeOverhead",
    "compressed_timestamp_bytes",
    "full_vector_timestamp_bytes",
    "lamport_timestamp_bytes",
    "sk_expected_timestamp_bytes",
    "overhead_sweep",
    "memory_comparison",
]
